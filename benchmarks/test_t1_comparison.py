"""T1 — Table 4.1: a comparison of all algorithms.

Regenerates the paper's qualitative comparison table and checks its
measured columns: one rewriter for SAI vs. two for the DAI family;
DAI-T never reindexes the same rewritten query twice; the storage split
at evaluators matches each algorithm's definition; and every algorithm
answers the canonical example exactly once.
"""


from repro.bench.comparison import run_t1


def test_t1_comparison(benchmark):
    result = benchmark.pedantic(run_t1, rounds=1, iterations=1)
    by_algorithm = {row["algorithm"]: row for row in result.rows}

    assert by_algorithm["sai"]["rewriter_copies"] == 1
    for name in ("dai-q", "dai-t", "dai-v"):
        assert by_algorithm[name]["rewriter_copies"] == 2

    # DAI-T's signature optimization: no join message on the duplicate.
    assert by_algorithm["dai-t"]["join_msgs_duplicate_trigger"] == 0
    for name in ("sai", "dai-q", "dai-v"):
        assert by_algorithm[name]["join_msgs_duplicate_trigger"] >= 1

    # Evaluator storage split per Table 4.1.
    assert by_algorithm["dai-t"]["value_level_tuples"] == 0
    assert by_algorithm["dai-q"]["value_level_queries"] == 0
    assert by_algorithm["sai"]["value_level_tuples"] > 0
    assert by_algorithm["sai"]["value_level_queries"] > 0

    # All four deliver exactly the one expected row.
    assert all(row["rows_delivered"] == 1 for row in result.rows)
