"""E6 — Figure 5.6: the replication scheme vs. filtering distribution.

Shape: with k rewriter replicas per attribute-level key, each incoming
tuple loads one replica, so the hottest rewriter's filtering load drops
(roughly by k for the small factors) while total attribute-level
filtering stays in the same ballpark — and the answers are unchanged.
"""

from conftest import run_once

from repro.bench.experiments import run_e6


def test_e6_replication_filtering(benchmark, scale):
    result = run_once(benchmark, run_e6, scale)
    by_factor = {row["replication"]: row for row in result.rows}

    # Identical answers at every factor.
    delivered = {row["rows_delivered"] for row in result.rows}
    assert len(delivered) == 1

    # The hottest rewriter is relieved going from k=1 to k=2.
    assert by_factor[2]["max_rewriter_filtering"] < by_factor[1]["max_rewriter_filtering"]
    # And k=4 does not regress above the unreplicated hotspot.
    assert by_factor[4]["max_rewriter_filtering"] < by_factor[1]["max_rewriter_filtering"]

    # Total attribute-level filtering work is not inflated by more than
    # the grouping slack (queries are checked at one replica per tuple).
    assert by_factor[8]["al_filtering_total"] < by_factor[1]["al_filtering_total"] * 1.6
