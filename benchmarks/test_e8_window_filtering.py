"""E8 — Figure 5.8: window size and |Q| vs. total evaluator filtering.

Shape: total evaluator (value-level) filtering load grows with the
sliding-window size (more live candidates per arriving message) and
with the number of installed queries.
"""

from conftest import run_once

from repro.bench.experiments import run_e8


def test_e8_window_filtering(benchmark, scale):
    result = run_once(benchmark, run_e8, scale)
    rows = result.rows

    for algorithm in ("sai", "dai-t"):
        for n_queries in {row["n_queries"] for row in rows}:
            series = [
                row
                for row in rows
                if row["algorithm"] == algorithm and row["n_queries"] == n_queries
            ]
            # Rows come out in increasing window order; "unbounded" last.
            filtering = [row["evaluator_filtering"] for row in series]
            assert filtering == sorted(filtering), (algorithm, n_queries)
            assert filtering[-1] > filtering[0]

        # More queries -> more filtering at the same window.
        by_queries = {}
        for row in rows:
            if row["algorithm"] == algorithm and row["window"] == "unbounded":
                by_queries[row["n_queries"]] = row["evaluator_filtering"]
        counts = sorted(by_queries)
        assert by_queries[counts[-1]] > by_queries[counts[0]]
