"""E3 — Figure 5.3: number of installed queries vs. network traffic.

Paper shape: traffic per insertion grows with |Q| but **sublinearly**
thanks to query grouping (one join message serves every query with the
same join condition and evaluator); DAI-V's join-message count
saturates fastest because its grouping ignores attribute names.
"""

from conftest import run_once

from repro.bench.experiments import run_e3


def test_e3_query_count(benchmark, scale):
    result = run_once(benchmark, run_e3, scale)
    rows = result.rows
    query_counts = sorted({row["n_queries"] for row in rows})
    assert len(query_counts) >= 3

    for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
        series = [
            row
            for row in rows
            if row["algorithm"] == algorithm
        ]
        series.sort(key=lambda row: row["n_queries"])
        hops = [row["hops_per_tuple"] for row in series]
        # More queries -> more traffic ...
        assert hops[-1] > hops[0], algorithm
        # ... but sublinearly: a 10x query increase costs far less
        # than 10x the traffic.
        query_growth = series[-1]["n_queries"] / series[0]["n_queries"]
        traffic_growth = hops[-1] / max(hops[0], 1e-9)
        assert traffic_growth < query_growth * 0.6, algorithm

    # DAI-V join messages grow the least across the sweep.
    def join_growth(algorithm):
        series = sorted(
            (row for row in rows if row["algorithm"] == algorithm),
            key=lambda row: row["n_queries"],
        )
        return series[-1]["join_messages"] / max(series[0]["join_messages"], 1)

    assert join_growth("dai-v") <= min(
        join_growth("sai"), join_growth("dai-q"), join_growth("dai-t")
    )
