"""E7 — Figure 5.7: the replication scheme vs. storage distribution.

Shape: queries are stored at *every* replica, so attribute-level
storage grows exactly linearly in the replication factor — the price
paid for the filtering balance of E6.
"""

from conftest import run_once

from repro.bench.experiments import run_e7


def test_e7_replication_storage(benchmark, scale):
    result = run_once(benchmark, run_e7, scale)
    by_factor = {row["replication"]: row for row in result.rows}

    base = by_factor[1]["al_storage_total"]
    for factor in (2, 4, 8):
        assert by_factor[factor]["al_storage_total"] == base * factor

    # Same answers regardless of the factor.
    assert len({row["rows_delivered"] for row in result.rows}) == 1
