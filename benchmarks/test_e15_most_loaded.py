"""E15 — Figure 5.15: the most loaded nodes vs. network size.

Shape: the absolute filtering load of the hottest node — and its share
of the total filtering work — shrinks as the network grows (new nodes
split hot identifier ranges), until the single-rewriter hotspot floors
it (the residual the replication scheme removes).
"""

from conftest import run_once

from repro.bench.experiments import run_e15


def test_e15_most_loaded(benchmark, scale):
    result = run_once(benchmark, run_e15, scale)
    rows = result.rows

    for algorithm in ("sai", "dai-t"):
        series = sorted(
            (row for row in rows if row["algorithm"] == algorithm),
            key=lambda row: row["n_nodes"],
        )
        assert series[-1]["max_filtering"] < series[0]["max_filtering"], algorithm
        assert series[-1]["hottest_share"] < series[0]["hottest_share"], algorithm
