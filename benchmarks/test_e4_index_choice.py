"""E4 — Figure 5.4: index-attribute selection strategies in SAI.

Paper shape: on imbalanced streams the min-rate strategy (index each
query under the relation with the lowest tuple-arrival rate) generates
the least rewriting traffic; the adversarial max-rate choice is the
worst; random sits in between.
"""

from conftest import run_once

from repro.bench.experiments import run_e4


def test_e4_index_choice(benchmark, scale):
    result = run_once(benchmark, run_e4, scale)
    by_strategy = {row["strategy"]: row for row in result.rows}

    min_rate = by_strategy["min-rate"]["stream_hops"]
    max_rate = by_strategy["max-rate"]["stream_hops"]
    random_choice = by_strategy["random"]["stream_hops"]

    # The ordering of Figure 5.4: the informed min-rate choice beats
    # both baselines.  (random vs. max-rate is not compared: once
    # query grouping saturates, a randomly split query population can
    # trigger its groups from both streams and edge past max-rate.)
    assert min_rate < max_rate
    assert min_rate <= random_choice

    # The informed strategies pay real probe traffic; random does not.
    assert by_strategy["min-rate"]["probe_hops"] > 0
    assert by_strategy["random"]["probe_hops"] == 0

    # The win is substantial on an 8:1 imbalanced stream.
    assert min_rate < max_rate * 0.75
