"""E5 — Figure 5.5 (reconstructed): effect of the bos ratio.

Shape: as the balance-of-streams ratio grows, SAI with the min-rate
choice indexes queries under the slow relation, so its per-insertion
traffic *drops*; the DAI algorithms index both sides and cannot exploit
the imbalance, so their traffic stays roughly flat.
"""

from conftest import run_once

from repro.bench.experiments import run_e5


def test_e5_bos_ratio(benchmark, scale):
    result = run_once(benchmark, run_e5, scale)
    rows = result.rows
    ratios = sorted({row["bos_ratio"] for row in rows})
    assert len(ratios) >= 3

    def series(algorithm):
        data = [row for row in rows if row["algorithm"] == algorithm]
        data.sort(key=lambda row: row["bos_ratio"])
        return [row["hops_per_tuple"] for row in data]

    sai = series("sai")
    # SAI's traffic falls monotonically (with slack) as imbalance grows.
    assert sai[-1] < sai[0] * 0.8

    # DAI-Q cannot exploit the imbalance: its relative drop is smaller.
    dai_q = series("dai-q")
    sai_drop = sai[-1] / sai[0]
    dai_q_drop = dai_q[-1] / dai_q[0]
    assert sai_drop < dai_q_drop

    # At high imbalance SAI undercuts DAI-Q.
    assert sai[-1] < dai_q[-1]
