"""E9 — Figure 5.9: window size and |Q| vs. total evaluator storage.

Shape: after eviction, value-level storage is proportional to the
window (only the last window of tuples / rewritten queries is live);
DAI-T's storage exceeds SAI's at the same window because both sides of
every query are rewritten and stored.
"""

from conftest import run_once

from repro.bench.experiments import run_e9


def test_e9_window_storage(benchmark, scale):
    result = run_once(benchmark, run_e9, scale)
    rows = result.rows

    for algorithm in ("sai", "dai-t"):
        for n_queries in {row["n_queries"] for row in rows}:
            series = [
                row
                for row in rows
                if row["algorithm"] == algorithm and row["n_queries"] == n_queries
            ]
            storage = [row["evaluator_storage"] for row in series]
            assert storage == sorted(storage), (algorithm, n_queries)
            assert storage[-1] > storage[0]

    # DAI-T stores rewritten queries for both sides: at the unbounded
    # window and full query load it holds more evaluator state than SAI.
    def unbounded(algorithm):
        candidates = [
            row["evaluator_storage"]
            for row in rows
            if row["algorithm"] == algorithm and row["window"] == "unbounded"
        ]
        return max(candidates)

    assert unbounded("dai-t") > unbounded("sai")
