"""E2 — Figure 5.2: per-insertion traffic and the JFRT effect.

Paper shape: the JFRT cuts the reindexing traffic of every algorithm
(rewriters learn their evaluators and deliver join messages in one
hop), and DAI-V is the cheapest algorithm overall because its
value-only identifiers group rewritten queries most aggressively.
"""

from conftest import run_once

from repro.bench.experiments import run_e2


def test_e2_traffic_jfrt(benchmark, scale):
    result = run_once(benchmark, run_e2, scale)
    by_key = {(row["algorithm"], row["jfrt"]): row for row in result.rows}

    for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
        off = by_key[(algorithm, "off")]
        on = by_key[(algorithm, "on")]
        # The cache strictly reduces total stream traffic.
        assert on["total_hops"] < off["total_hops"], algorithm
        # And the effect is visible late in the stream (warm cache).
        assert on["late_hops"] < off["late_hops"], algorithm

    # DAI-V generates the least traffic per insertion (strongest
    # grouping); compare against the two-level algorithms without JFRT.
    daiv = by_key[("dai-v", "off")]["hops_per_tuple"]
    for algorithm in ("sai", "dai-q", "dai-t"):
        assert daiv < by_key[(algorithm, "off")]["hops_per_tuple"]
