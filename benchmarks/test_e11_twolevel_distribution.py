"""E11 — Figure 5.11: per-level load split, two-level algorithms.

Shape: the DAI algorithms index every query twice, so their
attribute-level filtering is about twice SAI's; at the value level
DAI-Q stores only tuples (small) while DAI-T stores both sides'
rewritten queries (largest).
"""

from conftest import run_once

from repro.bench.experiments import run_e11


def test_e11_twolevel_distribution(benchmark, scale):
    result = run_once(benchmark, run_e11, scale)
    by_algorithm = {row["algorithm"]: row for row in result.rows}

    sai = by_algorithm["sai"]
    dai_q = by_algorithm["dai-q"]
    dai_t = by_algorithm["dai-t"]

    # Double indexing: DAI attribute-level filtering ~ 2x SAI's.
    assert dai_q["al_filtering"] > 1.6 * sai["al_filtering"]
    assert dai_t["al_filtering"] > 1.6 * sai["al_filtering"]
    # Both DAI variants index identical query copies.
    assert dai_q["al_filtering"] == dai_t["al_filtering"]
    assert dai_q["al_storage"] == dai_t["al_storage"] == 2 * sai["al_storage"]

    # Value-level storage ordering: DAI-Q (tuples only) < SAI (tuples +
    # one-side rewritten) < DAI-T (both sides' rewritten queries).
    assert dai_q["vl_storage"] < sai["vl_storage"] < dai_t["vl_storage"]
