"""E13 — Figure 5.13: filtering-load distribution vs. number of queries.

Shape: per-node filtering grows with |Q| for every algorithm; the
distribution shape is stable because new queries land on the existing
rewriter/evaluator structure.
"""

from conftest import run_once

from repro.bench.experiments import run_e13


def test_e13_query_scale(benchmark, scale):
    result = run_once(benchmark, run_e13, scale)
    rows = result.rows

    for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
        series = sorted(
            (row for row in rows if row["algorithm"] == algorithm),
            key=lambda row: row["factor"],
        )
        means = [row["mean_filtering"] for row in series]
        assert means == sorted(means), algorithm
        assert means[-1] > means[0] * 1.5, algorithm
        ginis = [row["filtering_gini"] for row in series]
        assert max(ginis) - min(ginis) < 0.3, algorithm
