"""E14 — Figure 5.14: filtering-load distribution vs. network size.

Shape: "when the overlay network grows, query processing becomes easier
since new nodes relieve other nodes by taking a portion of the existing
workload" — with the workload fixed, the per-node mean filtering load
drops roughly linearly in the node count.
"""

from conftest import run_once

from repro.bench.experiments import run_e14


def test_e14_network_size(benchmark, scale):
    result = run_once(benchmark, run_e14, scale)
    rows = result.rows

    for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
        series = sorted(
            (row for row in rows if row["algorithm"] == algorithm),
            key=lambda row: row["n_nodes"],
        )
        means = [row["mean_filtering"] for row in series]
        # Mean load falls monotonically as the network grows ...
        assert all(a >= b for a, b in zip(means, means[1:])), algorithm
        # ... and an 8x network cuts the mean by at least 4x.
        assert means[-1] < means[0] / 4, algorithm
