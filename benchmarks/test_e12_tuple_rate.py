"""E12 — Figure 5.12: filtering-load distribution vs. tuple frequency.

Shape: mean per-node filtering grows with the stream rate for every
algorithm ("when the rate of incoming tuples in a given time window
increases ... a higher query processing load"), and the load keeps
being spread over the same node population (participation is stable).
"""

from conftest import run_once

from repro.bench.experiments import run_e12


def test_e12_tuple_rate(benchmark, scale):
    result = run_once(benchmark, run_e12, scale)
    rows = result.rows

    for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
        series = sorted(
            (row for row in rows if row["algorithm"] == algorithm),
            key=lambda row: row["factor"],
        )
        means = [row["mean_filtering"] for row in series]
        assert means == sorted(means), algorithm
        assert means[-1] > means[0] * 1.5, algorithm
        # The distribution shape stays in a sane band (no collapse onto
        # a single node as rate grows).
        ginis = [row["filtering_gini"] for row in series]
        assert max(ginis) - min(ginis) < 0.3, algorithm
