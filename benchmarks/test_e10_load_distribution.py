"""E10 — Figure 5.10: TF/TS load distribution, all four algorithms.

Shape: SAI does the least total filtering work (one rewriter per
query); DAI-V concentrates work on the fewest nodes (value-only
evaluator identifiers ignore the attribute mix), so its participation
is the lowest of the four.
"""

from conftest import run_once

from repro.bench.experiments import run_e10


def test_e10_load_distribution(benchmark, scale):
    result = run_once(benchmark, run_e10, scale)
    by_algorithm = {row["algorithm"]: row for row in result.rows}
    assert set(by_algorithm) == {"sai", "dai-q", "dai-t", "dai-v"}

    # Every algorithm did real work.
    for row in result.rows:
        assert row["TF"] > 0
        assert row["TS"] > 0
        assert 0.0 <= row["filtering_gini"] < 1.0

    # SAI triggers each query at one rewriter: least total filtering.
    sai_tf = by_algorithm["sai"]["TF"]
    for name in ("dai-q", "dai-t", "dai-v"):
        assert sai_tf < by_algorithm[name]["TF"]

    # DAI-V involves the fewest nodes.
    daiv_participation = by_algorithm["dai-v"]["participation"]
    for name in ("sai", "dai-q", "dai-t"):
        assert daiv_participation < by_algorithm[name]["participation"]

    # DAI-Q evaluators store only tuples: by far the smallest TS.
    daiq_ts = by_algorithm["dai-q"]["TS"]
    for name in ("sai", "dai-t"):
        assert daiq_ts < by_algorithm[name]["TS"]
