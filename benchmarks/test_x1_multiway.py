"""X1 — extension benchmark: multiway pipelines vs. chain length.

Not a paper figure — the thesis names multi-way joins as future work.
This benchmark measures the pipeline decomposition of
``repro.core.multiway``: traffic per inserted tuple grows with the
chain length (each intermediate match is re-published and re-indexed),
and the answers always equal the brute-force ground truth.
"""

import random

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.multiway import brute_force_rows, subscribe_multiway
from repro.sql.multiway import parse_multiway_query

SCHEMA = Schema.from_dict(
    {
        "R0": ["a", "b"],
        "R1": ["a", "b"],
        "R2": ["a", "b"],
        "R3": ["a", "b"],
    }
)


def chain_sql(length):
    relations = [f"R{i}" for i in range(length)]
    conditions = " AND ".join(
        f"R{i}.b = R{i + 1}.a" for i in range(length - 1)
    )
    return (
        f"SELECT {relations[0]}.a, {relations[-1]}.b "
        f"FROM {', '.join(relations)} WHERE {conditions}"
    )


def run_chain(length, n_tuples=240, domain=5, seed=3):
    rng = random.Random(seed)
    network = ChordNetwork.build(64)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm="dai-t", index_choice="random")
    )
    sql = chain_sql(length)
    subscription = subscribe_multiway(engine, network.nodes[0], sql, SCHEMA)
    inserted = []
    before = engine.traffic.hops
    for _ in range(n_tuples):
        engine.clock.advance(1)
        relation = SCHEMA.relation(f"R{rng.randrange(length)}")
        values = {"a": rng.randrange(domain), "b": rng.randrange(domain)}
        inserted.append(
            engine.publish(network.random_node(rng), relation, values)
        )
    hops = engine.traffic.hops - before
    expected = brute_force_rows(
        parse_multiway_query(sql, SCHEMA), inserted, insertion_time=0.0
    )
    return subscription, hops / n_tuples, expected


def test_x1_multiway(benchmark):
    def experiment():
        return {length: run_chain(length) for length in (2, 3, 4)}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    for length, (subscription, _, expected) in results.items():
        assert subscription.results == expected, f"chain of {length} diverged"
        assert expected, f"chain of {length} was vacuous"

    # Longer chains cost more traffic per insertion (intermediates are
    # re-published and fully re-indexed).
    hops = {length: per_tuple for length, (_, per_tuple, _) in results.items()}
    assert hops[3] > hops[2]
    assert hops[4] > hops[3]
