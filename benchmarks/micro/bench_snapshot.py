"""Hot path 6: ring-snapshot lookups vs per-hop object walks.

The large-scale path (DESIGN.md §14) replaces ``find_successor``'s
node-by-node finger walk with closed-form bisect resolution over a
:class:`~repro.chord.snapshot.RingSnapshot`.  Both variants run over the
identical ring and lookup set, so the speedup is directly visible; the
hop counts are asserted equal (the Hypothesis differential test covers
the full equivalence).
"""

from __future__ import annotations

import random
import time

from repro.chord.network import ChordNetwork

from _common import report


def run(n_nodes: int = 4096, lookups: int = 5_000) -> list[dict]:
    rng = random.Random(13)
    network = ChordNetwork.build(n_nodes)
    network.enable_fast_routing()
    snapshot = network.ring_snapshot()
    targets = [rng.randrange(network.space.size) for _ in range(lookups)]
    sources = [network.random_node(rng) for _ in range(lookups)]
    router = network.router
    rows = []

    start = time.perf_counter()
    snapshot_hops = 0
    for source, target in zip(sources, targets):
        _, cost = snapshot.find_successor(source.ident, target)
        snapshot_hops += cost
    elapsed = time.perf_counter() - start
    rows.append(
        report(
            "snapshot.bisect_lookup",
            elapsed / lookups * 1e9,
            n_nodes=n_nodes,
            mean_hops=round(snapshot_hops / lookups, 2),
        )
    )

    network.fast_routing = False
    start = time.perf_counter()
    walk_hops = 0
    for source, target in zip(sources, targets):
        _, cost = router.find_successor(source, target)
        walk_hops += cost
    elapsed = time.perf_counter() - start
    network.fast_routing = True
    if walk_hops != snapshot_hops:
        raise AssertionError(
            f"snapshot/object hop divergence: {snapshot_hops} != {walk_hops}"
        )
    rows.append(
        report(
            "snapshot.object_walk_reference",
            elapsed / lookups * 1e9,
            n_nodes=n_nodes,
            mean_hops=round(walk_hops / lookups, 2),
        )
    )
    return rows


if __name__ == "__main__":
    for row in run():
        print(row)
