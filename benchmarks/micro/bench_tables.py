"""Hot path 2: value-level table maintenance (add + window eviction).

The VLQT absorbs one ``add`` per delivered rewritten query and one
``evict_older_than`` sweep every eviction round.  The lazy min-heap
keeps eviction proportional to the number of expirations; this bench
drives a sliding window over a continuous add stream, the same access
pattern the windowed experiments (E8/E9) produce.
"""

from __future__ import annotations

import random
import time

from repro.core.tables import ValueLevelQueryTable
from repro.sql.query import RewrittenQuery, Subscriber

from _common import report

SUB = Subscriber("bench", 1, "10.0.0.1")


def _rewritten(i: int, value: int, trigger_time: float) -> RewrittenQuery:
    return RewrittenQuery(
        key=f"q{i}+{value}",
        original_key=f"q{i}",
        group_signature="sig",
        subscriber=SUB,
        insertion_time=0.0,
        relation="R",
        expr=None,
        required_value=value,
        dis_attribute="A",
        dis_value=value,
        filters=(),
        select=(),
        trigger_pub_time=trigger_time,
    )


def run(n_events: int = 30_000, window: float = 500.0) -> list[dict]:
    rng = random.Random(11)
    table = ValueLevelQueryTable()
    start = time.perf_counter()
    evicted = 0
    for event in range(n_events):
        now = float(event)
        table.add(_rewritten(rng.randrange(2_000), rng.randrange(64), now), 0)
        if event % 64 == 0:
            evicted += table.evict_older_than(now - window)
    elapsed = time.perf_counter() - start
    return [
        report(
            "tables.vlqt_add_evict",
            elapsed / n_events * 1e9,
            evicted=evicted,
            resident=len(table),
        )
    ]


if __name__ == "__main__":
    for row in run():
        print(row)
