"""Tiny shared timing harness for the micro-benchmarks.

Each micro-benchmark measures one hot path in isolation (the paths the
optimization pass in DESIGN.md targets): best-of-``repeats`` wall time
over ``loops`` iterations, reported as nanoseconds per operation.  Best
(not mean) is the standard choice for micro-benchmarks — noise is
strictly additive, so the minimum is the closest observable to the true
cost.

These are *relative* instruments: compare two commits on one machine.
Absolute numbers move with hardware and Python version, which is why CI
gates on the seeded macro-benchmark (``repro.bench.macro``), not on
these.
"""

from __future__ import annotations

import time
from typing import Callable


def best_of(fn: Callable[[], None], *, loops: int, repeats: int = 3) -> float:
    """Best wall time of ``repeats`` runs of ``loops`` calls, in ns/op."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best / loops * 1e9


def report(name: str, ns_per_op: float, **extra) -> dict:
    """A uniform result row for ``run_all`` aggregation."""
    row = {"benchmark": name, "ns_per_op": round(ns_per_op, 1)}
    row.update(extra)
    return row
