"""Hot path 1: identifier hashing (``Hash(R + A + v)``).

Every routed message derives its target from a SHA-1 of a
``relation|attribute|value`` key.  Zipf-skewed workloads repeat a small
set of keys, which is what the two memo layers (``hash_key`` and
``ConsistentHash.hash_parts``) exploit; the uncached figure shows what
each repeated lookup would otherwise pay.
"""

from __future__ import annotations

import hashlib
import random

from repro.chord.hashing import ConsistentHash, make_key

from _common import best_of, report


def run(loops: int = 50_000) -> list[dict]:
    rng = random.Random(7)
    h = ConsistentHash(m=32)
    # A skewed working set: 200 distinct (R, A, v) keys, reused heavily.
    keys = [("R", "B", rng.randrange(200)) for _ in range(loops)]
    it = iter(keys)

    def memoized():
        nonlocal it
        try:
            parts = next(it)
        except StopIteration:
            it = iter(keys)
            parts = next(it)
        h.hash_parts(*parts)

    modulus = h.modulus

    def uncached():
        nonlocal it
        try:
            parts = next(it)
        except StopIteration:
            it = iter(keys)
            parts = next(it)
        int.from_bytes(
            hashlib.sha1(make_key(*parts).encode("utf-8")).digest(), "big"
        ) % modulus

    return [
        report("hashing.memoized_parts", best_of(memoized, loops=loops)),
        report("hashing.uncached_sha1", best_of(uncached, loops=loops)),
    ]


if __name__ == "__main__":
    for row in run():
        print(row)
