"""Hot path 6: wire codec encode/decode of representative frames.

The live transport spends most of its CPU turning frames into bytes and
back; this suite times the frames that dominate real traffic — a
``JoinMessage`` carrying rewritten queries inside a routed envelope, a
``MultiFrame`` sweep, and a ``NotificationMessage`` batch — so a codec
regression shows up in ``run_all`` without spinning up a live cluster.
Each shape is measured under the current (fast) codec *and* under the
seed codec (``use_legacy_codec``), so the row pair doubles as a live
view of the optimization's margin.

Runnable under pytest too (``pytest benchmarks/micro/test_codec_encode.py``):
the test functions assert round-trip identity and that the fast and
seed codecs produce byte-identical wire frames for every shape.
"""

from __future__ import annotations

import random

from repro.core.notifications import Notification
from repro.net.codec import decode_frame, encode_frame, use_legacy_codec
from repro.net.frames import MultiFrame, RouteFrame
from repro.sim.messages import JoinMessage, NotificationMessage, VLIndexMessage
from repro.sql.parser import parse_query
from repro.sql.query import LEFT, RIGHT, Subscriber, rewrite
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

from _common import best_of, report

R = Relation("R", ("A", "B", "C"))
SUB = Subscriber("bench", 1, "10.0.0.1")


def _frames() -> dict[str, object]:
    """Representative frames, deterministic across runs."""
    rng = random.Random(23)
    query = parse_query(
        "SELECT R.A, S.D FROM R, S WHERE R.B = S.E"
    ).with_subscription("bench#0", 0.0, SUB)
    tuples = [
        DataTuple(
            R,
            (rng.randrange(900), rng.randrange(900), rng.randrange(900)),
            float(i),
        )
        for i in range(8)
    ]
    join = JoinMessage(
        rewritten=tuple(rewrite(query, LEFT, tup) for tup in tuples[:4]),
        projections=(),
    )
    notifications = tuple(
        Notification(
            query_key="bench#0",
            subscriber_ident=1,
            row=(tup.values[0], tup.values[1]),
            join_value_repr=repr(tup.values[1]),
            trigger_pub_time=tup.pub_time,
            match_pub_time=0.5,
            created_at=1.5,
        )
        for tup in tuples[:4]
    )
    return {
        "join_routed": RouteFrame(
            target_ident=2**120, message=join, hops=2
        ),
        "vl_index_sweep": MultiFrame(
            pairs=tuple(
                (rng.randrange(2**160), VLIndexMessage(tuple=tup, index_attribute="B"))
                for tup in tuples
            ),
            hops=1,
        ),
        "notification_batch": NotificationMessage(
            notifications=notifications, subscriber_ident=1
        ),
    }


def run(loops: int = 4_000) -> list[dict]:
    rows = []
    for name, frame in _frames().items():
        wire = encode_frame(frame)
        for legacy in (False, True):
            use_legacy_codec(legacy)
            try:
                suffix = "seed" if legacy else "fast"
                rows.append(
                    report(
                        f"codec.encode.{name}.{suffix}",
                        best_of(lambda f=frame: encode_frame(f), loops=loops),
                        bytes=len(wire),
                    )
                )
                rows.append(
                    report(
                        f"codec.decode.{name}.{suffix}",
                        best_of(lambda w=wire: decode_frame(w), loops=loops),
                        bytes=len(wire),
                    )
                )
            finally:
                use_legacy_codec(False)
    return rows


# ----------------------------------------------------------------------
# Pytest-facing assertions (not part of the timed run)
# ----------------------------------------------------------------------

def test_round_trip_identity():
    # RewrittenQuery compares by identity (eq=False), so round-trip
    # fidelity is asserted on the re-encoded wire bytes instead.
    for name, frame in _frames().items():
        wire = encode_frame(frame)
        decoded, consumed = decode_frame(wire)
        assert consumed == len(wire), name
        assert encode_frame(decoded) == wire, name


def test_fast_and_seed_codecs_are_wire_identical():
    for name, frame in _frames().items():
        fast = encode_frame(frame)
        use_legacy_codec(True)
        try:
            seed = encode_frame(frame)
            decoded, _ = decode_frame(fast)
            redecoded_wire = encode_frame(decoded)
        finally:
            use_legacy_codec(False)
        assert fast == seed, name
        assert redecoded_wire == fast, name


if __name__ == "__main__":
    for row in run():
        print(row)
