"""Hot path 7: batched event dispatch vs the heap queue.

Workload replay feeds timestamp-sorted events, so the large-scale path
(DESIGN.md §14) dispatches them through a reused
:class:`~repro.sim.events.EventRing` batch buffer instead of pushing
one heap :class:`~repro.sim.events.Event` per arrival.  Both variants
execute the identical no-op workload through a
:class:`~repro.sim.simulator.Simulator`, so the delta is pure
scheduling overhead (allocation + heap comparisons).
"""

from __future__ import annotations

import time

from repro.chord.network import ChordNetwork
from repro.sim.simulator import Simulator

from _common import report


def run(n_events: int = 200_000, batch: int = 4096) -> list[dict]:
    network = ChordNetwork.build(4)

    def handler(target, payload) -> None:
        pass

    rows = []

    simulator = Simulator(network)
    start = time.perf_counter()
    dispatched = simulator.run_stream(
        ((float(i), None, i) for i in range(n_events)), handler, batch=batch
    )
    elapsed = time.perf_counter() - start
    assert dispatched == n_events
    rows.append(
        report(
            "events.ring_stream",
            elapsed / n_events * 1e9,
            n_events=n_events,
            batch=batch,
        )
    )

    simulator = Simulator(network)
    start = time.perf_counter()
    for i in range(n_events):
        simulator.at(float(i), lambda i=i: handler(None, i))
    executed = simulator.run()
    elapsed = time.perf_counter() - start
    assert executed == n_events
    rows.append(
        report(
            "events.heap_queue_reference",
            elapsed / n_events * 1e9,
            n_events=n_events,
        )
    )
    return rows


if __name__ == "__main__":
    for row in run():
        print(row)
