"""Run every micro-benchmark and print one table (optionally JSON).

Usage::

    PYTHONPATH=src python benchmarks/micro/run_all.py [--json out.json]

Covers the five hot paths of the optimization pass (see DESIGN.md,
"Performance"): hashing, table maintenance, finger-walk lookups, the
recursive multisend sweep, and query rewriting / allocation churn.
These numbers are for commit-to-commit comparison on one machine; the
CI regression gate uses the seeded macro-benchmark instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_barrier
import bench_events
import bench_expdb
import bench_hashing
import bench_multisend
import bench_rewrite
import bench_routing
import bench_snapshot
import bench_tables
import test_codec_encode as bench_codec

SUITES = (
    bench_hashing,
    bench_tables,
    bench_routing,
    bench_snapshot,
    bench_multisend,
    bench_rewrite,
    bench_events,
    bench_barrier,
    bench_expdb,
    bench_codec,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="also write rows as JSON")
    args = parser.parse_args(argv)

    rows = []
    for suite in SUITES:
        rows.extend(suite.run())

    width = max(len(row["benchmark"]) for row in rows)
    for row in rows:
        extras = {k: v for k, v in row.items() if k not in ("benchmark", "ns_per_op")}
        detail = ("  " + ", ".join(f"{k}={v}" for k, v in extras.items())) if extras else ""
        print(f"{row['benchmark']:<{width}}  {row['ns_per_op']:>12,.1f} ns/op{detail}")

    if args.json:
        Path(args.json).write_text(json.dumps(rows, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
