"""Hot path 9: the sharded barrier exchange (DESIGN.md §15).

Two costs recur at every epoch barrier of a full-feature sharded run:

* **eviction replay** — the driver sweeps every adopted node against
  the serial cutoff.  Almost all nodes hold nothing expired, so the
  number that matters is the per-idle-node cost of the
  ``pending_before`` heap peek, measured here against a population
  where only a small fraction of nodes have pending expirations.
* **cross-shard record resolution** — staged ``(ts, time, owner,
  message)`` records are partitioned by owner segment before the
  scatter.  :class:`~repro.chord.snapshot.SegmentMap` resolves owners
  by bisect over the shared sorted-ident array; the dict it replaced
  is timed alongside to keep the trade visible (the dict wins per
  lookup but costs an O(n) build and ~80 bytes/member, which is what
  capped ring size before §15).
"""

from __future__ import annotations

import random
import time

from repro.chord.snapshot import SegmentMap
from repro.core.base import NodeState
from repro.core.tables import ValueLevelTupleTable

from _common import best_of, report


class _Node:
    """Stand-in carrying just the ident NodeState needs here."""

    __slots__ = ("ident",)

    def __init__(self, ident: int):
        self.ident = ident


def _loaded_state(ident: int, n_items: int, rng: random.Random) -> NodeState:
    state = NodeState(_Node(ident), 0)
    table = state.vltt

    class _Tuple:
        __slots__ = ("pub_time", "_value")

        class _Rel:
            name = "R"

        relation = _Rel()  # shared class attribute, not a slot

        def __init__(self, value, pub_time):
            self._value = value
            self.pub_time = pub_time

        def value(self, attribute):
            return self._value

    class _Stored:
        __slots__ = ("tuple", "index_attribute")

        def __init__(self, tup):
            self.tuple = tup
            self.index_attribute = "A"

    for i in range(n_items):
        table.add(_Stored(_Tuple(rng.randrange(64), float(i))))
    return state


def run(
    n_nodes: int = 20_000,
    hot_fraction: float = 0.01,
    n_records: int = 50_000,
    shards: int = 4,
) -> list[dict]:
    rng = random.Random(23)
    rows = []

    # ------------------------------------------------------------------
    # Eviction replay sweep: mostly idle nodes, a few holding state.
    # ------------------------------------------------------------------
    hot_every = max(1, int(1 / hot_fraction))
    states = [
        _loaded_state(i, 32 if i % hot_every == 0 else 0, rng)
        for i in range(n_nodes)
    ]
    cutoff = [0.0]

    def sweep() -> None:
        # Advancing the cutoff each sweep keeps a trickle of real
        # evictions in the loop, like a live window replay.
        cutoff[0] += 0.25
        c = cutoff[0]
        total = 0
        for state in states:
            total += state.evict_expired(c)

    start = time.perf_counter()
    loops = 20
    for _ in range(loops):
        sweep()
    elapsed = time.perf_counter() - start
    rows.append(
        report(
            "barrier.eviction_replay_sweep",
            elapsed / loops / n_nodes * 1e9,
            n_nodes=n_nodes,
            hot_fraction=hot_fraction,
        )
    )

    # ------------------------------------------------------------------
    # Cross-shard record partitioning: SegmentMap bisect vs dict.
    # ------------------------------------------------------------------
    idents = sorted(rng.sample(range(1 << 32), n_nodes))
    segment = SegmentMap(idents, shards)
    targets = [idents[rng.randrange(n_nodes)] for _ in range(n_records)]

    def partition_bisect() -> None:
        partitions = [[] for _ in range(shards)]
        shard_of = segment.shard_of
        for ident in targets:
            partitions[shard_of(ident)].append(ident)

    build_start = time.perf_counter()
    by_ident = {ident: pos * shards // n_nodes for pos, ident in enumerate(idents)}
    dict_build = time.perf_counter() - build_start

    def partition_dict() -> None:
        partitions = [[] for _ in range(shards)]
        for ident in targets:
            partitions[by_ident[ident]].append(ident)

    rows.append(
        report(
            "barrier.partition_segment_map",
            best_of(partition_bisect, loops=5) / n_records,
            n_records=n_records,
            n_nodes=n_nodes,
            shards=shards,
        )
    )
    rows.append(
        report(
            "barrier.partition_dict_reference",
            best_of(partition_dict, loops=5) / n_records,
            n_records=n_records,
            build_ms=round(dict_build * 1e3, 2),
        )
    )
    return rows
