"""Hot path 3: Chord lookups (``find_successor`` finger walks).

Every indexed key and every rewritten query pays at least one lookup;
the walk itself is ``closest_preceding_finger`` scans over the finger
table, the routine the inlined ring arithmetic in ``idspace``/``node``
targets.
"""

from __future__ import annotations

import random
import time

from repro.chord.network import ChordNetwork

from _common import report


def run(n_nodes: int = 256, lookups: int = 5_000) -> list[dict]:
    rng = random.Random(13)
    network = ChordNetwork.build(n_nodes)
    idents = [rng.randrange(network.space.size) for _ in range(lookups)]
    sources = [network.random_node(rng) for _ in range(lookups)]
    router = network.router

    start = time.perf_counter()
    hops = 0
    for source, ident in zip(sources, idents):
        _, cost = router.find_successor(source, ident)
        hops += cost
    elapsed = time.perf_counter() - start
    return [
        report(
            "routing.find_successor",
            elapsed / lookups * 1e9,
            n_nodes=n_nodes,
            mean_hops=round(hops / lookups, 2),
        )
    ]


if __name__ == "__main__":
    for row in run():
        print(row)
