"""Hot path 4: the recursive ``multisend`` clockwise sweep.

Grouped rewritten queries travel in one recursive multisend per batch
(Section 4.3.4); its cost model is measured here via ``multisend_cost``,
which replays the exact sweep (sort clockwise, walk, hand off the
remainder) without delivering messages.
"""

from __future__ import annotations

import random
import time

from repro.chord.network import ChordNetwork
from repro.chord.routing import multisend_cost

from _common import report


def run(n_nodes: int = 256, batches: int = 500, batch_size: int = 16) -> list[dict]:
    rng = random.Random(17)
    network = ChordNetwork.build(n_nodes)
    size = network.space.size
    jobs = [
        (
            network.random_node(rng),
            [rng.randrange(size) for _ in range(batch_size)],
        )
        for _ in range(batches)
    ]
    router = network.router

    start = time.perf_counter()
    hops = 0
    for source, idents in jobs:
        hops += multisend_cost(router, source, idents, recursive=True)
    elapsed = time.perf_counter() - start
    return [
        report(
            "routing.multisend_recursive",
            elapsed / (batches * batch_size) * 1e9,
            n_nodes=n_nodes,
            batch_size=batch_size,
            mean_hops_per_batch=round(hops / batches, 2),
        )
    ]


if __name__ == "__main__":
    for row in run():
        print(row)
