"""Hot path 10: the experiment database's claim protocol.

Every experiment a worker pulls costs one ``BEGIN IMMEDIATE``
claim transaction plus periodic heartbeat updates, and every finished
experiment one guarded result write.  Those transactions are pure
overhead on top of the actual run, so they must stay far below the
cheapest experiment (tens of milliseconds); this bench pins the cost
of each protocol step — and of the fill upsert that seeds the table —
on a WAL database with a few thousand rows.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.expdb.db import ExperimentDB
from repro.expdb.grid import GridSpec

from _common import report

METRICS = {
    "notifications_delivered": 5,
    "notification_digest": "ab" * 20,
}


def _grid(n_rows: int) -> GridSpec:
    return GridSpec(algorithms=("sai",), seeds=tuple(range(1, n_rows + 1)))


def run(n_rows: int = 2000) -> list[dict]:
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-expdb-") as tmp:
        path = os.path.join(tmp, "bench.sqlite")
        with ExperimentDB(path) as db:
            start = time.perf_counter()
            db.fill(_grid(n_rows).expand())
            fill_elapsed = time.perf_counter() - start
            rows.append(
                report(
                    "expdb.fill_upsert",
                    fill_elapsed / n_rows * 1e9,
                    n_rows=n_rows,
                )
            )

            start = time.perf_counter()
            claims = [db.claim("bench-worker") for _ in range(n_rows)]
            claim_elapsed = time.perf_counter() - start
            rows.append(
                report(
                    "expdb.claim_transaction",
                    claim_elapsed / n_rows * 1e9,
                    n_rows=n_rows,
                )
            )

            heartbeat_id = claims[0].id
            start = time.perf_counter()
            for _ in range(n_rows):
                db.heartbeat(heartbeat_id, "bench-worker")
            heartbeat_elapsed = time.perf_counter() - start
            rows.append(
                report(
                    "expdb.heartbeat_update",
                    heartbeat_elapsed / n_rows * 1e9,
                )
            )

            start = time.perf_counter()
            for claim in claims:
                db.finish(claim.id, "bench-worker", METRICS, {"wall_seconds": 0.01})
            finish_elapsed = time.perf_counter() - start
            rows.append(
                report(
                    "expdb.finish_guarded_write",
                    finish_elapsed / n_rows * 1e9,
                )
            )
    return rows
