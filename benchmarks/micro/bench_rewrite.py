"""Hot path 5: query rewriting and its allocation churn.

``rewrite()`` runs once per (stored query, trigger tuple) pair — the
hottest application-level call of the simulator — and allocates one
``RewrittenQuery`` each time.  The second figure isolates simulator
event/message construction, the per-hop allocation the ``__slots__``
pass trimmed.
"""

from __future__ import annotations

import random

from repro.sim.events import Event
from repro.sim.messages import ALIndexMessage
from repro.sql.parser import parse_query
from repro.sql.query import LEFT, Subscriber, rewrite
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

from _common import best_of, report

R = Relation("R", ("A", "B", "C"))
SUB = Subscriber("bench", 1, "10.0.0.1")


def run(loops: int = 30_000) -> list[dict]:
    rng = random.Random(19)
    query = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E").with_subscription(
        "bench#0", 0.0, SUB
    )
    tuples = [
        DataTuple(R, (rng.randrange(900), rng.randrange(900), rng.randrange(900)), float(i))
        for i in range(512)
    ]
    n_tuples = len(tuples)
    state = {"i": 0}

    def one_rewrite():
        i = state["i"]
        state["i"] = (i + 1) % n_tuples
        rewrite(query, LEFT, tuples[i])

    def nothing():
        pass

    def one_event():
        Event(5.0, 1, nothing, "tuple")

    def one_message():
        ALIndexMessage(tuple=tuples[0], index_attribute="B")

    return [
        report("sql.rewrite", best_of(one_rewrite, loops=loops)),
        report("sim.event_alloc", best_of(one_event, loops=loops)),
        report("sim.message_alloc", best_of(one_message, loops=loops)),
    ]


if __name__ == "__main__":
    for row in run():
        print(row)
