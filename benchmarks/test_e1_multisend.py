"""E1 — Figure 5.1: recursive vs. iterative multisend.

Paper shape: both designs cost ``O(k log N)`` but the recursive sweep
"has in practice a significantly better performance", with the
advantage growing in the number of recipients ``k``.
"""

from conftest import run_once

from repro.bench.experiments import run_e1


def test_e1_multisend(benchmark, scale):
    result = run_once(benchmark, run_e1, scale)
    rows = result.rows

    # Recursive never loses, and wins clearly for k >= 16.
    for row in rows:
        assert row["recursive_hops"] <= row["iterative_hops"] + 1e-9
        if row["k"] >= 16:
            assert row["recursive_hops"] < row["iterative_hops"]

    # The savings factor grows with k (paper: the sweep amortizes
    # routing work over recipients).
    savings = [row["savings"] for row in rows]
    assert savings[-1] > savings[0]
    assert savings[-1] > 2.0

    # Iterative cost is ~k independent lookups: roughly linear in k.
    first, last = rows[0], rows[-1]
    growth = last["iterative_hops"] / max(first["iterative_hops"], 1e-9)
    assert growth > (last["k"] / first["k"]) * 0.3
