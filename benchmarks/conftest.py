"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures via the
experiment functions in :mod:`repro.bench.experiments` and asserts the
*shape* the paper reports (who wins, roughly by what factor, where
crossovers fall) — never absolute numbers, which depend on scale and
substrate.

Benchmarks default to the ``smoke`` profile so the whole suite runs in
minutes; set ``REPRO_SCALE=default`` (or ``large`` / ``paper``) to
scale up.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import current_scale


@pytest.fixture(scope="session")
def scale():
    """The experiment scale for this benchmark session."""
    return current_scale(default="smoke")


def run_once(benchmark, experiment, scale):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are macro-benchmarks of a whole simulated experiment, so a
    single round is representative; repetition would only multiply the
    suite's runtime.
    """
    return benchmark.pedantic(
        experiment, kwargs={"scale": scale}, rounds=1, iterations=1
    )
