"""E17 — Section 4.5: the keyed DAI-V traffic blow-up.

Shape: prefixing ``Key(q)`` to the join value destroys query grouping —
every triggered query requires its own routed join message — so traffic
per insertion blows up by a factor that grows with the number of
installed queries (the paper reports ~x250 at 10^5 queries; at this
scale the factor is smaller but clearly super-unity).
"""

from conftest import run_once

from repro.bench.experiments import run_e17


def test_e17_daiv_keyed(benchmark, scale):
    result = run_once(benchmark, run_e17, scale)
    by_variant = {row["variant"]: row for row in result.rows}

    grouped = by_variant["grouped"]
    keyed = by_variant["keyed"]

    assert keyed["hops_per_tuple"] > grouped["hops_per_tuple"] * 1.5
    assert keyed["join_messages"] > grouped["join_messages"] * 2
    assert keyed["blowup"] > 1.5
