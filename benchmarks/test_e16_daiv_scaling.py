"""E16 — Figure 5.16: DAI-V under each scaling axis.

Shape: DAI-V reacts to each axis the way the paper describes — growing
the network relieves nodes (mean drops), growing queries or tuples
raises the mean — while its distribution stays governed by the value
skew (gini in a stable band).
"""

from conftest import run_once

from repro.bench.experiments import run_e16


def test_e16_daiv_scaling(benchmark, scale):
    result = run_once(benchmark, run_e16, scale)
    rows = result.rows

    def pair(axis):
        series = sorted(
            (row for row in rows if row["axis"] == axis),
            key=lambda row: row["factor"],
        )
        return series[0], series[-1]

    small, big = pair("nodes")
    assert big["mean_filtering"] < small["mean_filtering"]

    small, big = pair("queries")
    assert big["mean_filtering"] > small["mean_filtering"]

    small, big = pair("tuples")
    assert big["mean_filtering"] > small["mean_filtering"]

    for row in rows:
        assert 0.0 <= row["filtering_gini"] < 1.0
