"""Router behaviour under fault injection: retries, fallback, no-op parity."""

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.errors import DeliveryError
from repro.faults import FaultInjector, FaultPlan
from repro.sim.messages import Message


class _Probe(Message):
    type = "probe"


def _sinked(network):
    received = []
    for node in network.nodes:
        node.register_handler(
            "probe", lambda n, m, log=received: log.append(n.ident)
        )
    return received


class TestRetries:
    def test_drops_are_retried_until_delivered(self):
        plan = FaultPlan(loss_probability=0.4, max_attempts=50, seed=11)
        injector = FaultInjector(plan)
        network = ChordNetwork.build(16, injector=injector)
        received = _sinked(network)
        for _ in range(50):
            network.router.send(network.nodes[0], _Probe(), 12345)
        assert len(received) == 50  # every message eventually lands
        stats = network.stats
        assert stats.messages_dropped > 0
        assert stats.retries == stats.messages_dropped
        assert stats.dropped_by_type["probe"] == stats.messages_dropped
        assert injector.backoff_total > 0.0

    def test_send_direct_is_retried_too(self):
        plan = FaultPlan(loss_probability=0.4, max_attempts=50, seed=5)
        injector = FaultInjector(plan)
        network = ChordNetwork.build(8, injector=injector)
        received = _sinked(network)
        source, target = network.nodes[0], network.nodes[3]
        for _ in range(30):
            network.router.send_direct(source, _Probe(), target)
        assert received == [target.ident] * 30

    def test_exhaustion_falls_back_to_successor_list(self):
        # With p=0.6 and max_attempts=2 the primary target frequently
        # exhausts; the successor list (drop-checked per entry) then
        # carries most of those messages through.
        plan = FaultPlan(loss_probability=0.6, max_attempts=2, seed=3)
        injector = FaultInjector(plan)
        network = ChordNetwork.build(16, injector=injector)
        received = _sinked(network)
        delivered = 0
        fallback = 0
        for attempt in range(200):
            target, _ = network.router.find_successor(network.nodes[0], attempt * 97)
            try:
                recipient = network.router.send(network.nodes[0], _Probe(), attempt * 97)
            except DeliveryError:
                continue
            delivered += 1
            if recipient is not target:
                fallback += 1
        assert delivered == len(received)
        assert fallback > 0  # some messages arrived via the successor list

    def test_delivery_error_after_total_exhaustion(self):
        plan = FaultPlan(loss_probability=0.95, max_attempts=1, seed=1)
        injector = FaultInjector(plan)
        network = ChordNetwork.build(4, injector=injector)
        _sinked(network)
        with pytest.raises(DeliveryError) as excinfo:
            for _ in range(200):
                network.router.send(network.nodes[0], _Probe(), 777)
        assert excinfo.value.message_type == "probe"
        assert excinfo.value.attempts >= 1

    def test_crashed_target_served_by_successor_without_faults(self):
        network = ChordNetwork.build(16)
        received = _sinked(network)
        target, _ = network.router.find_successor(network.nodes[0], 999)
        heir = target.successor
        network.fail(target)
        recipient = network.router.send(network.nodes[0], _Probe(), 999)
        assert recipient is heir
        assert received == [heir.ident]


class TestNoOpParity:
    """An empty plan must leave traffic bit-identical to no injector."""

    @staticmethod
    def _run_workload(injector):
        schema = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})
        network = ChordNetwork.build(32, injector=injector)
        engine = ContinuousQueryEngine(
            network, EngineConfig(algorithm="dai-t", seed=7)
        )
        subscriber = network.nodes[0]
        engine.subscribe(
            subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema
        )
        R, S = schema.relation("R"), schema.relation("S")
        for index in range(40):
            engine.clock.advance(1.0)
            engine.publish(network.nodes[index % 32], R, {"A": index, "B": index % 5})
            engine.publish(network.nodes[(index * 7) % 32], S, {"D": index, "E": index % 5})
        return network.stats.snapshot()

    def test_empty_plan_traffic_identical(self):
        clean = self._run_workload(None)
        noop = self._run_workload(FaultInjector(FaultPlan()))
        assert noop.hops == clean.hops
        assert noop.messages == clean.messages
        assert noop.hops_by_type == clean.hops_by_type
        assert noop.messages_by_type == clean.messages_by_type
        assert noop.messages_dropped == 0
        assert noop.retries == 0
        assert noop.messages_delayed == 0

    def test_noop_injector_rng_untouched(self):
        injector = FaultInjector(FaultPlan())
        state = injector.rng.getstate()
        self._run_workload(injector)
        assert injector.rng.getstate() == state
