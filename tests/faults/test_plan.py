"""FaultPlan / DelaySpec / NetFaultSpec: validation and no-op guarantees."""

import pytest

from repro.faults import DelaySpec, FaultPlan, NetFaultSpec


class TestDelaySpec:
    def test_defaults_are_noop(self):
        assert DelaySpec().is_noop

    def test_active_spec_is_not_noop(self):
        assert not DelaySpec(probability=0.5, minimum=1.0, maximum=2.0).is_noop

    @pytest.mark.parametrize("probability", [-0.1, 1.1])
    def test_rejects_bad_probability(self, probability):
        with pytest.raises(ValueError):
            DelaySpec(probability=probability)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            DelaySpec(probability=0.5, minimum=3.0, maximum=1.0)

    def test_rejects_negative_minimum(self):
        with pytest.raises(ValueError):
            DelaySpec(probability=0.5, minimum=-1.0)


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        plan = FaultPlan()
        assert plan.is_noop
        assert not plan.perturbs_delivery
        assert not plan.schedules_churn

    def test_loss_perturbs_delivery(self):
        plan = FaultPlan(loss_probability=0.1)
        assert plan.perturbs_delivery and not plan.schedules_churn

    def test_delay_perturbs_delivery(self):
        plan = FaultPlan(delay=DelaySpec(probability=0.2))
        assert plan.perturbs_delivery

    def test_churn_alone_does_not_perturb_delivery(self):
        plan = FaultPlan(crash_every=10.0)
        assert plan.schedules_churn
        assert not plan.perturbs_delivery
        assert not plan.is_noop

    @pytest.mark.parametrize("probability", [-0.01, 1.0])
    def test_rejects_bad_loss_probability(self, probability):
        with pytest.raises(ValueError):
            FaultPlan(loss_probability=probability)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            FaultPlan(max_attempts=0)

    def test_rejects_negative_periods(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_every=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(restart_after=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(backoff_base=-0.1)

    def test_plan_is_immutable(self):
        with pytest.raises(AttributeError):
            FaultPlan().loss_probability = 0.5


class TestNetFaultSpec:
    def test_defaults_are_noop(self):
        assert NetFaultSpec().is_noop

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"connect_refusal_probability": 0.1},
            {"frame_fault_probability": 0.1},
        ],
    )
    def test_any_wire_knob_is_not_noop(self, kwargs):
        assert not NetFaultSpec(**kwargs).is_noop

    @pytest.mark.parametrize("value", [-0.01, 1.0, 1.5])
    def test_rejects_bad_probabilities(self, value):
        with pytest.raises(ValueError):
            NetFaultSpec(connect_refusal_probability=value)
        with pytest.raises(ValueError):
            NetFaultSpec(frame_fault_probability=value)

    def test_wire_faults_perturb_wire_not_delivery(self):
        plan = FaultPlan(net=NetFaultSpec(frame_fault_probability=0.2))
        assert plan.perturbs_wire
        assert not plan.perturbs_delivery
        assert not plan.schedules_churn
        assert not plan.is_noop

    def test_jitter_alone_breaks_noop(self):
        # Jitter changes retry timing even with no injected faults, so a
        # jittered plan must not be treated as "changes nothing".
        plan = FaultPlan(backoff_jitter=0.5)
        assert not plan.is_noop
        assert not plan.perturbs_wire

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            FaultPlan(backoff_jitter=-0.1)
