"""ChaosHarness and soft-state lease recovery."""

import random

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle
from repro.faults import ChaosHarness, FaultInjector, FaultPlan, install_fault_plan
from repro.sim.simulator import Simulator


def _setup(algorithm="dai-t", n_nodes=64, **config):
    schema = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})
    injector = FaultInjector(FaultPlan(seed=21))
    network = ChordNetwork.build(n_nodes, injector=injector)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm=algorithm, seed=5, **config)
    )
    return schema, network, engine, injector


class TestHarnessChurn:
    def test_crash_removes_and_counts(self):
        _, network, engine, injector = _setup()
        harness = ChaosHarness(engine, injector)
        before = len(network)
        victim = harness.crash()
        assert victim is not None and not victim.alive
        assert len(network) == before - 1
        assert injector.crashes == 1
        assert network.ring_is_consistent()

    def test_protected_nodes_never_chosen(self):
        _, network, engine, injector = _setup(n_nodes=4)
        harness = ChaosHarness(engine, injector)
        protected = network.nodes[0]
        harness.protect(protected)
        for _ in range(3):
            harness.crash()
        assert protected.alive
        assert len(network) == 1

    def test_restart_rejoins_under_old_key(self):
        _, network, engine, injector = _setup()
        harness = ChaosHarness(engine, injector)
        victim = harness.crash()
        node = harness.restart()
        assert node.key == victim.key
        assert node.ident == victim.ident
        assert injector.restarts == 1
        assert network.ring_is_consistent()

    def test_crash_refuses_to_empty_the_ring(self):
        _, network, engine, injector = _setup(n_nodes=2)
        harness = ChaosHarness(engine, injector)
        assert harness.crash() is not None
        assert harness.crash() is None  # one node left: never crashed
        assert len(network) == 1


class TestLeaseRecovery:
    def test_refresh_is_idempotent_on_healthy_ring(self):
        schema, network, engine, injector = _setup()
        subscriber = network.nodes[0]
        engine.subscribe(
            subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema
        )
        storage_before = engine.load_snapshot().total_storage
        refreshed = engine.refresh_leases()
        assert refreshed["queries"] == 1
        assert engine.load_snapshot().total_storage == storage_before
        assert engine.load_snapshot().total_lease_reinstalls == 0

    def test_crashed_rewriter_state_reinstalled(self):
        schema, network, engine, injector = _setup()
        subscriber = network.nodes[0]
        query = engine.subscribe(
            subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema
        )
        harness = ChaosHarness(engine, injector)
        harness.protect(subscriber)
        # Crash the rewriters holding the query's attribute-level copies.
        holders = {
            node
            for node in network.nodes
            if any(
                stored.query.key == query.key for stored in engine.state(node).alqt
            )
        }
        assert holders
        for holder in holders:
            if holder is not subscriber:
                harness.crash(holder)
        harness.settle()
        assert engine.load_snapshot().total_lease_reinstalls >= 1
        # The query works again: a matching pair still notifies.
        R, S = schema.relation("R"), schema.relation("S")
        engine.clock.advance(1.0)
        engine.publish(network.nodes[1], R, {"A": 1, "B": 7})
        engine.clock.advance(1.0)
        engine.publish(network.nodes[2], S, {"D": 2, "E": 7})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_republication_rebuilds_evaluator_state(self):
        schema, network, engine, injector = _setup(algorithm="sai")
        subscriber = network.nodes[0]
        query = engine.subscribe(
            subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema
        )
        R, S = schema.relation("R"), schema.relation("S")
        engine.clock.advance(1.0)
        engine.publish(network.nodes[1], R, {"A": 1, "B": 7})
        harness = ChaosHarness(engine, injector)
        harness.protect(subscriber)
        # Crash every node holding value-level state (the stored tuple /
        # rewritten query for join value 7).
        holders = [
            node
            for node in network.nodes
            if node is not subscriber
            and (len(engine.state(node).vltt) or len(engine.state(node).vlqt))
        ]
        assert holders
        for holder in holders:
            harness.crash(holder)
        harness.settle()
        # The republished tuple must pair with the late arrival.
        engine.clock.advance(1.0)
        engine.publish(network.nodes[2], S, {"D": 2, "E": 7})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_windowed_refresh_skips_expired_tuples(self):
        schema, network, engine, injector = _setup(window=10.0)
        subscriber = network.nodes[0]
        engine.subscribe(
            subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema
        )
        R = schema.relation("R")
        engine.publish(network.nodes[1], R, {"A": 1, "B": 7})
        engine.clock.advance(100.0)
        engine.publish(network.nodes[1], R, {"A": 2, "B": 7})
        refreshed = engine.refresh_leases()
        assert refreshed["tuples"] == 1  # only the in-window tuple replays


class TestScheduledFaults:
    def test_install_fault_plan_drives_churn_and_refresh(self):
        schema = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})
        plan = FaultPlan(
            crash_every=10.0,
            crash_count=3,
            restart_after=5.0,
            lease_refresh_every=25.0,
            seed=13,
        )
        injector = FaultInjector(plan)
        network = ChordNetwork.build(64, injector=injector)
        engine = ContinuousQueryEngine(network, EngineConfig(algorithm="dai-q"))
        simulator = Simulator(network, clock=engine.clock)
        subscriber = network.nodes[0]
        engine.subscribe(
            subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema
        )
        harness = simulator.attach_faults(
            injector, engine, protect=(subscriber.ident,), until=100.0
        )
        assert isinstance(harness, ChaosHarness)
        simulator.run_until(100.0)
        assert injector.crashes == 3  # crash_count respected
        assert injector.restarts == 3
        assert len(network) == 64  # everyone came back
        assert network.ring_is_consistent()

    def test_attach_faults_without_engine_skips_churn(self):
        plan = FaultPlan(crash_every=10.0, seed=2)
        injector = FaultInjector(plan)
        network = ChordNetwork.build(16, injector=injector)
        simulator = Simulator(network)
        harness = install_fault_plan(simulator, injector)
        assert harness is None
        simulator.run_until(50.0)
        assert injector.crashes == 0  # churn needs an engine to recover
