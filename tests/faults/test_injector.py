"""FaultInjector: seeded decisions, backoff accounting, deferred queue."""

from repro import ChordNetwork
from repro.faults import DelaySpec, FaultInjector, FaultPlan, NetFaultSpec
from repro.sim.messages import Message


class _Recorder(Message):
    type = "probe"


def _ring_with_sink(n=8):
    network = ChordNetwork.build(n)
    received = []
    for node in network.nodes:
        node.register_handler(
            "probe", lambda n_, m, log=received: log.append((n_.ident, m))
        )
    return network, received


class TestSeededDecisions:
    def test_same_seed_same_drop_sequence(self):
        plan = FaultPlan(loss_probability=0.3, seed=99)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert [a.should_drop() for _ in range(50)] == [
            b.should_drop() for _ in range(50)
        ]

    def test_zero_loss_never_draws(self):
        injector = FaultInjector(FaultPlan())
        state_before = injector.rng.getstate()
        assert not any(injector.should_drop() for _ in range(10))
        assert injector.rng.getstate() == state_before

    def test_delay_sampling_respects_bounds(self):
        plan = FaultPlan(
            delay=DelaySpec(probability=1.0, minimum=0.5, maximum=2.0), seed=4
        )
        injector = FaultInjector(plan)
        samples = [injector.sample_delay() for _ in range(100)]
        assert all(0.5 <= s <= 2.0 for s in samples)

    def test_noop_delay_samples_zero(self):
        injector = FaultInjector(FaultPlan(loss_probability=0.5))
        assert injector.sample_delay() == 0.0


class TestBackoff:
    def test_backoff_doubles_per_attempt(self):
        injector = FaultInjector(FaultPlan(backoff_base=0.1))
        assert injector.note_backoff(1) == 0.1
        assert injector.note_backoff(2) == 0.2
        assert injector.note_backoff(3) == 0.4
        assert abs(injector.backoff_total - 0.7) < 1e-12

    def test_zero_jitter_is_exact_and_draw_free(self):
        injector = FaultInjector(FaultPlan(backoff_base=0.1))
        state_before = injector.rng.getstate()
        assert injector.jittered(0.4) == 0.4
        # No RNG draw: downstream fault decisions stay byte-identical
        # to pre-jitter behaviour.
        assert injector.rng.getstate() == state_before

    def test_jittered_pause_stays_in_bounds(self):
        plan = FaultPlan(backoff_base=0.1, backoff_jitter=0.5, seed=11)
        injector = FaultInjector(plan)
        samples = [injector.jittered(0.2) for _ in range(200)]
        assert all(0.2 <= s <= 0.2 * 1.5 for s in samples)
        assert len(set(samples)) > 1  # it actually jitters

    def test_jitter_is_reproducible_from_the_seed(self):
        plan = FaultPlan(backoff_jitter=0.5, seed=11)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert [a.jittered(1.0) for _ in range(50)] == [
            b.jittered(1.0) for _ in range(50)
        ]


class TestWireFaultSampling:
    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan(
            seed=42, net=NetFaultSpec(frame_fault_probability=0.4)
        )
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert [a.sample_frame_fault() for _ in range(100)] == [
            b.sample_frame_fault() for _ in range(100)
        ]

    def test_all_fault_kinds_appear(self):
        plan = FaultPlan(
            seed=3, net=NetFaultSpec(frame_fault_probability=0.9)
        )
        injector = FaultInjector(plan)
        kinds = {injector.sample_frame_fault() for _ in range(200)}
        assert {"reset", "truncate", "garble"} <= kinds

    def test_zero_probability_never_draws(self):
        injector = FaultInjector(FaultPlan())
        state_before = injector.rng.getstate()
        assert all(
            injector.sample_frame_fault() is None for _ in range(10)
        )
        assert not any(
            injector.should_refuse_connection() for _ in range(10)
        )
        assert injector.rng.getstate() == state_before

    def test_refusal_rate_tracks_probability(self):
        plan = FaultPlan(
            seed=8, net=NetFaultSpec(connect_refusal_probability=0.3)
        )
        injector = FaultInjector(plan)
        refused = sum(
            injector.should_refuse_connection() for _ in range(1000)
        )
        assert 200 < refused < 400


class TestDeferredQueue:
    def test_defer_then_flush_delivers_fifo(self):
        network, received = _ring_with_sink()
        injector = FaultInjector(FaultPlan())
        target = network.nodes[0]
        injector.defer(_Recorder(), target, 1.0)
        injector.defer(_Recorder(), target, 2.0)
        assert injector.pending_deliveries == 2
        assert injector.flush_deferred() == 2
        assert injector.pending_deliveries == 0
        assert [ident for ident, _ in received] == [target.ident] * 2

    def test_flush_limit(self):
        network, received = _ring_with_sink()
        injector = FaultInjector(FaultPlan())
        for _ in range(5):
            injector.defer(_Recorder(), network.nodes[0], 1.0)
        assert injector.flush_deferred(limit=2) == 2
        assert injector.pending_deliveries == 3

    def test_crashed_target_redirects_to_successor(self):
        network, received = _ring_with_sink()
        target = network.nodes[2]
        heir = target.successor
        injector = FaultInjector(FaultPlan())
        injector.defer(_Recorder(), target, 1.0)
        network.fail(target)
        injector.flush_deferred()
        assert received == [(heir.ident, received[0][1])]
        assert injector.messages_lost == 0

    def test_message_lost_when_whole_successor_list_dead(self):
        network, received = _ring_with_sink(3)
        target = network.nodes[0]
        injector = FaultInjector(FaultPlan())
        injector.defer(_Recorder(), target, 1.0)
        for node in list(network.nodes):
            network.fail(node)
        injector.flush_deferred()
        assert received == []
        assert injector.messages_lost == 1

    def test_attached_simulator_gets_timed_events(self):
        from repro.sim.simulator import Simulator

        network, received = _ring_with_sink()
        simulator = Simulator(network)
        injector = FaultInjector(FaultPlan())
        injector.attach(simulator)
        injector.defer(_Recorder(), network.nodes[0], 5.0)
        assert injector.pending_deliveries == 0  # queued as an event instead
        simulator.run()
        assert len(received) == 1
        assert simulator.now == 5.0
