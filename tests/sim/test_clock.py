"""Tests for the logical clock."""

import pytest

from repro.sim.clock import LogicalClock


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now == 0.0

    def test_custom_start(self):
        assert LogicalClock(5.0).now == 5.0

    def test_advance(self):
        clock = LogicalClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_zero_allowed(self):
        clock = LogicalClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-1.0)

    def test_advance_to_moves_forward(self):
        clock = LogicalClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_advance_to_past_is_noop(self):
        clock = LogicalClock(10.0)
        clock.advance_to(3.0)
        assert clock.now == 10.0
