"""Differential tests for the lifted sharded modes (DESIGN.md §15).

The blanket preconditions (unbounded window, ``replication_factor=1``,
JFRT off) are gone; these tests pin the admissibility argument for
their replacements — barrier-aligned eviction and the owner-aware
exchanges — by replaying seeded workloads serial vs staged (shards=1)
vs forked (shards≥2) and requiring byte-identical notification digests
and metrics rows, including the sliding-window eviction count.

Two layers:

* a parametrized sweep running the full featured configuration
  (window + replication + JFRT) for **all four algorithms** in every
  execution mode;
* a Hypothesis sweep drawing random feature combinations, shard
  counts, epoch sizes and eviction schedules, checking the same
  equivalence — plus the invisibility property that the eviction
  *schedule* never changes traffic or answers (only the eviction
  count itself depends on ``evict_every``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.configs import Scale
from repro.bench.harness import run_standard, workload_for
from repro.bench.macro import notification_digest
from repro.bench.parallel import fork_available
from repro.chord.network import ChordNetwork
from repro.core.engine import ContinuousQueryEngine, EngineConfig
from repro.sim.shard import run_sharded

ALGORITHMS = ("sai", "dai-q", "dai-t", "dai-v")

POINT = Scale(
    name="shard-feature-test",
    n_nodes=48,
    n_queries=20,
    n_tuples=48,
    domain_size=30,
    zipf_s=0.75,
)

FEATURED = {"window": 20.0, "replication_factor": 2, "jfrt_capacity": 4}

WORKLOAD = workload_for(POINT)

#: Serial references by (algorithm, frozen overrides, evict_every) —
#: Hypothesis revisits configurations, the reference never changes.
_reference_cache: dict = {}


def serial_reference(algorithm: str, overrides: dict, evict_every: int) -> dict:
    key = (algorithm, tuple(sorted(overrides.items())), evict_every)
    cached = _reference_cache.get(key)
    if cached is not None:
        return cached
    result = run_standard(
        algorithm,
        POINT,
        config_overrides={"index_choice": "random", **overrides},
        workload=WORKLOAD,
        seed=1,
        evict_every=evict_every,
    )
    row = {
        "install_hops": result.install_traffic.hops,
        "stream_hops": result.stream_traffic.hops,
        "stream_messages": dict(result.stream_traffic.messages_by_type),
        "notifications": result.notifications_delivered,
        "digest": notification_digest(result.engine),
        "evictions": result.evictions,
    }
    _reference_cache[key] = row
    return row


def sharded_row(
    algorithm: str,
    overrides: dict,
    *,
    shards: int,
    batch_size: int = 16,
    evict_every: int = 64,
):
    network = ChordNetwork.build(POINT.n_nodes, fast_routing=True)
    engine = ContinuousQueryEngine(
        network,
        EngineConfig(algorithm=algorithm, index_choice="random", seed=1, **overrides),
    )
    result = run_sharded(
        engine,
        WORKLOAD,
        shards=shards,
        batch_size=batch_size,
        seed=1,
        evict_every=evict_every,
    )
    return result, {
        "install_hops": result.install_traffic.hops,
        "stream_hops": result.stream_traffic.hops,
        "stream_messages": dict(result.stream_traffic.messages_by_type),
        "notifications": result.notifications_delivered,
        "digest": result.notification_digest,
        "evictions": result.evictions,
    }


class TestFeaturedEquivalence:
    """Window + replication + JFRT together, all algorithms, all modes."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_staged_matches_serial(self, algorithm):
        expected = serial_reference(algorithm, FEATURED, 64)
        result, got = sharded_row(algorithm, FEATURED, shards=1)
        assert got == expected
        assert result.exchange_records == 0  # single segment, no crossing
        assert set(result.features) == {
            "barrier-aligned eviction",
            "owner-aware replica exchange",
            "owner-aware JFRT exchange",
        }
        # The window is short enough that eviction must actually fire.
        assert result.evictions > 0

    @pytest.mark.skipif(not fork_available(), reason="requires fork start method")
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_forked_matches_serial(self, algorithm):
        expected = serial_reference(algorithm, FEATURED, 64)
        result, got = sharded_row(algorithm, FEATURED, shards=3)
        assert got == expected
        assert result.shards == 3


class TestEvictionSchedule:
    def test_eviction_is_invisible_to_answers(self):
        """Traffic and digests are independent of ``evict_every`` —
        eviction only ever removes entries no future event can match."""
        baseline = serial_reference("sai", FEATURED, 64)
        for evict_every in (3, 17, 1000):
            _, got = sharded_row("sai", FEATURED, shards=1, evict_every=evict_every)
            visible = {k: v for k, v in got.items() if k != "evictions"}
            expected = {k: v for k, v in baseline.items() if k != "evictions"}
            assert visible == expected

    def test_eviction_count_tracks_the_serial_schedule(self):
        """With matching ``evict_every`` the *count* is also exact."""
        for evict_every in (5, 64):
            expected = serial_reference("dai-t", FEATURED, evict_every)
            _, got = sharded_row(
                "dai-t", FEATURED, shards=1, evict_every=evict_every
            )
            assert got == expected


@st.composite
def feature_configs(draw):
    overrides = {}
    window = draw(st.sampled_from([None, 12.0, 30.0]))
    if window is not None:
        overrides["window"] = window
    replication = draw(st.sampled_from([1, 2, 3]))
    if replication != 1:
        overrides["replication_factor"] = replication
    jfrt = draw(st.sampled_from([0, 4]))
    if jfrt:
        overrides["jfrt_capacity"] = jfrt
    return overrides


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    algorithm=st.sampled_from(ALGORITHMS),
    overrides=feature_configs(),
    shards=st.sampled_from([1, 2, 3]),
    batch_size=st.sampled_from([5, 16, 64]),
    evict_every=st.sampled_from([7, 64]),
)
def test_random_feature_mix_matches_serial(
    algorithm, overrides, shards, batch_size, evict_every
):
    if shards > 1 and not fork_available():  # pragma: no cover - platform
        shards = 1
    expected = serial_reference(algorithm, overrides, evict_every)
    result, got = sharded_row(
        algorithm,
        overrides,
        shards=shards,
        batch_size=batch_size,
        evict_every=evict_every,
    )
    assert got == expected
    if shards == 1:
        assert result.exchange_records == 0
