"""Tests for the flat batch buffer and the streaming dispatch loop."""

from __future__ import annotations

import pytest

from repro.chord.network import ChordNetwork
from repro.perf import PERF
from repro.sim.events import EventRing
from repro.sim.simulator import Simulator


def triples(n, start=0.0):
    return [(start + float(i), f"target-{i}", i) for i in range(n)]


class TestEventRing:
    def test_refill_fills_up_to_capacity(self):
        ring = EventRing(capacity=4)
        source = iter(triples(10))
        assert ring.refill(source) == 4
        assert len(ring) == 4
        assert list(ring.times[:4]) == [0.0, 1.0, 2.0, 3.0]
        assert ring.targets[:4] == ["target-0", "target-1", "target-2", "target-3"]
        # The same iterator continues where the first batch stopped.
        assert ring.refill(source) == 4
        assert ring.payloads[:4] == [4, 5, 6, 7]
        assert ring.refill(source) == 2
        assert ring.refill(source) == 0

    def test_generation_bumps_per_refill(self):
        ring = EventRing(capacity=2)
        generation = ring.generation
        ring.refill(iter(triples(2)))
        assert ring.generation == generation + 1
        ring.refill(iter(triples(2)))
        assert ring.generation == generation + 2

    def test_decreasing_times_rejected(self):
        ring = EventRing(capacity=8)
        with pytest.raises(ValueError, match="non-decreasing"):
            ring.refill(iter([(1.0, None, None), (0.5, None, None)]))

    def test_equal_times_allowed(self):
        ring = EventRing(capacity=8)
        assert ring.refill(iter([(1.0, None, 1), (1.0, None, 2)])) == 2

    def test_clear_drops_references(self):
        ring = EventRing(capacity=4)
        ring.refill(iter(triples(3)))
        ring.clear()
        assert len(ring) == 0
        assert ring.targets == [None] * 4
        assert ring.payloads == [None] * 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)

    def test_perf_counters_when_enabled(self):
        ring = EventRing(capacity=4)
        PERF.reset()
        PERF.enable()
        try:
            source = iter(triples(6))
            ring.refill(source)
            ring.refill(source)
        finally:
            PERF.disable()
        counters = PERF.snapshot()["counters"]
        PERF.reset()
        assert counters["events.batches"] == 2
        assert counters["events.batched"] == 6


class TestRunStream:
    def test_dispatches_in_order_and_advances_clock(self):
        simulator = Simulator(ChordNetwork.build(2))
        seen = []
        dispatched = simulator.run_stream(
            iter(triples(10)),
            lambda target, payload: seen.append((simulator.now, target, payload)),
            batch=3,
        )
        assert dispatched == 10
        assert simulator.events_executed == 10
        assert [payload for _, _, payload in seen] == list(range(10))
        assert [time for time, _, _ in seen] == [float(i) for i in range(10)]
        assert simulator.now == 9.0

    def test_empty_stream(self):
        simulator = Simulator(ChordNetwork.build(2))
        assert simulator.run_stream(iter(()), lambda t, p: None) == 0

    def test_matches_heap_queue_execution(self):
        """The ring dispatch and the heap queue run identical schedules."""
        events = triples(25)

        streamed = []
        simulator = Simulator(ChordNetwork.build(2))
        simulator.run_stream(
            iter(events),
            lambda target, payload: streamed.append((simulator.now, payload)),
            batch=7,
        )

        queued = []
        reference = Simulator(ChordNetwork.build(2))
        for time, _, payload in events:
            reference.at(
                time, lambda p=payload: queued.append((reference.now, p))
            )
        reference.run()

        assert streamed == queued
