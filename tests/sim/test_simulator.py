"""Tests for the discrete-event simulator."""

import pytest

from repro.chord import ChordNetwork
from repro.sim.simulator import Simulator, schedule_stabilization


@pytest.fixture
def simulator(tiny_network):
    return Simulator(tiny_network)


class TestScheduling:
    def test_at_runs_at_time(self, simulator):
        seen = []
        simulator.at(5.0, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [5.0]

    def test_at_in_past_rejected(self, simulator):
        simulator.clock.advance(10.0)
        with pytest.raises(ValueError):
            simulator.at(5.0, lambda: None)

    def test_after_is_relative(self, simulator):
        simulator.clock.advance(3.0)
        seen = []
        simulator.after(2.0, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [5.0]

    def test_every_with_until(self, simulator):
        ticks = []
        simulator.every(1.0, lambda: ticks.append(simulator.now), until=4.5)
        simulator.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_every_rejects_nonpositive_period(self, simulator):
        with pytest.raises(ValueError):
            simulator.every(0.0, lambda: None)

    def test_every_with_start(self, simulator):
        ticks = []
        simulator.every(2.0, lambda: ticks.append(simulator.now), start=5.0, until=9.0)
        simulator.run()
        assert ticks == [5.0, 7.0, 9.0]


class TestExecution:
    def test_step_returns_false_when_empty(self, simulator):
        assert simulator.step() is False

    def test_run_counts_events(self, simulator):
        for t in (1.0, 2.0, 3.0):
            simulator.at(t, lambda: None)
        assert simulator.run() == 3
        assert simulator.events_executed == 3

    def test_run_max_events(self, simulator):
        for t in (1.0, 2.0, 3.0):
            simulator.at(t, lambda: None)
        assert simulator.run(max_events=2) == 2
        assert len(simulator.queue) == 1

    def test_run_until_stops_at_horizon(self, simulator):
        seen = []
        for t in (1.0, 2.0, 3.0, 4.0):
            simulator.at(t, (lambda x: lambda: seen.append(x))(t))
        simulator.run_until(2.5)
        assert seen == [1.0, 2.0]
        assert simulator.now == 2.5

    def test_run_until_unbounded_recurrence_stops(self, simulator):
        ticks = []
        simulator.every(1.0, lambda: ticks.append(simulator.now))
        simulator.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_events_can_schedule_events(self, simulator):
        seen = []

        def first():
            seen.append("first")
            simulator.after(1.0, lambda: seen.append("second"))

        simulator.at(1.0, first)
        simulator.run()
        assert seen == ["first", "second"]


class TestStabilizationScheduling:
    def test_runs_rounds(self):
        network = ChordNetwork.build(8)
        simulator = Simulator(network)
        # Break a pointer; scheduled stabilization repairs it.
        node = network.nodes[0]
        node.predecessor = None
        schedule_stabilization(simulator, period=1.0, until=3.0)
        simulator.run()
        assert node.predecessor is network.nodes[-1]
