"""Tests for overlay message records."""

import pytest

from repro.sim.messages import (
    ALIndexMessage,
    JoinMessage,
    Message,
    NotificationMessage,
    QueryIndexMessage,
    UnsubscribeMessage,
    VLIndexMessage,
)
from repro.sql.parser import parse_query
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

RELATION = Relation("R", ("A", "B"))
TUPLE = DataTuple.make(RELATION, {"A": 1, "B": 2})
QUERY = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.D")


class TestMessageTypes:
    def test_type_tags_distinct(self):
        tags = {
            cls.type
            for cls in (
                Message,
                QueryIndexMessage,
                ALIndexMessage,
                VLIndexMessage,
                JoinMessage,
                NotificationMessage,
                UnsubscribeMessage,
            )
        }
        assert len(tags) == 7

    def test_messages_frozen(self):
        message = ALIndexMessage(tuple=TUPLE, index_attribute="B")
        with pytest.raises(AttributeError):
            message.index_attribute = "C"

    def test_join_message_defaults(self):
        message = JoinMessage()
        assert message.rewritten == ()
        assert message.projections == ()

    def test_query_message_carries_routing_ident(self):
        message = QueryIndexMessage(query=QUERY, index_side="left", routing_ident=42)
        assert message.routing_ident == 42

    def test_payload_fields_are_required(self):
        """No half-initialized messages: payloads have no default."""
        with pytest.raises(TypeError):
            QueryIndexMessage()
        with pytest.raises(TypeError):
            ALIndexMessage(index_attribute="B")
        with pytest.raises(TypeError):
            VLIndexMessage(tuple=TUPLE)

    def test_notification_message_batches(self):
        message = NotificationMessage(notifications=("a", "b"), subscriber_ident=7)
        assert len(message.notifications) == 2
        assert message.subscriber_ident == 7

    def test_unsubscribe_carries_key(self):
        assert UnsubscribeMessage(query_key="k").query_key == "k"
