"""Tests for overlay message records."""

import pytest

from repro.sim.messages import (
    ALIndexMessage,
    JoinMessage,
    Message,
    NotificationMessage,
    QueryIndexMessage,
    UnsubscribeMessage,
    VLIndexMessage,
)


class TestMessageTypes:
    def test_type_tags_distinct(self):
        tags = {
            cls.type
            for cls in (
                Message,
                QueryIndexMessage,
                ALIndexMessage,
                VLIndexMessage,
                JoinMessage,
                NotificationMessage,
                UnsubscribeMessage,
            )
        }
        assert len(tags) == 7

    def test_messages_frozen(self):
        message = ALIndexMessage(tuple=None, index_attribute="B")
        with pytest.raises(AttributeError):
            message.index_attribute = "C"

    def test_join_message_defaults(self):
        message = JoinMessage()
        assert message.rewritten == ()
        assert message.projections == ()

    def test_query_message_carries_routing_ident(self):
        message = QueryIndexMessage(query=None, index_side="left", routing_ident=42)
        assert message.routing_ident == 42

    def test_notification_message_batches(self):
        message = NotificationMessage(notifications=("a", "b"), subscriber_ident=7)
        assert len(message.notifications) == 2
        assert message.subscriber_ident == 7

    def test_unsubscribe_carries_key(self):
        assert UnsubscribeMessage(query_key="k").query_key == "k"
