"""Differential tests: the staged/sharded executor ≡ serial replay.

The sharded fast path is only admissible because it is *exactly* the
serial simulator — same hop and message counters per type, same
delivered notifications, same suppression counts (DESIGN.md §14).
These tests replay one seeded workload per algorithm three ways
(serial harness, staged in-process, forked shards) and require
bit-identical metrics, mirroring ``python -m repro.bench.scale
--verify`` at test-suite scale.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import Scale
from repro.bench.harness import run_standard, workload_for
from repro.bench.macro import notification_digest
from repro.bench.parallel import fork_available
from repro.chord.network import ChordNetwork
from repro.core.engine import ContinuousQueryEngine, EngineConfig
from repro.sim.shard import ShardError, run_sharded, shard_capabilities

ALGORITHMS = ("sai", "dai-q", "dai-t", "dai-v")

POINT = Scale(
    name="shard-test",
    n_nodes=64,
    n_queries=30,
    n_tuples=60,
    domain_size=40,
    zipf_s=0.75,
)


def serial_reference(algorithm, workload, seed=1):
    result = run_standard(
        algorithm,
        POINT,
        config_overrides={"index_choice": "random"},
        workload=workload,
        seed=seed,
    )
    return {
        "install_hops": result.install_traffic.hops,
        "stream_hops": result.stream_traffic.hops,
        "stream_messages": dict(result.stream_traffic.messages_by_type),
        "notifications": result.notifications_delivered,
        "digest": notification_digest(result.engine),
    }


def sharded_run(algorithm, workload, *, shards, seed=1, fast_routing=True):
    network = ChordNetwork.build(POINT.n_nodes, fast_routing=fast_routing)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm=algorithm, index_choice="random", seed=seed)
    )
    result = run_sharded(engine, workload, shards=shards, batch_size=16, seed=seed)
    return result, {
        "install_hops": result.install_traffic.hops,
        "stream_hops": result.stream_traffic.hops,
        "stream_messages": dict(result.stream_traffic.messages_by_type),
        "notifications": result.notifications_delivered,
        "digest": result.notification_digest,
    }


@pytest.fixture(scope="module")
def workload():
    return workload_for(POINT)


class TestStagedEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_staged_in_process_matches_serial(self, algorithm, workload):
        expected = serial_reference(algorithm, workload)
        result, got = sharded_run(algorithm, workload, shards=1)
        assert got == expected
        assert result.shards == 1
        assert result.events == len(workload)
        assert result.duplicate_deliveries == 0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_staged_without_fast_routing_matches_serial(self, algorithm, workload):
        expected = serial_reference(algorithm, workload)
        _, got = sharded_run(algorithm, workload, shards=1, fast_routing=False)
        assert got == expected


@pytest.mark.skipif(not fork_available(), reason="requires fork start method")
class TestForkedEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_forked_shards_match_serial(self, algorithm, workload):
        expected = serial_reference(algorithm, workload)
        result, got = sharded_run(algorithm, workload, shards=3)
        assert got == expected
        assert result.shards == 3


class TestCapabilities:
    """The blanket preconditions are gone; lifted modes carry them.

    Each once-rejected configuration now runs sharded and is named by
    :func:`shard_capabilities`; the genuinely unsupported perturbing
    fault injector keeps a clear error.
    """

    def _engine(self, **overrides):
        network = ChordNetwork.build(64, fast_routing=True)
        config = EngineConfig(algorithm="sai", index_choice="random", **overrides)
        return ContinuousQueryEngine(network, config)

    def test_window_lifted(self, workload):
        engine = self._engine(window=10.0)
        assert shard_capabilities(engine) == ("barrier-aligned eviction",)
        result = run_sharded(engine, workload, batch_size=16)
        assert result.features == ("barrier-aligned eviction",)

    def test_replication_lifted(self, workload):
        engine = self._engine(replication_factor=2)
        assert shard_capabilities(engine) == ("owner-aware replica exchange",)
        result = run_sharded(engine, workload, batch_size=16)
        assert result.features == ("owner-aware replica exchange",)

    def test_jfrt_lifted(self, workload):
        engine = self._engine(jfrt_capacity=4)
        assert shard_capabilities(engine) == ("owner-aware JFRT exchange",)
        result = run_sharded(engine, workload, batch_size=16)
        assert result.features == ("owner-aware JFRT exchange",)

    def test_all_features_engage_together(self, workload):
        engine = self._engine(window=10.0, replication_factor=2, jfrt_capacity=4)
        assert shard_capabilities(engine) == (
            "barrier-aligned eviction",
            "owner-aware replica exchange",
            "owner-aware JFRT exchange",
        )

    def test_stripped_config_reports_no_features(self, workload):
        engine = self._engine()
        assert shard_capabilities(engine) == ()
        result = run_sharded(engine, workload, batch_size=16)
        assert result.features == ()

    def test_perturbing_fault_injector_rejected(self, workload):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        engine = self._engine()
        engine.network.injector = FaultInjector(FaultPlan(loss_probability=0.1))
        with pytest.raises(ShardError, match="fault-free"):
            run_sharded(engine, workload)

    def test_bad_evict_every_rejected(self, workload):
        with pytest.raises(ShardError, match="evict_every"):
            run_sharded(self._engine(window=10.0), workload, evict_every=0)
