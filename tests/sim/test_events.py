"""Tests for the event queue."""

from hypothesis import given, strategies as st

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append(3))
        queue.push(1.0, lambda: order.append(1))
        queue.push(2.0, lambda: order.append(2))
        while queue:
            queue.pop().action()
        assert order == [1, 2, 3]

    def test_ties_broken_fifo(self):
        queue = EventQueue()
        order = []
        for tag in range(5):
            queue.push(1.0, (lambda t: lambda: order.append(t))(tag))
        while queue:
            queue.pop().action()
        assert order == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue and len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(4.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_labels_kept(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="tick")
        assert event.label == "tick"

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_property_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)
