"""Tests for traffic counters and load-distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    NodeLoad,
    TrafficStats,
    gini,
    participation,
    percentile_series,
    sorted_loads,
    top_share,
)


class TestTrafficStats:
    def test_record(self):
        stats = TrafficStats()
        stats.record("join", 5)
        stats.record("join", 3)
        stats.record("query", 2)
        assert stats.hops == 10
        assert stats.messages == 3
        assert stats.hops_by_type["join"] == 8
        assert stats.messages_by_type["query"] == 1

    def test_record_batch(self):
        stats = TrafficStats()
        stats.record_batch("al-index", message_count=8, hops=20)
        assert stats.messages == 8
        assert stats.hops == 20

    def test_record_hops_only(self):
        stats = TrafficStats()
        stats.record_hops("lookup", 4)
        assert stats.hops == 4
        assert stats.messages == 0

    def test_snapshot_is_immutable_copy(self):
        stats = TrafficStats()
        stats.record("x", 1)
        snap = stats.snapshot()
        stats.record("x", 1)
        assert snap.hops == 1
        assert stats.hops == 2

    def test_since(self):
        stats = TrafficStats()
        stats.record("x", 3)
        snap = stats.snapshot()
        stats.record("x", 4)
        stats.record("y", 1)
        delta = stats.since(snap)
        assert delta.hops == 5
        assert delta.messages == 2
        assert delta.hops_by_type == {"x": 4, "y": 1}

    def test_reset(self):
        stats = TrafficStats()
        stats.record("x", 3)
        stats.reset()
        assert stats.hops == 0 and stats.messages == 0
        assert not stats.hops_by_type


class TestNodeLoad:
    def test_levels_sum_into_filtering(self):
        load = NodeLoad()
        load.add_attribute_level(5)
        load.add_value_level(3)
        assert load.filtering == 8
        assert load.attribute_level_filtering == 5
        assert load.value_level_filtering == 3


class TestDistributionHelpers:
    def test_sorted_loads_descending(self):
        assert list(sorted_loads([1, 5, 3])) == [5, 3, 1]

    def test_sorted_loads_empty(self):
        assert sorted_loads([]).size == 0

    def test_gini_balanced_is_zero(self):
        assert gini([4, 4, 4, 4]) == pytest.approx(0.0)

    def test_gini_concentrated_near_one(self):
        values = [0] * 99 + [100]
        assert gini(values) > 0.95

    def test_gini_empty_or_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_gini_orders_inequality(self):
        assert gini([1, 1, 1, 9]) > gini([2, 3, 3, 4])

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100))
    def test_property_gini_bounded(self, values):
        g = gini(values)
        assert 0.0 <= g < 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=5),
    )
    def test_property_gini_scale_invariant(self, values, factor):
        scaled = [v * factor for v in values]
        assert gini(values) == pytest.approx(gini(scaled), abs=1e-9)

    def test_top_share(self):
        values = [10] + [1] * 9
        assert top_share(values, 0.1) == pytest.approx(10 / 19)

    def test_top_share_all(self):
        assert top_share([5, 5], 1.0) == pytest.approx(1.0)

    def test_top_share_validates_fraction(self):
        with pytest.raises(ValueError):
            top_share([1], 0.0)

    def test_top_share_empty(self):
        assert top_share([], 0.5) == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=60))
    def test_property_top_share_monotone_in_fraction(self, values):
        small = top_share(values, 0.1)
        large = top_share(values, 0.9)
        assert small <= large + 1e-12

    def test_percentile_series(self):
        series = percentile_series(range(101), percentiles=(50, 100))
        assert series[50] == pytest.approx(50.0)
        assert series[100] == pytest.approx(100.0)

    def test_percentile_series_empty(self):
        assert percentile_series([], percentiles=(50,)) == {50: 0.0}

    def test_participation(self):
        assert participation([0, 0, 1, 2]) == pytest.approx(0.5)
        assert participation([]) == 0.0
        assert participation([1, 1]) == 1.0

    def test_sorted_loads_returns_numpy(self):
        assert isinstance(sorted_loads([1]), np.ndarray)
