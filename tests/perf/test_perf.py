"""Tests for the opt-in perf instrumentation registry."""

from __future__ import annotations

import time

from repro.perf import PERF, PerfRegistry


class TestDisabled:
    def test_disabled_by_default(self):
        assert PerfRegistry().enabled is False

    def test_count_is_noop(self):
        registry = PerfRegistry()
        registry.count("x", 5)
        assert registry.counter("x") == 0
        assert registry.snapshot()["counters"] == {}

    def test_timer_is_shared_null_object(self):
        registry = PerfRegistry()
        first, second = registry.timer("t"), registry.timer("t")
        assert first is second  # no per-call allocation while disabled
        with first:
            pass
        assert registry.seconds("t") == 0.0
        assert registry.calls("t") == 0


class TestEnabled:
    def test_counters_accumulate(self):
        registry = PerfRegistry(enabled=True)
        registry.count("evictions")
        registry.count("evictions", 4)
        registry.count("other", 2)
        assert registry.counter("evictions") == 5
        assert registry.snapshot()["counters"] == {"evictions": 5, "other": 2}

    def test_timer_accumulates_seconds_and_calls(self):
        registry = PerfRegistry(enabled=True)
        for _ in range(3):
            with registry.timer("sleepy"):
                time.sleep(0.002)
        assert registry.calls("sleepy") == 3
        assert registry.seconds("sleepy") >= 0.006
        snap = registry.snapshot()["timers"]["sleepy"]
        assert snap["calls"] == 3
        assert snap["seconds"] == registry.seconds("sleepy")

    def test_timer_records_on_exception(self):
        registry = PerfRegistry(enabled=True)
        try:
            with registry.timer("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert registry.calls("failing") == 1

    def test_reset_clears_values_not_flag(self):
        registry = PerfRegistry(enabled=True)
        registry.count("x")
        with registry.timer("t"):
            pass
        registry.reset()
        assert registry.enabled is True
        assert registry.counter("x") == 0
        assert registry.calls("t") == 0

    def test_enable_disable_round_trip(self):
        registry = PerfRegistry()
        registry.enable()
        registry.count("x")
        registry.disable()
        registry.count("x")
        assert registry.counter("x") == 1


class TestInstrumentedSites:
    def test_eviction_and_rewrite_counters_record(self):
        from repro.bench.configs import Scale
        from repro.bench.harness import run_standard

        tiny = Scale("tiny", n_nodes=24, n_queries=12, n_tuples=40, domain_size=30)
        PERF.reset()
        PERF.enable()
        try:
            run_standard("dai-t", tiny, config_overrides={"window": 10.0})
        finally:
            PERF.disable()
        counters = PERF.snapshot()["counters"]
        PERF.reset()
        assert counters.get("sql.rewrites", 0) > 0
        assert "vlqt.evicted" in counters
        assert counters.get("hash.parts_hit", 0) > 0

    def test_scale_counters_record(self):
        """The §14 fast-path sites: snapshot rebuilds, epochs, batches."""
        from repro.bench.configs import Scale
        from repro.bench.harness import workload_for
        from repro.chord.network import ChordNetwork
        from repro.core.engine import ContinuousQueryEngine, EngineConfig
        from repro.sim.shard import run_sharded

        tiny = Scale("tiny", n_nodes=24, n_queries=8, n_tuples=20, domain_size=30)
        workload = workload_for(tiny)
        network = ChordNetwork.build(tiny.n_nodes, fast_routing=True)
        engine = ContinuousQueryEngine(
            network, EngineConfig(algorithm="sai", index_choice="random", seed=1)
        )
        PERF.reset()
        PERF.enable()
        try:
            run_sharded(engine, workload, shards=1, batch_size=8)
        finally:
            PERF.disable()
        counters = PERF.snapshot()["counters"]
        PERF.reset()
        assert counters.get("snapshot.rebuilds", 0) >= 1
        assert counters.get("shard.epochs", 0) >= tiny.n_tuples // 8
        assert counters.get("shard.batch.events", 0) == tiny.n_tuples

    def test_barrier_counters_record(self):
        """The §15 lifted-mode sites: eviction replay + owner exchange."""
        from repro.bench.configs import Scale
        from repro.bench.harness import workload_for
        from repro.bench.parallel import fork_available
        from repro.chord.network import ChordNetwork
        from repro.core.engine import ContinuousQueryEngine, EngineConfig
        from repro.sim.shard import run_sharded

        tiny = Scale("tiny", n_nodes=24, n_queries=8, n_tuples=20, domain_size=30)
        workload = workload_for(tiny)
        shards = 2 if fork_available() else 1
        network = ChordNetwork.build(tiny.n_nodes, fast_routing=True)
        engine = ContinuousQueryEngine(
            network,
            EngineConfig(
                algorithm="sai",
                index_choice="random",
                seed=1,
                window=10.0,
                replication_factor=2,
                jfrt_capacity=4,
            ),
        )
        PERF.reset()
        PERF.enable()
        try:
            result = run_sharded(
                engine, workload, shards=shards, batch_size=8, evict_every=8
            )
        finally:
            PERF.disable()
        counters = PERF.snapshot()["counters"]
        PERF.reset()
        # One eviction replay per barrier-aligned boundary + final sweep.
        expected_replays = tiny.n_queries + tiny.n_tuples
        assert counters.get("shard.evictions.replayed", 0) >= expected_replays // 8
        if shards > 1:
            assert counters.get("shard.exchange.records", 0) == (
                result.exchange_records
            )
            assert result.exchange_records > 0

    def test_scale_counters_zero_overhead_when_disabled(self):
        """Disabled registry: the same run records nothing at all."""
        from repro.bench.configs import Scale
        from repro.bench.harness import workload_for
        from repro.chord.network import ChordNetwork
        from repro.core.engine import ContinuousQueryEngine, EngineConfig
        from repro.sim.shard import run_sharded

        tiny = Scale("tiny", n_nodes=24, n_queries=8, n_tuples=20, domain_size=30)
        network = ChordNetwork.build(tiny.n_nodes, fast_routing=True)
        # The featured configuration drives the §15 sites too (barrier
        # eviction replay, owner-aware exchange) — still zero recording.
        engine = ContinuousQueryEngine(
            network,
            EngineConfig(
                algorithm="sai",
                index_choice="random",
                seed=1,
                window=10.0,
                replication_factor=2,
                jfrt_capacity=4,
            ),
        )
        assert PERF.enabled is False
        run_sharded(engine, workload_for(tiny), shards=1, batch_size=8, evict_every=8)
        assert PERF.snapshot()["counters"] == {}
        assert PERF.snapshot()["timers"] == {}

    def test_global_registry_disabled_in_tests(self):
        # REPRO_PERF is not set for the suite, so instrumented hot paths
        # must run with the zero-overhead branch.
        assert PERF.enabled is False
