"""Tests for workload value distributions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.distributions import (
    PermutedZipf,
    UniformValues,
    ZipfValues,
    empirical_skew,
)


class TestUniform:
    def test_in_range(self):
        dist = UniformValues(10)
        rng = random.Random(0)
        assert all(0 <= dist.sample(rng) < 10 for _ in range(200))

    def test_covers_domain(self):
        dist = UniformValues(5)
        rng = random.Random(1)
        assert {dist.sample(rng) for _ in range(500)} == set(range(5))

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            UniformValues(0)


class TestZipf:
    def test_in_range(self):
        dist = ZipfValues(100, s=1.0)
        rng = random.Random(0)
        assert all(0 <= dist.sample(rng) < 100 for _ in range(500))

    def test_rank_zero_most_frequent(self):
        dist = ZipfValues(50, s=1.2)
        rng = random.Random(2)
        samples = [dist.sample(rng) for _ in range(2000)]
        counts = {value: samples.count(value) for value in set(samples)}
        assert max(counts, key=counts.get) == 0

    def test_skew_grows_with_exponent(self):
        rng = random.Random(3)
        mild = [ZipfValues(100, s=0.5).sample(rng) for _ in range(2000)]
        rng = random.Random(3)
        strong = [ZipfValues(100, s=1.5).sample(rng) for _ in range(2000)]
        assert empirical_skew(strong) > empirical_skew(mild)

    def test_zero_exponent_is_uniformish(self):
        rng = random.Random(4)
        samples = [ZipfValues(10, s=0.0).sample(rng) for _ in range(5000)]
        assert empirical_skew(samples) < 0.2

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            ZipfValues(10, s=-1)

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            ZipfValues(0)

    def test_domain_size_one(self):
        dist = ZipfValues(1)
        assert dist.sample(random.Random(0)) == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=500), st.floats(min_value=0, max_value=3))
    def test_property_samples_in_domain(self, domain, s):
        dist = ZipfValues(domain, s=s)
        rng = random.Random(0)
        for _ in range(20):
            assert 0 <= dist.sample(rng) < domain


class TestPermutedZipf:
    def test_in_range(self):
        dist = PermutedZipf(64, s=1.0, permutation_seed=5)
        rng = random.Random(0)
        assert all(0 <= dist.sample(rng) < 64 for _ in range(300))

    def test_same_seed_same_mapping(self):
        a = PermutedZipf(64, permutation_seed=5)
        b = PermutedZipf(64, permutation_seed=5)
        rng_a, rng_b = random.Random(1), random.Random(1)
        assert [a.sample(rng_a) for _ in range(50)] == [b.sample(rng_b) for _ in range(50)]

    def test_different_seeds_decorrelate_hotspots(self):
        rng = random.Random(2)
        a = PermutedZipf(256, s=1.4, permutation_seed=1)
        b = PermutedZipf(256, s=1.4, permutation_seed=2)
        hot_a = max(
            set(samples := [a.sample(rng) for _ in range(1000)]), key=samples.count
        )
        hot_b = max(
            set(samples := [b.sample(rng) for _ in range(1000)]), key=samples.count
        )
        assert hot_a != hot_b

    def test_preserves_skew(self):
        rng = random.Random(3)
        samples = [PermutedZipf(100, s=1.5, permutation_seed=9).sample(rng) for _ in range(2000)]
        assert empirical_skew(samples) > 0.2


class TestEmpiricalSkew:
    def test_empty(self):
        assert empirical_skew([]) == 0.0

    def test_constant(self):
        assert empirical_skew([7, 7, 7]) == 1.0

    def test_uniform(self):
        assert empirical_skew([1, 2, 3, 4]) == 0.25
