"""The streaming workload generator ≡ the materialized workload.

Large-scale sweeps iterate :func:`iter_workload_events` directly so a
million-tuple workload never exists as a list; that is only sound if
the streamed sequence is element-for-element the one every serial
benchmark replays through :func:`build_workload`.
"""

from __future__ import annotations

import itertools

from repro.workload.generator import (
    WorkloadParams,
    build_workload,
    iter_workload_events,
)
from repro.workload.schema_gen import synthetic_schema

PARAMS = WorkloadParams(
    n_queries=20,
    n_tuples=40,
    domain_size=30,
    zipf_s=0.8,
    warmup_tuples=5,
    seed=7,
)


def test_stream_equals_materialized_workload():
    workload = build_workload(PARAMS)
    streamed = list(iter_workload_events(PARAMS, workload.schema))
    assert streamed == workload.events


def test_stream_is_lazy_and_restartable():
    schema = synthetic_schema(PARAMS.n_relations, PARAMS.attributes_per_relation)
    stream = iter_workload_events(PARAMS, schema)
    head = list(itertools.islice(stream, 10))
    again = list(itertools.islice(iter_workload_events(PARAMS, schema), 10))
    assert head == again  # seeded: every fresh iterator replays identically


def test_stream_shape_and_monotone_times():
    schema = synthetic_schema(PARAMS.n_relations, PARAMS.attributes_per_relation)
    events = list(iter_workload_events(PARAMS, schema))
    assert len(events) == PARAMS.warmup_tuples + PARAMS.n_queries + PARAMS.n_tuples
    kinds = [event.kind for event in events]
    assert kinds[: PARAMS.warmup_tuples] == ["tuple"] * PARAMS.warmup_tuples
    boundary = PARAMS.warmup_tuples + PARAMS.n_queries
    assert kinds[PARAMS.warmup_tuples : boundary] == ["query"] * PARAMS.n_queries
    assert kinds[boundary:] == ["tuple"] * PARAMS.n_tuples
    times = [event.time for event in events]
    assert times == sorted(times)
    # The stream starts strictly after the last subscription.
    assert events[boundary].time > events[boundary - 1].time
