"""Tests for workload generation (schemas, queries, streams)."""

import pytest

from repro.errors import SchemaError
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadParams,
    build_workload,
)
from repro.workload.schema_gen import synthetic_schema


class TestSyntheticSchema:
    def test_shape(self):
        schema = synthetic_schema(3, 4)
        assert len(schema) == 3
        assert schema.relation("R0").attributes == ("a0", "a1", "a2", "a3")

    def test_requires_two_relations(self):
        with pytest.raises(ValueError):
            synthetic_schema(1, 2)

    def test_requires_attributes(self):
        with pytest.raises(ValueError):
            synthetic_schema(2, 0)


class TestWorkloadGenerator:
    def make(self, **kwargs):
        params = WorkloadParams(**kwargs)
        schema = synthetic_schema(params.n_relations, params.attributes_per_relation)
        return WorkloadGenerator(schema, params)

    def test_t1_query_shape(self):
        generator = self.make(seed=1)
        query = generator.random_t1_query()
        assert query.query_type == "T1"
        assert query.left.relation != query.right.relation

    def test_t2_query_shape(self):
        generator = self.make(seed=2)
        query = generator.random_t2_query()
        assert query.query_type == "T2"

    def test_t2_fraction_respected(self):
        generator = self.make(seed=3, t2_fraction=1.0)
        assert all(generator.random_query().query_type == "T2" for _ in range(10))
        generator = self.make(seed=3, t2_fraction=0.0)
        assert all(generator.random_query().query_type == "T1" for _ in range(10))

    def test_filter_probability(self):
        generator = self.make(seed=4, filter_probability=1.0)
        query = generator.random_t1_query()
        assert query.left.filters or query.right.filters

    def test_tuple_values_cover_all_attributes(self):
        generator = self.make(seed=5)
        relation = generator.schema.relation("R0")
        values = generator.random_tuple_values(relation)
        assert set(values) == set(relation.attributes)
        assert all(0 <= v < generator.params.domain_size for v in values.values())

    def test_value_distributions_cached(self):
        generator = self.make(seed=6)
        first = generator.distribution_for("R0", "a0")
        second = generator.distribution_for("R0", "a0")
        assert first is second

    def test_zero_skew_uses_uniform(self):
        generator = self.make(seed=7, zipf_s=0.0)
        dist = generator.distribution_for("R0", "a0")
        assert type(dist).__name__ == "UniformValues"

    def test_bos_ratio_biases_stream(self):
        generator = self.make(seed=8, bos_ratio=9.0)
        relations = [generator.pick_stream_relation().name for _ in range(1000)]
        r0 = relations.count("R0")
        assert 750 < r0 < 980  # expect ~900

    def test_bos_ratio_one_is_balanced(self):
        generator = self.make(seed=9, bos_ratio=1.0)
        relations = [generator.pick_stream_relation().name for _ in range(1000)]
        assert 400 < relations.count("R0") < 600


class TestBuildWorkload:
    def test_counts(self):
        workload = build_workload(WorkloadParams(n_queries=10, n_tuples=20, seed=1))
        assert workload.n_queries == 10
        assert workload.n_tuples == 20
        assert len(workload) == 30

    def test_queries_precede_tuples(self):
        workload = build_workload(WorkloadParams(n_queries=5, n_tuples=5, seed=2))
        kinds = [event.kind for event in workload]
        assert kinds == ["query"] * 5 + ["tuple"] * 5

    def test_timestamps_nondecreasing(self):
        workload = build_workload(WorkloadParams(n_queries=5, n_tuples=5, seed=3))
        times = [event.time for event in workload]
        assert times == sorted(times)

    def test_warmup_tuples_first(self):
        workload = build_workload(
            WorkloadParams(n_queries=3, n_tuples=3, warmup_tuples=4, seed=4)
        )
        kinds = [event.kind for event in workload]
        assert kinds == ["tuple"] * 4 + ["query"] * 3 + ["tuple"] * 3

    def test_deterministic_for_seed(self):
        params = WorkloadParams(n_queries=5, n_tuples=10, seed=5)
        first = build_workload(params)
        second = build_workload(params)
        assert [str(e.payload) for e in first] == [str(e.payload) for e in second]

    def test_different_seeds_differ(self):
        first = build_workload(WorkloadParams(n_queries=5, n_tuples=10, seed=1))
        second = build_workload(WorkloadParams(n_queries=5, n_tuples=10, seed=2))
        assert [str(e.payload) for e in first] != [str(e.payload) for e in second]

    def test_tuple_payloads_match_schema(self):
        workload = build_workload(WorkloadParams(n_queries=1, n_tuples=10, seed=6))
        for event in workload:
            if event.kind == "tuple":
                relation, values = event.payload
                # DataTuple.make validates; raises SchemaError on mismatch.
                from repro.sql.tuples import DataTuple

                DataTuple.make(relation, values)

    def test_custom_schema_accepted(self):
        from repro.sql.schema import Schema

        schema = Schema.from_dict({"X": ["p", "q"], "Y": ["r", "s"]})
        workload = build_workload(
            WorkloadParams(n_queries=4, n_tuples=4, seed=7), schema=schema
        )
        assert workload.schema is schema
        for event in workload:
            if event.kind == "query":
                assert {event.payload.left.relation, event.payload.right.relation} == {
                    "X",
                    "Y",
                }
