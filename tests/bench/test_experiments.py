"""Smoke tests: every experiment function runs and has the right shape.

The *quantitative* shape assertions (who wins, by what factor) live in
``benchmarks/``; here we verify that every experiment produces
well-formed rows at a tiny scale, so a refactor cannot silently break
the harness.
"""

import pytest

from repro.bench.comparison import run_t1, trace_canonical_example
from repro.bench.configs import Scale
from repro.bench.experiments import EXPERIMENTS

TINY = Scale("tiny", n_nodes=24, n_queries=12, n_tuples=40, domain_size=12)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_runs_and_is_well_formed(name):
    result = EXPERIMENTS[name](TINY)
    assert result.experiment == name
    assert result.rows, f"{name} produced no rows"
    assert result.columns
    for row in result.rows:
        for column in result.columns:
            assert column in row, f"{name}: row missing column {column!r}"
    # Rendering must not crash.
    assert name in result.to_text()
    assert result.to_markdown().startswith(f"### {name}")


class TestT1Comparison:
    def test_rows_for_all_algorithms(self):
        result = run_t1(n_nodes=32)
        assert [row["algorithm"] for row in result.rows] == [
            "sai",
            "dai-q",
            "dai-t",
            "dai-v",
        ]

    def test_every_algorithm_answers_the_example(self):
        result = run_t1(n_nodes=32)
        assert all(row["rows_delivered"] == 1 for row in result.rows)

    def test_rewriter_counts(self):
        result = run_t1(n_nodes=32)
        by_name = {row["algorithm"]: row for row in result.rows}
        assert by_name["sai"]["rewriter_copies"] == 1
        for name in ("dai-q", "dai-t", "dai-v"):
            assert by_name[name]["rewriter_copies"] == 2

    def test_dai_t_reindexes_once(self):
        trace = trace_canonical_example("dai-t", n_nodes=32)
        assert trace["join_msgs_duplicate_trigger"] == 0

    def test_others_reindex_every_trigger(self):
        for algorithm in ("sai", "dai-q", "dai-v"):
            trace = trace_canonical_example(algorithm, n_nodes=32)
            assert trace["join_msgs_duplicate_trigger"] >= 1, algorithm

    def test_value_level_storage_split(self):
        """DAI-T stores queries, not tuples; DAI-Q the reverse."""
        dai_t = trace_canonical_example("dai-t", n_nodes=32)
        assert dai_t["value_level_tuples"] == 0
        assert dai_t["value_level_queries"] > 0
        dai_q = trace_canonical_example("dai-q", n_nodes=32)
        assert dai_q["value_level_queries"] == 0
        assert dai_q["value_level_tuples"] > 0
