"""Tests for experiment-result rendering."""

from repro.bench.report import ExperimentResult, render_table


def sample_result():
    return ExperimentResult(
        experiment="E0",
        figure="Figure 0.0 — test",
        title="a test table",
        columns=["name", "count", "ratio"],
        rows=[
            {"name": "alpha", "count": 12000, "ratio": 1.5},
            {"name": "beta", "count": 7, "ratio": 0.333333},
        ],
        notes="some notes",
    )


class TestRenderTable:
    def test_contains_headers_and_values(self):
        text = render_table(["a", "b"], [{"a": 1, "b": "x"}])
        assert "a" in text and "b" in text and "x" in text

    def test_missing_cell_rendered_as_none(self):
        text = render_table(["a", "b"], [{"a": 1}])
        assert "None" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_large_ints_thousands_separated(self):
        text = render_table(["n"], [{"n": 1234567}])
        assert "1,234,567" in text

    def test_float_formatting(self):
        text = render_table(["x"], [{"x": 0.333333}])
        assert "0.333" in text


class TestExperimentResult:
    def test_to_text(self):
        text = sample_result().to_text()
        assert "E0" in text
        assert "Figure 0.0" in text
        assert "alpha" in text
        assert "some notes" in text

    def test_to_markdown(self):
        md = sample_result().to_markdown()
        assert md.startswith("### E0")
        assert "| name | count | ratio |" in md
        assert "| alpha |" in md

    def test_column_values(self):
        assert sample_result().column_values("name") == ["alpha", "beta"]

    def test_column_values_missing(self):
        assert sample_result().column_values("nope") == [None, None]


class TestAsciiCurve:
    def test_empty(self):
        from repro.bench.report import ascii_curve

        assert "(empty)" in ascii_curve([], label="x")

    def test_all_zero(self):
        from repro.bench.report import ascii_curve

        assert "(all zero)" in ascii_curve([0, 0, 0], label="x")

    def test_shape_and_label(self):
        from repro.bench.report import ascii_curve

        chart = ascii_curve([10, 8, 5, 2, 1, 0], label="loads", height=4)
        assert chart.startswith("loads")
        assert "max = 10" in chart
        assert "most loaded first" in chart
        # 4 grid rows + header + axis.
        assert len(chart.splitlines()) == 6

    def test_downsampling_keeps_peak(self):
        from repro.bench.report import ascii_curve

        values = [1.0] * 500
        values[0] = 99.0
        chart = ascii_curve(values, width=10)
        assert "max = 99" in chart

    def test_all_negative_degrades_to_all_zero(self):
        from repro.bench.report import ascii_curve

        assert "(all zero)" in ascii_curve([-3.0, -1.0], label="x")


class TestEdgePaths:
    def test_to_text_renders_series_charts(self):
        result = sample_result()
        result.series = {"loads": [5.0, 3.0, 1.0]}
        text = result.to_text()
        assert "loads" in text
        assert "max = 5" in text

    def test_to_markdown_without_notes_has_no_notes_block(self):
        result = sample_result()
        result.notes = ""
        md = result.to_markdown()
        assert "some notes" not in md
        assert md.endswith("\n")

    def test_format_handles_negative_and_large_floats(self):
        from repro.bench.report import _format

        assert _format(-12345.6) == "-12,346"
        assert _format(0.0) == "0"
        assert _format(True) in ("True", "1")  # bools are ints; stays total
