"""Tests for the macro-benchmark perf-regression gate.

``compare_reports`` is what CI runs against the committed
``BENCH_seed.json``: simulated metrics must match *exactly* (the
bit-identical invariant of the optimization pass), wall-clock may drift
up to the threshold.
"""

from __future__ import annotations

import copy

from repro.bench.macro import compare_reports, headline_scale, speedup_versus
from repro.bench.configs import Scale


def _report(total: float = 10.0, hops: int = 100) -> dict:
    return {
        "name": "macro-e14-largest",
        "scale": "default",
        "point": {"n_nodes": 512, "n_queries": 200, "n_tuples": 350},
        "seed": 1,
        "wall_seconds": {"sai": total / 2, "dai-t": total / 2, "total": total},
        "metrics": {
            "sai": {"hops": hops, "messages": 50, "notification_digest": "abc"},
            "dai-t": {"hops": hops + 1, "messages": 51, "notification_digest": "abc"},
        },
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        assert compare_reports(_report(), _report()) == []

    def test_faster_run_passes(self):
        assert compare_reports(_report(total=3.0), _report(total=10.0)) == []

    def test_wall_within_threshold_passes(self):
        assert compare_reports(_report(total=12.4), _report(total=10.0), 0.25) == []

    def test_wall_regression_fails(self):
        problems = compare_reports(_report(total=12.6), _report(total=10.0), 0.25)
        assert len(problems) == 1
        assert "wall-clock regression" in problems[0]

    def test_metric_drift_fails_even_when_faster(self):
        problems = compare_reports(
            _report(total=1.0, hops=99), _report(total=10.0, hops=100)
        )
        assert any("hops" in p for p in problems)

    def test_missing_algorithm_fails(self):
        current = _report()
        del current["metrics"]["dai-t"]
        problems = compare_reports(current, _report())
        assert any("dai-t" in p for p in problems)

    def test_digest_change_names_the_field(self):
        current = _report()
        current["metrics"]["sai"]["notification_digest"] = "zzz"
        problems = compare_reports(current, _report())
        assert any("notification_digest" in p for p in problems)

    def test_different_benchmark_refuses_to_compare(self):
        current = _report()
        current["name"] = "other-benchmark"
        problems = compare_reports(current, _report())
        assert len(problems) == 1
        assert "refusing" in problems[0]

    def test_different_point_or_seed_refuses_to_compare(self):
        for mutate in (
            lambda r: r["point"].update(n_nodes=1024),
            lambda r: r.update(seed=2),
        ):
            current = _report()
            mutate(current)
            problems = compare_reports(current, _report())
            assert len(problems) == 1
            assert "mismatch" in problems[0]

    def test_baseline_untouched(self):
        baseline = _report()
        snapshot = copy.deepcopy(baseline)
        compare_reports(_report(total=99.0, hops=1), baseline)
        assert baseline == snapshot


class TestSpeedup:
    def test_ratio(self):
        assert speedup_versus(_report(total=2.0), _report(total=10.0)) == 5.0

    def test_missing_wall_returns_none(self):
        broken = _report()
        del broken["wall_seconds"]
        assert speedup_versus(broken, _report()) is None
        assert speedup_versus(_report(), broken) is None


class TestHeadlineScale:
    def test_headline_is_the_largest_e14_point(self):
        base = Scale("default", n_nodes=256, n_queries=400, n_tuples=700, domain_size=900)
        point = headline_scale(base)
        # E14: base = scaled(q=0.5, t=0.5, n=0.25), then nodes ×8.
        assert point.n_nodes == 512
        assert point.n_queries == 200
        assert point.n_tuples == 350
