"""Tests for the experiment harness and scale profiles."""

import pytest

from repro.bench.configs import SCALES, Scale, current_scale
from repro.bench.harness import make_engine, run_standard, run_workload, workload_for

TINY = Scale("tiny", n_nodes=32, n_queries=20, n_tuples=60, domain_size=20)


class TestScales:
    def test_profiles_exist(self):
        assert {"smoke", "default", "large", "paper"} <= set(SCALES)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "default"

    def test_scaled_multiplies(self):
        derived = TINY.scaled(nodes=2.0, queries=0.5)
        assert derived.n_nodes == 64
        assert derived.n_queries == 10
        assert derived.n_tuples == TINY.n_tuples

    def test_scaled_floors_at_minimum(self):
        derived = TINY.scaled(queries=0.0)
        assert derived.n_queries == 1


class TestHarness:
    def test_make_engine(self):
        engine = make_engine(TINY)
        assert len(engine.network) == TINY.n_nodes

    def test_workload_for_uses_scale(self):
        workload = workload_for(TINY)
        assert workload.n_queries == TINY.n_queries
        assert workload.n_tuples == TINY.n_tuples

    def test_workload_for_overrides(self):
        workload = workload_for(TINY, n_queries=3, bos_ratio=4.0)
        assert workload.n_queries == 3
        assert workload.params.bos_ratio == 4.0

    def test_run_workload_phases(self):
        engine = make_engine(TINY)
        workload = workload_for(TINY)
        result = run_workload(engine, workload)
        assert len(result.queries) == TINY.n_queries
        assert result.install_traffic.hops > 0
        assert result.stream_traffic.hops > 0
        assert result.hops_per_tuple > 0
        assert result.hops_per_query > 0

    def test_run_workload_oracle_agreement(self):
        engine = make_engine(TINY)
        workload = workload_for(TINY)
        result = run_workload(engine, workload, with_oracle=True)
        assert result.oracle is not None
        for query in result.queries:
            assert engine.delivered_rows(query.key) == result.oracle.rows_for(query.key)

    def test_per_tuple_hops_collected(self):
        engine = make_engine(TINY)
        result = run_workload(engine, workload_for(TINY), collect_per_tuple_hops=True)
        assert len(result.per_tuple_hops) == TINY.n_tuples
        assert all(hops >= 0 for hops in result.per_tuple_hops)

    def test_run_standard_one_call(self):
        result = run_standard("dai-t", TINY, config_overrides={"index_choice": "random"})
        assert result.engine.config.algorithm == "dai-t"
        assert result.notifications_delivered >= 0

    def test_windowed_run_evicts(self):
        workload = workload_for(TINY)
        unbounded = run_standard(
            "sai",
            TINY,
            config_overrides={"index_choice": "random"},
            workload=workload,
        )
        windowed = run_standard(
            "sai",
            TINY,
            config_overrides={"index_choice": "random", "window": 5.0},
            workload=workload,
        )
        # After the final eviction only the last window of value-level
        # state remains — far below the unbounded run's storage.
        assert (
            windowed.load.total_evaluator_storage
            < unbounded.load.total_evaluator_storage / 2
        )

    def test_shared_workload_gives_identical_results(self):
        workload = workload_for(TINY)
        first = run_standard("sai", TINY, config_overrides={"index_choice": "random"}, workload=workload)
        second = run_standard("sai", TINY, config_overrides={"index_choice": "random"}, workload=workload)
        assert first.stream_traffic.hops == second.stream_traffic.hops
        assert first.load.total_filtering == second.load.total_filtering
