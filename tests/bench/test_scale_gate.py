"""Tests for the large-scale sweep benchmark and its CI gate."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.bench.configs import Scale
from repro.bench.macro import compare_reports
from repro.bench.scale import (
    SCALE_BENCH_NAME,
    run_scale,
    scale_point,
    verify_equivalence,
)

TINY = Scale(
    name="scale-tiny",
    n_nodes=48,
    n_queries=16,
    n_tuples=32,
    domain_size=30,
    zipf_s=0.75,
)


@pytest.fixture(scope="module")
def report():
    return run_scale(TINY, algorithms=("sai", "dai-t"), shards=1, batch_size=8)


class TestReportShape:
    def test_identity_fields(self, report):
        assert report["name"] == SCALE_BENCH_NAME
        assert report["point"]["n_nodes"] == TINY.n_nodes
        assert report["point"]["batch_size"] == 8
        assert set(report["metrics"]) == {"sai", "dai-t"}
        assert set(report["wall_seconds"]) == {"sai", "dai-t", "total"}

    def test_metrics_vocabulary(self, report):
        for metrics in report["metrics"].values():
            assert set(metrics) == {
                "hops",
                "messages",
                "stream_hops_by_type",
                "stream_messages_by_type",
                "notifications_delivered",
                "notification_digest",
                "evictions",
            }

    def test_resource_columns(self, report):
        for algorithm in report["metrics"]:
            resources = report["resources"][algorithm]
            assert resources["peak_rss_kb"] > 0
            assert resources["events_per_sec"] > 0
            assert resources["exchange_records"] == 0  # shards=1
        # Stripped config: no lifted modes engaged.
        assert report["features"] == []

    def test_json_round_trip(self, report):
        assert json.loads(json.dumps(report)) == report


class TestGate:
    def test_self_comparison_passes(self, report):
        assert compare_reports(report, copy.deepcopy(report), 0.25) == []

    def test_metric_drift_fails(self, report):
        tampered = copy.deepcopy(report)
        tampered["metrics"]["sai"]["hops"] += 1
        problems = compare_reports(tampered, report, 0.25)
        assert problems and any("sai" in p for p in problems)

    def test_wall_regression_fails(self, report):
        slower = copy.deepcopy(report)
        slower["wall_seconds"]["total"] = report["wall_seconds"]["total"] * 2 + 1
        problems = compare_reports(slower, report, 0.25)
        assert problems and any("wall" in p.lower() for p in problems)

    def test_repeats_are_deterministic(self):
        # run_scale itself raises if repeated metrics disagree.
        run_scale(TINY, algorithms=("sai",), repeats=2, shards=1, batch_size=8)


class TestCommittedBaseline:
    def test_baseline_matches_cli_defaults(self):
        """BENCH_sim_scale.json must be comparable to the CI invocation."""
        path = Path(__file__).resolve().parents[2] / "BENCH_sim_scale.json"
        baseline = json.loads(path.read_text())
        assert baseline["name"] == SCALE_BENCH_NAME
        point = scale_point(20_000)
        assert baseline["point"]["n_nodes"] == point.n_nodes
        assert baseline["point"]["n_queries"] == point.n_queries
        assert baseline["point"]["n_tuples"] == point.n_tuples
        assert baseline["point"]["batch_size"] == 512
        assert set(baseline["metrics"]) == {"sai", "dai-q", "dai-t", "dai-v"}
        for metrics in baseline["metrics"].values():
            assert metrics["notification_digest"]


class TestVerifySmall:
    def test_verify_equivalence_at_small_ring(self):
        """The --verify differential at unit-test scale, one algorithm."""
        assert verify_equivalence(n_nodes=64, algorithms=("sai",)) == []
