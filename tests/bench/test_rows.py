"""The stable row serialization shared by macro, scale and expdb."""

import json

from repro.bench.harness import RunResult, run_standard
from repro.bench.rows import (
    MACRO_METRIC_FIELDS,
    ROW_VERSION,
    SCALE_METRIC_FIELDS,
    metric_summary,
    traffic_from_row,
    traffic_to_row,
)
from repro.bench.configs import Scale
from repro.sim.stats import TrafficSnapshot

TINY = Scale(
    name="rows-tiny",
    n_nodes=16,
    n_queries=10,
    n_tuples=24,
    domain_size=12,
    zipf_s=0.9,
)


def tiny_result():
    return run_standard("dai-t", TINY, seed=5)


class TestTrafficRow:
    def test_round_trip(self):
        snapshot = TrafficSnapshot(
            hops=10,
            messages=4,
            hops_by_type={"probe": 10},
            messages_by_type={"probe": 4},
            messages_dropped=2,
            retries=1,
            messages_delayed=3,
        )
        assert traffic_from_row(traffic_to_row(snapshot)) == snapshot

    def test_row_is_json_safe(self):
        row = traffic_to_row(TrafficSnapshot(1, 1, {"a": 1}, {"a": 1}))
        assert json.loads(json.dumps(row)) == row


class TestRunResultRow:
    def test_to_row_is_json_safe_and_versioned(self):
        row = tiny_result().to_row()
        assert row["row_version"] == ROW_VERSION
        assert row["kind"] == "run"
        assert json.loads(json.dumps(row)) == row

    def test_from_row_round_trips(self):
        row = tiny_result().to_row()
        assert RunResult.from_row(row).to_row() == row

    def test_from_row_preserves_metrics_without_an_engine(self):
        result = tiny_result()
        revived = RunResult.from_row(result.to_row())
        assert revived.engine is None
        assert revived.notifications_delivered == result.notifications_delivered
        assert revived.notification_digest() == result.notification_digest()

    def test_rows_are_deterministic(self):
        canonical = lambda row: json.dumps(row, sort_keys=True)
        assert canonical(tiny_result().to_row()) == canonical(tiny_result().to_row())


class TestShardResultRow:
    def test_round_trip(self):
        from repro.bench.scale import run_scale_point

        sample = run_scale_point("sai", TINY, shards=1, batch_size=8)
        row = sample["row"]
        assert row["kind"] == "shard"
        assert json.loads(json.dumps(row)) == row

        from repro.sim.shard import ShardRunResult

        assert ShardRunResult.from_row(row).to_row() == row


class TestMetricSummary:
    def test_macro_fields_exclude_evictions(self):
        summary = metric_summary(tiny_result().to_row(), MACRO_METRIC_FIELDS)
        assert set(summary) == set(MACRO_METRIC_FIELDS)
        assert "evictions" not in summary

    def test_scale_fields_include_evictions(self):
        summary = metric_summary(tiny_result().to_row(), SCALE_METRIC_FIELDS)
        assert "evictions" in summary

    def test_summary_totals_combine_install_and_stream(self):
        row = tiny_result().to_row()
        summary = metric_summary(row)
        assert (
            summary["hops"]
            == row["install_traffic"]["hops"] + row["stream_traffic"]["hops"]
        )

    def test_projection_is_idempotent(self):
        first = metric_summary(tiny_result().to_row())
        assert metric_summary(first) == first

    def test_summary_form_rows_pass_through(self):
        # Committed baselines store top-level hops/messages, no
        # traffic snapshots; those values must win over the recompute.
        summary = metric_summary(
            {
                "hops": 42,
                "messages": 7,
                "notifications_delivered": 3,
                "notification_digest": "d" * 40,
            },
            ("hops", "messages", "notification_digest"),
        )
        assert summary == {
            "hops": 42,
            "messages": 7,
            "notification_digest": "d" * 40,
        }
