"""Tests for the experiments CLI."""

import pytest

from repro.bench.cli import main


class TestCLI:
    def test_runs_single_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["--only", "T1"]) == 0
        output = capsys.readouterr().out
        assert "Table 4.1" in output

    def test_scale_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert main(["--only", "T1", "--scale", "smoke"]) == 0

    def test_unknown_experiment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        with pytest.raises(SystemExit):
            main(["--only", "E99"])

    def test_write_markdown(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        out = tmp_path / "results.md"
        assert main(["--only", "T1", "--write-md", str(out)]) == 0
        content = out.read_text()
        assert content.startswith("# Experiment results")
        assert "### T1" in content
