"""Tests for the experiments CLI."""

import pytest

from repro.bench.cli import main


class TestCLI:
    def test_runs_single_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["--only", "T1"]) == 0
        output = capsys.readouterr().out
        assert "Table 4.1" in output

    def test_scale_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert main(["--only", "T1", "--scale", "smoke"]) == 0

    def test_unknown_experiment_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", "E99"])
        assert excinfo.value.code != 0
        assert "unknown experiments" in capsys.readouterr().err

    def test_unknown_scale_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--only", "T1", "--scale", "galactic"])
        assert excinfo.value.code != 0
        assert "--scale" in capsys.readouterr().err

    def test_unwritable_markdown_path_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        with pytest.raises(OSError):
            main(["--only", "T1", "--write-md", str(tmp_path / "no" / "dir" / "o.md")])

    def test_write_markdown(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        out = tmp_path / "results.md"
        assert main(["--only", "T1", "--write-md", str(out)]) == 0
        content = out.read_text()
        assert content.startswith("# Experiment results")
        assert "### T1" in content
