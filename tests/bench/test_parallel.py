"""Tests for the process-parallel sweep runner.

The load-bearing property is at the bottom: a real experiment sweep
produces byte-identical rows serial and parallel, because every point
rebuilds its workload deterministically from the same seed.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.bench.configs import Scale
from repro.bench.parallel import ENV_VAR, configured_processes, parallel_map

TINY = Scale("tiny", n_nodes=24, n_queries=12, n_tuples=40, domain_size=30)


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


class TestConfiguredProcesses:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert configured_processes(100) == 1

    def test_explicit_one_is_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert configured_processes(100) == 1

    @pytest.mark.parametrize("raw", ["auto", "0"])
    def test_auto_uses_cpus_capped_by_items(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_VAR, raw)
        assert configured_processes(2) <= 2
        assert configured_processes(10_000) >= 1

    def test_explicit_count_capped_by_items(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "6")
        assert configured_processes(3) == 3
        assert configured_processes(100) == 6

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "many")
        with pytest.raises(ValueError):
            configured_processes(4)

    def test_negative_clamped_to_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "-3")
        assert configured_processes(4) == 1


class TestParallelMap:
    def test_serial_path(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert parallel_map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_parallel_path_preserves_order(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "2")
        assert parallel_map(_square, range(12)) == [x * x for x in range(12)]

    def test_empty_items(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "4")
        assert parallel_map(_square, []) == []

    def test_worker_exception_propagates(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "2")
        with pytest.raises(ValueError):
            parallel_map(_boom, range(4))


class TestSweepEquivalence:
    def test_scaling_rows_serial_equals_parallel(self, monkeypatch):
        kwargs = dict(axis="nodes", factors=(1.0,), algorithms=("sai", "dai-q"))
        monkeypatch.delenv(ENV_VAR, raising=False)
        experiments._scaling_rows_cached.cache_clear()
        serial = experiments._scaling_rows(TINY, **kwargs)

        monkeypatch.setenv(ENV_VAR, "2")
        experiments._scaling_rows_cached.cache_clear()
        parallel = experiments._scaling_rows(TINY, **kwargs)
        experiments._scaling_rows_cached.cache_clear()

        assert serial == parallel

    def test_handed_out_rows_do_not_poison_the_cache(self):
        kwargs = dict(axis="nodes", factors=(1.0,), algorithms=("sai",))
        experiments._scaling_rows_cached.cache_clear()
        first = experiments._scaling_rows(TINY, **kwargs)
        first[0]["algorithm"] = "tampered"
        del first[0]["factor"]
        again = experiments._scaling_rows(TINY, **kwargs)
        experiments._scaling_rows_cached.cache_clear()
        assert again[0]["algorithm"] == "sai"
        assert "factor" in again[0]
