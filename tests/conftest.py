"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def small_network():
    """A stable 64-node ring (fresh per test)."""
    return ChordNetwork.build(64)


@pytest.fixture
def tiny_network():
    """A stable 8-node ring for fast protocol tests."""
    return ChordNetwork.build(8)


@pytest.fixture
def two_relation_schema():
    """The R/S schema used throughout the algorithm tests."""
    return Schema.from_dict({"R": ["A", "B", "C"], "S": ["D", "E", "F"]})


@pytest.fixture
def engine_factory(two_relation_schema):
    """Build an engine over a fresh network with the given config."""

    def build(algorithm="sai", n_nodes=64, **config_kwargs):
        config_kwargs.setdefault("index_choice", "random")
        network = ChordNetwork.build(n_nodes)
        engine = ContinuousQueryEngine(
            network, EngineConfig(algorithm=algorithm, **config_kwargs)
        )
        return engine

    return build


@pytest.fixture
def simple_join_sql():
    return "SELECT R.A, S.D FROM R, S WHERE R.B = S.E"
