"""Load-generator correctness: pipelining must never change answers.

The pipelined driver removes the per-event drain, so DAI-Q/DAI-T pair
races become possible (both one-shot probes overtake the other tuple's
store); the settle pass — a paced soft-state replay — must close them.
These tests pin the whole contract on a small point: per-frame and
batched modes produce the simulator's exact notification set, the raw
relay is digest-neutral, and the engine's stepwise lease refresh is
equivalent to the one-shot form.
"""

import asyncio

import pytest

from repro.bench.harness import run_workload
from repro.bench.macro import notification_digest
from repro.chord.network import ChordNetwork
from repro.core.engine import ContinuousQueryEngine, EngineConfig
from repro.net.cluster import ClusterConfig, LiveCluster, simulate_reference
from repro.net.loadgen import LoadgenConfig, build_report, compare_reports
from repro.net.peer import NetConfig
from repro.workload.generator import WorkloadParams, build_workload

POINT = LoadgenConfig(n_nodes=6, n_queries=8, n_tuples=48, domain_size=16, seed=3)


def test_both_modes_match_simulator_and_each_other():
    # build_report itself raises on any digest disagreement: between
    # repeated runs, between modes, and against the simulator oracle.
    report = build_report(
        POINT, algorithms=("dai-t",), modes=("per_frame", "batched"), check_sim=True
    )
    entry = report["algorithms"]["dai-t"]
    assert entry["digest"] == entry["sim_digest"]
    assert entry["per_frame"]["batches_sent"] == 0
    assert entry["batched"]["batches_sent"] > 0
    assert "batched_speedup" in entry
    # The settle pass may legitimately recover nothing at this size,
    # but must never *lose* notifications.
    assert entry["batched"]["recovered_notifications"] >= 0
    assert entry["batched"]["settle_seconds"] >= 0.0

    # The report gates green against itself.
    assert compare_reports(report, report) == []

    # ... and trips loudly when the recorded answers change.
    tampered = {
        **report,
        "algorithms": {
            "dai-t": {**entry, "digest": "0" * 40, "notifications": 1}
        },
    }
    problems = compare_reports(report, tampered)
    assert any("digest changed" in problem for problem in problems)


def test_raw_relay_is_digest_neutral():
    """The zero-copy relay forwards original bytes; answers identical."""
    workload = build_workload(
        WorkloadParams(n_queries=6, n_tuples=30, domain_size=12, seed=5)
    )

    async def digest_with(raw_relay: bool) -> str:
        cluster = LiveCluster(
            ClusterConfig(
                algorithm="sai",
                n_nodes=6,
                seed=5,
                net=NetConfig(raw_relay=raw_relay),
            )
        )
        await cluster.start()
        try:
            report = await cluster.run(workload)
        finally:
            await cluster.stop()
        return report.notification_digest

    with_relay = asyncio.run(digest_with(True))
    without_relay = asyncio.run(digest_with(False))
    assert with_relay == without_relay
    assert with_relay == simulate_reference(
        workload, algorithm="sai", n_nodes=6, seed=5
    )[0]


def _sim_engine():
    workload = build_workload(
        WorkloadParams(n_queries=6, n_tuples=30, domain_size=12, seed=9)
    )
    engine = ContinuousQueryEngine(
        ChordNetwork.build(8), EngineConfig(algorithm="dai-q", seed=9)
    )
    run_workload(engine, workload, seed=9)
    return engine


def test_stepwise_lease_refresh_equals_one_shot():
    one_shot = _sim_engine()
    counts = one_shot.refresh_leases()

    stepwise = _sim_engine()
    kinds = []
    for kind, replay in stepwise.lease_refresh_steps():
        kinds.append(kind)
        replay()

    assert counts == {
        "queries": kinds.count("query"),
        "tuples": kinds.count("tuple"),
    }
    assert notification_digest(stepwise) == notification_digest(one_shot)


def test_lease_refresh_is_idempotent_on_answers():
    engine = _sim_engine()
    before = notification_digest(engine)
    delivered_before = sum(len(b) for b in engine.delivered.values())
    engine.refresh_leases()
    assert notification_digest(engine) == before
    assert sum(len(b) for b in engine.delivered.values()) == delivered_before
    assert engine.duplicate_deliveries == 0
