"""Socket-layer tests: in-flight accounting, bootstrap, delivery, retries.

These run real asyncio TCP servers on localhost ephemeral ports; each
test spins a small :class:`~repro.net.cluster.LiveCluster` up and tears
it down inside ``asyncio.run``.
"""

import asyncio
import socket

import pytest

from repro.errors import DeliveryError, NetworkError
from repro.net.cluster import ClusterConfig, LiveCluster
from repro.net.frames import DirectFrame, PeerInfo
from repro.net.peer import InFlight, NetConfig
from repro.sim.messages import UnsubscribeMessage


def make_cluster(n_nodes=4, **net_kwargs):
    return LiveCluster(
        ClusterConfig(
            n_nodes=n_nodes,
            quiesce_timeout=5.0,
            net=NetConfig(
                connect_timeout=1.0,
                io_timeout=2.0,
                backoff_base=0.01,
                **net_kwargs,
            ),
        )
    )


def closed_port() -> int:
    """A localhost port that nothing is listening on."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def recording_handlers(cluster, message_type="unsubscribe"):
    """Replace every node's handler for ``message_type`` with a recorder."""
    received = []
    for node in cluster.network.nodes:
        node.register_handler(
            message_type,
            lambda node, message: received.append((node.ident, message)),
        )
    return received


class TestInFlight:
    def test_starts_at_zero_and_waits_through_cycles(self):
        async def scenario():
            counter = InFlight()
            await counter.wait_zero(0.1)  # immediately zero
            counter.inc("notification", 3)
            assert counter.count == 3
            assert counter.pending() == {"notification": 3}
            with pytest.raises(asyncio.TimeoutError):
                await counter.wait_zero(0.01)
            counter.dec("notification", 2)
            counter.dec("notification")
            await counter.wait_zero(0.1)
            assert counter.peak == 3
            assert counter.pending() == {}

        asyncio.run(scenario())

    def test_negative_count_is_a_bug(self):
        async def scenario():
            counter = InFlight()
            with pytest.raises(RuntimeError):
                counter.dec()

        asyncio.run(scenario())

    def test_timeout_diagnostic_names_the_stragglers(self):
        """Satellite: a quiesce timeout must say *what* is still in
        flight, not just that something is."""

        async def scenario():
            from repro.errors import QuiesceTimeout

            counter = InFlight()
            counter.inc("notification", 2)
            counter.inc("publish_tuple")
            with pytest.raises(QuiesceTimeout) as excinfo:
                await counter.wait_zero(0.01)
            err = excinfo.value
            assert err.pending == {"notification": 2, "publish_tuple": 1}
            assert "notification=2" in str(err)
            assert "publish_tuple=1" in str(err)
            assert "3 deliveries still in flight" in str(err)
            # It is still an asyncio.TimeoutError for wait_for-style
            # callers.
            assert isinstance(err, asyncio.TimeoutError)

        asyncio.run(scenario())

    def test_write_off_forgives_and_arms_debt(self):
        async def scenario():
            counter = InFlight()
            counter.inc("notification", 2)
            written_off = counter.write_off()
            assert written_off == {"notification": 2}
            assert counter.count == 0
            await counter.wait_zero(0.1)
            # A forgiven delivery that settles late is absorbed by the
            # debt instead of crashing the ledger...
            counter.dec("notification", 2)
            assert counter.count == 0
            # ...but the debt is finite: a third settlement is still a
            # real bug in a strict (non-chaos) ledger.
            with pytest.raises(RuntimeError):
                counter.dec("notification")

        asyncio.run(scenario())

    def test_slack_mode_absorbs_crash_double_settlement(self):
        counter = InFlight()
        counter.allow_slack = True
        counter.inc("match")
        counter.dec("match")
        counter.dec("match")  # crash-path double settlement
        assert counter.count == 0
        assert counter.slack_absorbed == 1

    def test_drain_diagnostic_includes_outbox_depths(self):
        """The cluster drain enriches the timeout with per-peer
        outbound queue depths."""

        async def scenario():
            from repro.errors import QuiesceTimeout

            cluster = LiveCluster(
                ClusterConfig(
                    n_nodes=2,
                    quiesce_timeout=0.2,
                    net=NetConfig(
                        connect_timeout=1.0,
                        io_timeout=2.0,
                        backoff_base=0.5,  # retries outlive the deadline
                        max_attempts=6,
                    ),
                )
            )
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                other = next(
                    ident for ident in peer.book if ident != peer.node.ident
                )
                await cluster.peers[other].stop_server()
                peer._outboxes.pop(other, None)
                cluster.in_flight.inc("unsubscribe")
                peer.post(
                    other,
                    DirectFrame(message=UnsubscribeMessage(query_key="x")),
                    weight=1,
                )
                with pytest.raises(QuiesceTimeout) as excinfo:
                    await cluster.drain()
                err = excinfo.value
                assert err.pending == {"unsubscribe": 1}
                assert err.queues  # at least the stuck peer's outbox
                assert "outbound queues" in str(err)
            finally:
                cluster.errors.clear()
                cluster.in_flight.allow_slack = True
                cluster.in_flight.write_off()
                await cluster.stop()

        asyncio.run(scenario())


class TestBootstrap:
    def test_address_books_converge(self):
        async def scenario():
            cluster = make_cluster(n_nodes=5)
            await cluster.start()
            try:
                idents = {node.ident for node in cluster.network.nodes}
                for peer in cluster.peers.values():
                    assert set(peer.book) == idents
                    # Every entry carries a live socket address.
                    for info in peer.book.values():
                        assert info.port > 0
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_transport_swapped_in_and_restored(self):
        async def scenario():
            cluster = make_cluster()
            simulator_transport = cluster.network.transport
            await cluster.start()
            try:
                assert cluster.network.transport is cluster.transport
                assert cluster.engine.transport is cluster.transport
            finally:
                await cluster.stop()
            assert cluster.network.transport is simulator_transport

        asyncio.run(scenario())


class TestDelivery:
    def test_routed_send_reaches_the_owner(self):
        async def scenario():
            cluster = make_cluster()
            await cluster.start()
            try:
                received = recording_handlers(cluster)
                source = cluster.network.nodes[0]
                # An ident owned by a far-away node forces real forwarding.
                target_ident = (source.ident + cluster.network.space.size // 2) % (
                    cluster.network.space.size
                )
                owner = cluster.transport.send(
                    source, UnsubscribeMessage(query_key="k1"), target_ident
                )
                await cluster.drain()
                assert owner is cluster.network.responsible_node(target_ident)
                assert received == [
                    (owner.ident, UnsubscribeMessage(query_key="k1"))
                ]
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_send_direct_one_hop(self):
        async def scenario():
            cluster = make_cluster()
            await cluster.start()
            try:
                received = recording_handlers(cluster)
                source, target = cluster.network.nodes[0], cluster.network.nodes[2]
                cluster.transport.send_direct(
                    source, UnsubscribeMessage(query_key="k2"), target
                )
                await cluster.drain()
                assert received == [
                    (target.ident, UnsubscribeMessage(query_key="k2"))
                ]
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_recursive_multisend_sweeps_all_owners(self):
        async def scenario():
            cluster = make_cluster(n_nodes=6)
            await cluster.start()
            try:
                received = recording_handlers(cluster)
                source = cluster.network.nodes[0]
                idents = [node.ident for node in cluster.network.nodes[1:5]]
                owners = cluster.transport.multisend(
                    source,
                    [UnsubscribeMessage(query_key=f"k{i}") for i in range(4)],
                    idents,
                )
                await cluster.drain()
                assert sorted(ident for ident, _ in received) == sorted(
                    owner.ident for owner in owners
                )
                assert {m.query_key for _, m in received} == {
                    "k0", "k1", "k2", "k3"
                }
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestFailureHandling:
    def test_retry_exhaustion_surfaces_as_delivery_error(self):
        async def scenario():
            cluster = make_cluster(max_attempts=2)
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                other = next(
                    ident for ident in peer.book if ident != peer.node.ident
                )
                # Point the address book at a dead port: every connect is
                # refused, the outbox retries with backoff, then gives up.
                dead = peer.book[other]
                peer.book[other] = PeerInfo(dead.ident, dead.host, closed_port())
                peer._outboxes.pop(other, None)
                cluster.in_flight.inc()
                peer.post(
                    other,
                    DirectFrame(message=UnsubscribeMessage(query_key="k")),
                    weight=1,
                )
                with pytest.raises(NetworkError, match="DeliveryError"):
                    await cluster.drain()
                assert isinstance(cluster.errors[0], DeliveryError)
                assert cluster.errors[0].message_type == "unsubscribe"
                snapshot = cluster.stats.snapshot()
                assert snapshot.messages_dropped == 1
                assert snapshot.retries == 1  # max_attempts=2 -> one retry
            finally:
                cluster.errors.clear()
                await cluster.stop()

        asyncio.run(scenario())

    def test_unknown_address_fails_fast(self):
        async def scenario():
            cluster = make_cluster()
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                cluster.in_flight.inc()
                peer.post(12345678901234567890, object(), weight=1)
                with pytest.raises(NetworkError, match="no address"):
                    await cluster.drain()
            finally:
                cluster.errors.clear()
                await cluster.stop()

        asyncio.run(scenario())
