"""Property-based round-trip tests for the wire codec.

Every message class of :mod:`repro.sim.messages` (and every payload
record it can carry) must survive ``decode(encode(x)) == x`` for
arbitrary field values — including unicode strings and full-width
2**160 - 1 Chord identifiers — and the codec must reject malformed
frames loudly instead of misparsing them.
"""

import dataclasses
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.notifications import Notification
from repro.errors import CodecError
from repro.net.codec import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    decode,
    decode_frame,
    decode_header,
    encode,
    encode_frame,
    register_record,
)
from repro.net.frames import MultiFrame, PeerInfo, RouteFrame
from repro.sim.messages import (
    ALIndexMessage,
    JoinMessage,
    Message,
    NotificationMessage,
    QueryIndexMessage,
    RateProbeMessage,
    UnsubscribeMessage,
    VLIndexMessage,
)
from repro.sql.expr import AttrRef, BinaryOp, Const
from repro.sql.parser import parse_query
from repro.sql.query import (
    BoundValue,
    LocalFilter,
    PendingAttr,
    RewrittenQuery,
    Subscriber,
)
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple, ProjectedTuple

COMMON = settings(max_examples=50, deadline=None)

MAX_IDENT = 2**160 - 1

R = Relation("R", ("A", "B"))
S = Relation("S", ("D", "E"))
BASE_QUERY = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E")


def roundtrip(obj):
    return decode(encode(obj))


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

idents = st.integers(min_value=0, max_value=MAX_IDENT)

#: Attribute values as the engine sees them: ints, floats, strings
#: (unicode included by default), booleans, None.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**80), max_value=2**80),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)

times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)

subscribers = st.builds(Subscriber, key=st.text(max_size=20), ident=idents, ip=st.text(max_size=20))

data_tuples = st.builds(
    lambda a, b, pub: DataTuple(R, (a, b), pub), scalars, scalars, times
)

projected_tuples = st.builds(
    lambda a, pub: ProjectedTuple("S", (("D", a),), pub), scalars, times
)

notifications = st.builds(
    Notification,
    query_key=st.text(max_size=20),
    subscriber_ident=idents,
    row=st.tuples(scalars, scalars),
    join_value_repr=st.text(max_size=20),
    trigger_pub_time=times,
    match_pub_time=times,
    created_at=times,
)

queries = st.builds(
    lambda key, t, sub: dataclasses.replace(
        BASE_QUERY, key=key, insertion_time=t, subscriber=sub
    ),
    st.text(max_size=20),
    times,
    subscribers,
)

rewritten_queries = st.builds(
    RewrittenQuery,
    key=st.text(max_size=20),
    original_key=st.text(max_size=20),
    group_signature=st.text(max_size=20),
    subscriber=subscribers,
    insertion_time=times,
    relation=st.just("R"),
    expr=st.sampled_from(
        [AttrRef("R", "B"), BinaryOp("+", AttrRef("R", "B"), Const(1))]
    ),
    required_value=scalars,
    dis_attribute=st.one_of(st.none(), st.just("B")),
    dis_value=scalars,
    filters=st.tuples(st.builds(LocalFilter, attribute=st.just("A"), value=scalars)),
    select=st.tuples(
        st.one_of(st.builds(BoundValue, value=scalars), st.just(PendingAttr("A")))
    ),
    trigger_pub_time=times,
)


# ----------------------------------------------------------------------
# Message round-trips (one property per message class)
# ----------------------------------------------------------------------

class TestMessageRoundTrips:
    def test_base_message(self):
        assert roundtrip(Message()) == Message()

    @COMMON
    @given(query=queries, side=st.sampled_from(["left", "right"]),
           ident=idents, refresh=st.booleans())
    def test_query_index_message(self, query, side, ident, refresh):
        message = QueryIndexMessage(
            query=query, index_side=side, routing_ident=ident, refresh=refresh
        )
        assert roundtrip(message) == message

    @COMMON
    @given(tup=data_tuples, attr=st.sampled_from(["A", "B"]), refresh=st.booleans())
    def test_al_index_message(self, tup, attr, refresh):
        message = ALIndexMessage(tuple=tup, index_attribute=attr, refresh=refresh)
        assert roundtrip(message) == message

    @COMMON
    @given(tup=data_tuples, attr=st.sampled_from(["A", "B"]), refresh=st.booleans())
    def test_vl_index_message(self, tup, attr, refresh):
        message = VLIndexMessage(tuple=tup, index_attribute=attr, refresh=refresh)
        assert roundtrip(message) == message

    @COMMON
    @given(projections=st.tuples(projected_tuples, projected_tuples))
    def test_join_message_projections(self, projections):
        message = JoinMessage(projections=projections)
        assert roundtrip(message) == message

    @COMMON
    @given(rewritten=rewritten_queries)
    def test_join_message_rewritten_fields(self, rewritten):
        # RewrittenQuery compares by identity (eq=False), so the decoded
        # copy is checked field by field.
        message = JoinMessage(rewritten=(rewritten,))
        decoded = roundtrip(message)
        (got,) = decoded.rewritten
        for f in dataclasses.fields(RewrittenQuery):
            assert getattr(got, f.name) == getattr(rewritten, f.name), f.name

    @COMMON
    @given(batch=st.tuples(notifications), ident=idents)
    def test_notification_message(self, batch, ident):
        message = NotificationMessage(notifications=batch, subscriber_ident=ident)
        assert roundtrip(message) == message

    @COMMON
    @given(key=st.text(max_size=40))
    def test_unsubscribe_message(self, key):
        message = UnsubscribeMessage(query_key=key)
        assert roundtrip(message) == message

    @COMMON
    @given(relation=st.text(max_size=20), attribute=st.text(max_size=20))
    def test_rate_probe_message(self, relation, attribute):
        message = RateProbeMessage(relation=relation, attribute=attribute)
        decoded = roundtrip(message)
        assert decoded == message
        # The local answer slot never travels; the receiver gets a fresh one.
        assert decoded.reply_box == []
        assert decoded.reply_box is not message.reply_box


class TestPayloadRoundTrips:
    @COMMON
    @given(value=scalars)
    def test_scalars(self, value):
        got = roundtrip(value)
        assert got == value
        assert type(got) is type(value)

    @COMMON
    @given(tup=data_tuples)
    def test_data_tuple(self, tup):
        got = roundtrip(tup)
        assert got == tup
        # Relation decoding interns: every decode yields the same object.
        assert got.relation is roundtrip(tup).relation

    @COMMON
    @given(note=notifications)
    def test_notification(self, note):
        assert roundtrip(note) == note

    @COMMON
    @given(query=queries)
    def test_join_query(self, query):
        assert roundtrip(query) == query

    def test_full_width_identifier(self):
        """160-bit Chord identifiers survive the varint encoding."""
        message = QueryIndexMessage(
            query=BASE_QUERY, index_side="left", routing_ident=MAX_IDENT
        )
        assert roundtrip(message).routing_ident == MAX_IDENT

    def test_unicode_values(self):
        tup = DataTuple(R, ("καλημέρα", "数据库🛰"), 1.0)
        assert roundtrip(tup) == tup

    def test_numeric_types_stay_distinct(self):
        """2, 2.0 and True are equal in Python but not on the wire."""
        got = roundtrip((2, 2.0, True))
        assert [type(v) for v in got] == [int, float, bool]


class TestFrameEnvelopes:
    @COMMON
    @given(target=idents, hops=st.integers(min_value=0, max_value=200))
    def test_route_frame(self, target, hops):
        frame = RouteFrame(target, ALIndexMessage(
            tuple=DataTuple(R, (1, 2), 0.0), index_attribute="B"
        ), hops)
        assert roundtrip(frame) == frame

    def test_multi_frame_and_peer_info(self):
        frame = MultiFrame(pairs=((5, Message()), (MAX_IDENT, Message())), hops=3)
        assert roundtrip(frame) == frame
        info = PeerInfo(ident=MAX_IDENT, host="127.0.0.1", port=65535)
        assert roundtrip(info) == info


# ----------------------------------------------------------------------
# Framing and failure modes
# ----------------------------------------------------------------------

class TestFraming:
    def test_frame_layout(self):
        frame = encode_frame(Message())
        assert frame[:2] == MAGIC
        assert frame[2] == PROTOCOL_VERSION
        obj, consumed = decode_frame(frame)
        assert obj == Message()
        assert consumed == len(frame)

    def test_header_reports_payload_length(self):
        frame = encode_frame(UnsubscribeMessage(query_key="k"))
        assert decode_header(frame[:HEADER_SIZE]) == len(frame) - HEADER_SIZE

    def test_bad_magic_rejected(self):
        frame = b"XX" + encode_frame(Message())[2:]
        with pytest.raises(CodecError, match="magic"):
            decode_header(frame[:HEADER_SIZE])

    def test_unknown_version_rejected(self):
        header = struct.pack(">2sBI", MAGIC, PROTOCOL_VERSION + 1, 0)
        with pytest.raises(CodecError, match="version"):
            decode_header(header)

    def test_truncated_header_rejected(self):
        with pytest.raises(CodecError, match="header"):
            decode_header(b"RJ")

    def test_truncated_payload_rejected(self):
        frame = encode_frame(UnsubscribeMessage(query_key="key"))
        with pytest.raises(CodecError, match="truncated"):
            decode_frame(frame[:-1])

    def test_oversized_length_rejected(self):
        header = struct.pack(">2sBI", MAGIC, PROTOCOL_VERSION, MAX_PAYLOAD + 1)
        with pytest.raises(CodecError, match="MAX_PAYLOAD"):
            decode_header(header)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError, match="trailing"):
            decode(encode(1) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown value tag"):
            decode(b"\xff")

    def test_unserializable_object_rejected(self):
        with pytest.raises(CodecError, match="cannot serialize"):
            encode({1, 2, 3})

    def test_duplicate_tag_registration_rejected(self):
        with pytest.raises(CodecError, match="registered twice"):
            register_record(Relation, 0x10, ("name", "attributes"))
