"""Failure-detector tests: suspicion, probing, recovery, routing impact.

Timings are aggressive (tens of milliseconds) because everything runs
against localhost servers inside one event loop; the production-shaped
defaults live in :class:`repro.net.health.HealthConfig`.
"""

import asyncio
import socket

import pytest

from repro.net.cluster import ClusterConfig, LiveCluster
from repro.net.frames import DirectFrame, PeerInfo
from repro.net.health import HealthConfig
from repro.net.peer import NetConfig
from repro.sim.messages import UnsubscribeMessage


def closed_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_cluster(n_nodes=3, health=None, **net_kwargs):
    net_kwargs.setdefault("connect_timeout", 0.5)
    net_kwargs.setdefault("io_timeout", 1.0)
    net_kwargs.setdefault("backoff_base", 0.01)
    return LiveCluster(
        ClusterConfig(
            n_nodes=n_nodes,
            quiesce_timeout=5.0,
            net=NetConfig(**net_kwargs),
            health=health,
        )
    )


FAST = HealthConfig(
    heartbeat_interval=0.02,
    suspicion_timeout=0.12,
    failure_threshold=2,
    probe_backoff_base=0.02,
    probe_backoff_max=0.1,
    probe_timeout=0.5,
)


class TestHealthConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            HealthConfig(suspicion_timeout=-1.0)
        with pytest.raises(ValueError):
            HealthConfig(failure_threshold=0)


class TestWriteFailureSuspicion:
    def test_consecutive_write_failures_mark_suspect(self):
        async def scenario():
            cluster = make_cluster(max_attempts=4)
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                detector = peer.enable_health(
                    HealthConfig(
                        heartbeat_interval=5.0,  # no background traffic
                        suspicion_timeout=60.0,
                        failure_threshold=2,
                        probe_backoff_base=60.0,  # probe never fires
                    )
                )
                other = next(
                    ident for ident in peer.book if ident != peer.node.ident
                )
                real = peer.book[other]
                peer.book[other] = PeerInfo(real.ident, real.host, closed_port())
                peer._outboxes.pop(other, None)  # drop pooled connection
                cluster.in_flight.inc("unsubscribe")
                peer.post(
                    other,
                    DirectFrame(message=UnsubscribeMessage(query_key="k")),
                    weight=1,
                )
                await cluster.drain(tolerate_failures=True)
                assert detector.is_suspect(other)
                assert detector.suspicions == 1
                # Restore the address and let note_alive clear the state
                # the way a successful write would.
                peer.book[other] = real
                detector.note_alive(other)
                assert not detector.is_suspect(other)
                assert detector.recoveries == 1
            finally:
                cluster.errors.clear()
                await cluster.stop()

        asyncio.run(scenario())


class TestSilenceAndProbe:
    def test_server_outage_is_detected_and_probe_restores(self):
        async def scenario():
            cluster = make_cluster(n_nodes=3)
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                detector = peer.enable_health(FAST)
                victim_ident = next(
                    ident for ident in peer.book if ident != peer.node.ident
                )
                victim = cluster.peers[victim_ident]
                victim_port = victim.info.port
                await victim.stop_server()
                # Failing heartbeat writes trip the failure threshold.
                deadline = asyncio.get_running_loop().time() + 3.0
                while (
                    not detector.is_suspect(victim_ident)
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert detector.is_suspect(victim_ident)
                # Same address comes back; the probe must notice and
                # restore the peer without any membership traffic.
                await victim.start(cluster.config.host, port=victim_port)
                deadline = asyncio.get_running_loop().time() + 3.0
                while (
                    detector.is_suspect(victim_ident)
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert not detector.is_suspect(victim_ident)
                assert detector.recoveries >= 1
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_pure_silence_trips_the_suspicion_timeout(self):
        async def scenario():
            cluster = make_cluster(n_nodes=3)
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                detector = peer.enable_health(FAST)
                # Mute this peer's heartbeats: with no writes succeeding
                # (and none failing), the only evidence left is silence.
                peer.post_heartbeat = lambda ident: None
                others = {
                    ident for ident in peer.book if ident != peer.node.ident
                }
                deadline = asyncio.get_running_loop().time() + 3.0
                while (
                    detector.suspicions < len(others)
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert detector.suspicions >= len(others)
                # The probes reach the (healthy) servers and restore.
                deadline = asyncio.get_running_loop().time() + 3.0
                while (
                    detector.suspects
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert not detector.suspects
                assert detector.recoveries >= 1
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_mutual_heartbeats_prevent_suspicion(self):
        async def scenario():
            cluster = make_cluster(n_nodes=3, health=FAST)
            await cluster.start()
            try:
                # Every peer heartbeats every other: after several
                # suspicion windows nobody should be suspect.
                await asyncio.sleep(0.5)
                for peer in cluster.peers.values():
                    assert peer.detector is not None
                    assert not peer.detector.suspects
                    assert peer.detector.heartbeats_sent > 0
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestRoutingAroundSuspects:
    def test_next_hop_skips_suspected_finger(self):
        async def scenario():
            cluster = make_cluster(n_nodes=6)
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                node = peer.node
                detector = peer.enable_health(
                    HealthConfig(
                        heartbeat_interval=5.0,
                        suspicion_timeout=60.0,
                        probe_backoff_base=60.0,
                    )
                )
                # Find a target whose next hop is a finger (not the
                # successor), then suspect that finger.
                successor = node.successor
                for candidate in cluster.network.nodes:
                    target = candidate.ident
                    hop = peer._next_hop(target)
                    if hop is not successor and hop is not node:
                        detector._suspect(hop.ident)
                        rerouted = peer._next_hop(target)
                        assert rerouted is successor
                        break
                else:  # pragma: no cover - ring too small to exercise
                    pytest.skip("no finger hop distinct from successor")
            finally:
                await cluster.stop()

        asyncio.run(scenario())
