"""Tests for the live-throughput path: structural peeks, raw relay
splicing, batched stream decode, and the baseline codec swap.

The zero-copy relay never materializes the messages it forwards, so
every structural helper here is proven byte-exact against the full
decode/encode round trip: a peek must read exactly what decode reads, a
splice must produce exactly the bytes a re-encode would, and the hop
bump must equal re-encoding the frame with ``hops + 1``.  The legacy
codec swap used for baseline measurement must be wire-identical to the
fast paths, or the measured speedup would be comparing two protocols.
"""

import asyncio
import dataclasses
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.cluster import ClusterConfig, LiveCluster
from repro.net.codec import (
    HEADER_SIZE,
    decode_frame,
    decode_value_at,
    encode,
    encode_frame,
    skip_value,
    use_legacy_codec,
)
from repro.net.frames import (
    DirectFrame,
    MultiFrame,
    RouteFrame,
    bump_route_hops,
    peek_multi,
    peek_route,
    splice_multi,
)
from repro.net.peer import NetConfig
from repro.sim.messages import ALIndexMessage, UnsubscribeMessage
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

COMMON = settings(max_examples=50, deadline=None)
R = Relation("R", ("A", "B"))

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.binary(max_size=12),
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=6), inner, max_size=3),
    ),
    max_leaves=12,
)


def data_tuple(a, b):
    return DataTuple.make(R, {"A": a, "B": b}, pub_time=1.0)


def message_for(n: int):
    """A deterministic, codec-registered application message."""
    if n % 2:
        return UnsubscribeMessage(query_key=f"probe-{n}")
    return ALIndexMessage(tuple=data_tuple(n, n * 7), index_attribute="B")


class TestStructuralSkip:
    @COMMON
    @given(value=values)
    def test_skip_matches_decode_span(self, value):
        payload = encode(value)
        assert skip_value(payload, 0) == len(payload)
        decoded, end = decode_value_at(payload, 0)
        assert end == len(payload)
        assert repr(decoded) == repr(value)  # repr: 1.0 != 1 distinction

    @COMMON
    @given(value=values, n=st.integers(min_value=0, max_value=40))
    def test_skip_rejects_truncation(self, value, n):
        payload = encode(value)
        if n >= len(payload):
            return
        with pytest.raises(Exception):
            if skip_value(payload[:n], 0) > n:
                raise ValueError("skipped past the truncation point")

    def test_skip_over_registered_records(self):
        payload = encode(message_for(2))
        assert skip_value(payload, 0) == len(payload)


class TestRoutePeek:
    @COMMON
    @given(
        target=st.integers(min_value=0, max_value=2**160 - 1),
        hops=st.integers(min_value=0, max_value=63),
        n=st.integers(min_value=0, max_value=5),
    )
    def test_peek_route_matches_decode(self, target, hops, n):
        frame = RouteFrame(target_ident=target, message=message_for(n), hops=hops)
        payload = encode(frame)
        peeked = peek_route(payload)
        assert peeked is not None
        got_target, got_tag, got_hops = peeked
        assert got_target == target
        assert got_hops == hops
        assert got_tag == encode(frame.message)[0]

    def test_peek_route_declines_wide_hop_counters(self):
        # hops >= 64 zigzags to a multi-byte varint: the relay must
        # fall back to the decoded path, never misread the tail.
        payload = encode(RouteFrame(1, message_for(1), hops=64))
        assert peek_route(payload) is None
        decoded, _ = decode_frame(encode_frame(RouteFrame(1, message_for(1), 64)))
        assert decoded.hops == 64

    @COMMON
    @given(junk=st.binary(max_size=24))
    def test_peek_route_never_raises_on_junk(self, junk):
        assert peek_route(junk) is None or isinstance(peek_route(junk), tuple)

    @COMMON
    @given(
        target=st.integers(min_value=0, max_value=2**160 - 1),
        hops=st.integers(min_value=0, max_value=61),
    )
    def test_bump_equals_reencode(self, target, hops):
        frame = RouteFrame(target_ident=target, message=message_for(1), hops=hops)
        data = encode_frame(frame)
        bumped = bump_route_hops(data[:HEADER_SIZE], data[HEADER_SIZE:])
        assert bumped == encode_frame(dataclasses.replace(frame, hops=hops + 1))


class TestMultiPeekAndSplice:
    @COMMON
    @given(
        idents=st.lists(
            st.integers(min_value=0, max_value=2**160 - 1),
            min_size=1,
            max_size=6,
        ),
        hops=st.integers(min_value=0, max_value=61),
        data=st.data(),
    )
    def test_peek_splice_and_bump(self, idents, hops, data):
        pairs = tuple(
            (ident, message_for(i)) for i, ident in enumerate(idents)
        )
        frame = MultiFrame(pairs=pairs, hops=hops)
        wire = encode_frame(frame)
        payload = wire[HEADER_SIZE:]

        peeked = peek_multi(payload)
        assert peeked is not None
        got_idents, tags, message_starts, pair_starts, got_hops = peeked
        assert got_idents == list(idents)
        assert got_hops == hops
        for i, start in enumerate(message_starts):
            message, _ = decode_value_at(payload, start)
            assert message == pairs[i][1]
            assert tags[i] == encode(pairs[i][1])[0]

        # A pure relay forwards the identical bytes with hops + 1.
        bumped = bump_route_hops(wire[:HEADER_SIZE], payload)
        assert bumped == encode_frame(dataclasses.replace(frame, hops=hops + 1))

        # A delivering hop splices out any kept subset verbatim.
        keep = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=len(pairs) - 1),
                    min_size=1,
                )
            )
        )
        spliced = splice_multi(payload, pair_starts, keep, hops)
        expected = MultiFrame(
            pairs=tuple(pairs[i] for i in keep), hops=hops + 1
        )
        assert spliced == encode(expected)

    def test_peek_multi_declines_wide_hop_counters(self):
        frame = MultiFrame(pairs=((1, message_for(1)),), hops=64)
        assert peek_multi(encode(frame)) is None

    @COMMON
    @given(junk=st.binary(max_size=24))
    def test_peek_multi_never_raises_on_junk(self, junk):
        peek_multi(junk)  # must not raise


class TestLegacyCodecIdentity:
    """`use_legacy_codec` swaps implementations, never the wire format."""

    def test_wire_bytes_identical_across_swap(self):
        samples = [
            message_for(n) for n in range(4)
        ] + [
            RouteFrame(2**159, message_for(1), hops=3),
            MultiFrame(((5, message_for(2)), (9, message_for(3))), hops=1),
            ("mixed", (1, 2.5, None), {"k": [True, b"x"]}),
        ]
        fast = [encode_frame(sample) for sample in samples]
        use_legacy_codec(True)
        try:
            legacy = [encode_frame(sample) for sample in samples]
            decoded_legacy = [decode_frame(data) for data in fast]
        finally:
            use_legacy_codec(False)
        assert fast == legacy
        assert [repr(decode_frame(d)) for d in legacy] == [
            repr(obj) for obj in decoded_legacy
        ]


def make_cluster(**net_kwargs):
    return LiveCluster(
        ClusterConfig(
            n_nodes=2,
            quiesce_timeout=10.0,
            net=NetConfig(
                connect_timeout=0.5, io_timeout=2.0, backoff_base=0.01, **net_kwargs
            ),
        )
    )


async def blast_frames(cluster, payload_chunks, n_frames):
    """Write pre-framed bytes to one live peer in the given chunks and
    wait until every frame was handled."""
    received = []
    for node in cluster.network.nodes:
        node.register_handler(
            "unsubscribe", lambda node, message: received.append(message.query_key)
        )
    target = next(iter(cluster.peers.values()))
    for _ in range(n_frames):
        cluster.in_flight.inc("unsubscribe")
    reader, writer = await asyncio.open_connection(
        target.info.host, target.info.port
    )
    try:
        for chunk in payload_chunks:
            writer.write(chunk)
            await writer.drain()
            await asyncio.sleep(0)
        await cluster.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    return received


class TestCoalescedStream:
    """The receive loop must split any batching the sender (or the
    kernel) performed: frame boundaries exist only in the length
    prefixes, never in packet boundaries."""

    def test_many_frames_in_one_write(self):
        async def scenario():
            cluster = make_cluster()
            await cluster.start()
            try:
                frames = [
                    encode_frame(
                        DirectFrame(message=UnsubscribeMessage(query_key=f"q{i}"))
                    )
                    for i in range(8)
                ]
                return await blast_frames(cluster, [b"".join(frames)], 8)
            finally:
                await cluster.stop()

        received = asyncio.run(scenario())
        assert received == [f"q{i}" for i in range(8)]

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_arbitrary_chunk_boundaries(self, data):
        frames = [
            encode_frame(
                DirectFrame(message=UnsubscribeMessage(query_key=f"q{i}"))
            )
            for i in range(4)
        ]
        stream = b"".join(frames)
        cuts = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=1, max_value=len(stream) - 1),
                    max_size=6,
                )
            )
        )
        bounds = [0] + cuts + [len(stream)]
        chunks = [
            stream[a:b] for a, b in zip(bounds, bounds[1:]) if a != b
        ]

        async def scenario():
            cluster = make_cluster()
            await cluster.start()
            try:
                return await blast_frames(cluster, chunks, 4)
            finally:
                await cluster.stop()

        assert asyncio.run(scenario()) == [f"q{i}" for i in range(4)]


class TestBatchingAndNodelay:
    def test_rapid_posts_coalesce_into_batches(self):
        async def scenario():
            cluster = make_cluster(max_batch_frames=64)
            await cluster.start()
            try:
                received = []
                for node in cluster.network.nodes:
                    node.register_handler(
                        "unsubscribe",
                        lambda node, message: received.append(message.query_key),
                    )
                sender, target = list(cluster.peers.values())
                # Synchronous enqueue of a burst: the outbox task wakes
                # once and must ship the backlog as coalesced writes.
                for i in range(12):
                    cluster.in_flight.inc("unsubscribe")
                    sender.post(
                        target.node.ident,
                        DirectFrame(
                            message=UnsubscribeMessage(query_key=f"q{i}")
                        ),
                        weight=1,
                    )
                await cluster.drain()
                batches = sender.batches_sent
                frames = sender.frames_sent
                return received, batches, frames
            finally:
                await cluster.stop()

        received, batches, frames = asyncio.run(scenario())
        assert sorted(received) == sorted(f"q{i}" for i in range(12))
        assert frames >= 12
        assert 1 <= batches < frames

    def test_tcp_nodelay_set_on_outbox_sockets(self):
        async def scenario():
            cluster = make_cluster(nodelay=True)
            await cluster.start()
            try:
                sender, target = list(cluster.peers.values())
                cluster.in_flight.inc("unsubscribe")
                sender.post(
                    target.node.ident,
                    DirectFrame(message=UnsubscribeMessage(query_key="q")),
                    weight=1,
                )
                await cluster.drain()
                outbox = next(iter(sender._outboxes.values()))
                sock = outbox.writer.get_extra_info("socket")
                return sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY)
            finally:
                await cluster.stop()

        assert asyncio.run(scenario()) != 0
