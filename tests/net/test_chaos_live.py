"""Chaos-over-TCP tests: soak convergence, restart, backpressure.

The soak tests are the acceptance gate of the live failure model
(DESIGN.md §12): a workload replayed under seeded wire faults, one
partition episode and live crash/restart cycles must converge to the
fault-free simulator digest with no duplicate deliveries and a peak
in-flight load inside the credit budget.
"""

import asyncio

import pytest

from repro.faults.plan import FaultPlan, NetFaultSpec
from repro.net.chaos import (
    ChaosSoakReport,
    LiveChaos,
    SoakSettings,
    parse_chaos_spec,
    run_chaos_soak,
    soak_reference,
)
from repro.net.cluster import ClusterConfig, LiveCluster
from repro.net.frames import DirectFrame
from repro.net.health import HealthConfig
from repro.net.peer import NetConfig
from repro.sim.messages import UnsubscribeMessage
from repro.workload.generator import WorkloadParams, build_workload

ALGORITHMS = ("sai", "dai-q", "dai-t", "dai-v")

SOAK_PLAN = FaultPlan(
    seed=17,
    max_attempts=4,
    backoff_base=0.02,
    backoff_jitter=0.5,
    net=NetFaultSpec(
        connect_refusal_probability=0.05,
        frame_fault_probability=0.05,
    ),
)

FAST_HEALTH = HealthConfig(
    heartbeat_interval=0.05,
    suspicion_timeout=0.3,
    probe_backoff_base=0.05,
    probe_backoff_max=0.2,
)


def soak_config(algorithm, n_nodes=5, seed=7):
    return ClusterConfig(
        algorithm=algorithm,
        n_nodes=n_nodes,
        seed=seed,
        quiesce_timeout=20.0,
        net=NetConfig.from_fault_plan(
            SOAK_PLAN, connect_timeout=1.0, io_timeout=2.0
        ),
        health=FAST_HEALTH,
    )


class TestChaosSoak:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_soak_converges_to_fault_free_digest(self, algorithm):
        workload = build_workload(
            WorkloadParams(n_queries=8, n_tuples=40, domain_size=25, seed=7)
        )
        settings = SoakSettings(crashes=2, partition=True, subscribers=2)
        report = asyncio.run(
            run_chaos_soak(
                workload,
                config=soak_config(algorithm),
                plan=SOAK_PLAN,
                settings=settings,
            )
        )
        assert isinstance(report, ChaosSoakReport)
        # The chaos really bit: wire faults, a partition, live crashes.
        wire_faults = (
            report.chaos.get("connects_refused", 0)
            + report.chaos.get("frames_reset", 0)
            + report.chaos.get("frames_truncated", 0)
            + report.chaos.get("frames_garbled", 0)
        )
        assert wire_faults > 0
        assert report.chaos.get("partitions", 0) >= 1
        assert report.chaos.get("blocked_sends", 0) > 0
        assert report.crashes == 2
        assert report.restarts == 2
        # ... and the system still converged, exactly once, in budget.
        reference_digest, reference_delivered = soak_reference(
            workload, algorithm=algorithm, n_nodes=5, seed=7, subscribers=2
        )
        assert report.notification_digest == reference_digest
        assert report.notifications_delivered == reference_delivered
        assert report.duplicate_deliveries == 0
        assert report.within_budget
        assert report.peak_in_flight > 0


class TestLiveRestart:
    def test_server_restart_on_same_address_resumes_routing(self):
        """Satellite: kill a node's TCP server mid-run, restart it on the
        same port, and routing resumes with no duplicate deliveries."""

        async def scenario():
            cluster = LiveCluster(
                ClusterConfig(
                    n_nodes=4,
                    quiesce_timeout=10.0,
                    net=NetConfig(
                        connect_timeout=0.5,
                        io_timeout=1.0,
                        backoff_base=0.05,
                        max_attempts=6,
                    ),
                )
            )
            await cluster.start()
            try:
                received = []
                for node in cluster.network.nodes:
                    node.register_handler(
                        "unsubscribe",
                        lambda node, message: received.append(
                            (node.ident, message.query_key)
                        ),
                    )
                source = cluster.network.nodes[0]
                target = cluster.network.nodes[2]
                target_peer = cluster.peers[target.ident]
                port = target_peer.info.port

                # Healthy delivery first, so a pooled connection exists.
                cluster.transport.send_direct(
                    source, UnsubscribeMessage(query_key="before"), target
                )
                await cluster.drain()

                await target_peer.stop_server()
                # Posted while the listener is down: the pooled (now
                # dead) connection is detected, the reconnect fails, the
                # outbox retries with backoff.
                cluster.transport.send_direct(
                    source, UnsubscribeMessage(query_key="during"), target
                )
                await asyncio.sleep(0.1)
                await target_peer.start(cluster.config.host, port=port)
                await cluster.drain()

                cluster.transport.send_direct(
                    source, UnsubscribeMessage(query_key="after"), target
                )
                await cluster.drain()

                keys = [key for _, key in received]
                assert keys == ["before", "during", "after"]  # exactly once
                assert cluster.errors == []
                # Same address: nobody's book needed an update.
                for peer in cluster.peers.values():
                    assert peer.book[target.ident].port == port
            finally:
                cluster.errors.clear()
                await cluster.stop()

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_send_window_sheds_instead_of_buffering(self):
        async def scenario():
            cluster = LiveCluster(
                ClusterConfig(
                    n_nodes=3,
                    quiesce_timeout=10.0,
                    net=NetConfig(
                        connect_timeout=0.3,
                        io_timeout=1.0,
                        backoff_base=0.2,  # slow retries keep the queue full
                        max_attempts=3,
                        send_window=4,
                    ),
                )
            )
            await cluster.start()
            try:
                peer = next(iter(cluster.peers.values()))
                other = next(
                    ident for ident in peer.book if ident != peer.node.ident
                )
                await cluster.peers[other].stop_server()
                peer._outboxes.pop(other, None)
                for index in range(10):
                    cluster.in_flight.inc("unsubscribe")
                    peer.post(
                        other,
                        DirectFrame(
                            message=UnsubscribeMessage(query_key=f"k{index}")
                        ),
                        weight=1,
                    )
                assert peer.frames_shed >= 1
                # Shed frames settle immediately as failures; the rest
                # exhaust their retries against the dead listener.
                await cluster.drain(tolerate_failures=True)
                assert cluster.in_flight.count == 0
                assert len(cluster.fault_log) >= peer.frames_shed
            finally:
                cluster.errors.clear()
                await cluster.stop()

        asyncio.run(scenario())

    def test_credit_budget_gates_the_driver(self):
        async def scenario():
            from repro.errors import QuiesceTimeout
            from repro.net.peer import InFlight

            counter = InFlight(budget=2)
            counter.inc("match", 2)
            with pytest.raises(QuiesceTimeout):
                await counter.wait_below_budget(0.05)
            counter.dec("match")
            await counter.wait_below_budget(0.5)
            assert counter.peak == 2

        asyncio.run(scenario())


class TestLiveChaosUnit:
    def test_partition_blocks_directionally(self):
        chaos = LiveChaos(FaultPlan(seed=1))
        chaos.partition([1, 2], [3], asymmetric=True)
        assert chaos.blocked(1, 3) and chaos.blocked(2, 3)
        assert not chaos.blocked(3, 1)  # asymmetric: B still reaches A
        chaos.heal()
        assert not chaos.blocked(1, 3)
        assert chaos.counters["partitions"] == 1

    def test_symmetric_partition_blocks_both_ways(self):
        chaos = LiveChaos(FaultPlan(seed=1))
        chaos.partition([1], [2], asymmetric=False)
        assert chaos.blocked(1, 2) and chaos.blocked(2, 1)

    def test_corrupt_keeps_header_poisons_payload(self):
        from repro.net.codec import (
            HEADER_SIZE,
            decode,
            decode_header,
            encode_frame,
        )
        from repro.errors import CodecError

        chaos = LiveChaos(FaultPlan(seed=1))
        data = encode_frame(DirectFrame(message=UnsubscribeMessage(query_key="x")))
        bad = chaos.corrupt(data)
        assert len(bad) == len(data)
        # Header still valid: a receiver reads the full frame...
        assert decode_header(bad[:HEADER_SIZE]) == len(bad) - HEADER_SIZE
        # ...then must fail in the decoder, not in readexactly.
        with pytest.raises(CodecError):
            decode(bad[HEADER_SIZE:])

    def test_spec_parsing(self):
        plan, settings = parse_chaos_spec("default")
        assert plan.net.connect_refusal_probability >= 0.05
        assert plan.net.frame_fault_probability >= 0.05
        assert plan.backoff_jitter > 0
        assert settings.crashes == 2 and settings.partition

        plan, settings = parse_chaos_spec("frame=0.2,crashes=3,partition=0,seed=5")
        assert plan.net.frame_fault_probability == 0.2
        assert plan.seed == 5
        assert settings.crashes == 3 and not settings.partition

        with pytest.raises(ValueError):
            parse_chaos_spec("bogus_key=1")


class TestExactlyOnceUnderWireFaults:
    def test_every_frame_delivered_once_despite_faults(self):
        """Resets, truncations and garbles are all pre-write faults:
        heavy injection must not duplicate or drop a single frame."""

        async def scenario():
            plan = FaultPlan(
                seed=23,
                max_attempts=8,
                backoff_base=0.01,
                net=NetFaultSpec(frame_fault_probability=0.3),
            )
            cluster = LiveCluster(
                ClusterConfig(
                    n_nodes=4,
                    quiesce_timeout=20.0,
                    net=NetConfig.from_fault_plan(
                        plan, connect_timeout=1.0, io_timeout=2.0
                    ),
                )
            )
            cluster.install_chaos(LiveChaos(plan))
            await cluster.start()
            try:
                received = []
                for node in cluster.network.nodes:
                    node.register_handler(
                        "unsubscribe",
                        lambda node, message: received.append(message.query_key),
                    )
                source = cluster.network.nodes[0]
                targets = cluster.network.nodes[1:]
                n_frames = 30
                for index in range(n_frames):
                    cluster.transport.send_direct(
                        source,
                        UnsubscribeMessage(query_key=f"k{index}"),
                        targets[index % len(targets)],
                    )
                await cluster.drain(tolerate_failures=True)
                assert cluster.fault_log == []  # retries absorbed everything
                assert sorted(received) == sorted(
                    f"k{index}" for index in range(n_frames)
                )
                chaos = cluster.chaos
                assert (
                    chaos.counters["frames_reset"]
                    + chaos.counters["frames_truncated"]
                    + chaos.counters["frames_garbled"]
                ) > 0
            finally:
                cluster.errors.clear()
                await cluster.stop()

        asyncio.run(scenario())
