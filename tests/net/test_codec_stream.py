"""Stream-hardening tests: corrupt bytes on a live socket pair.

Satellite of the chaos PR: a mid-stream :class:`~repro.errors.CodecError`
must close the offending connection (so the sender's retry path dials a
clean one) instead of leaving the reader task dead with the connection
still pooled — and the server must keep serving other connections.

Hypothesis feeds truncated and garbled frames into real sockets; the
cluster under test is deliberately tiny (two nodes) because every
example spins up live TCP servers.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.net.cluster import ClusterConfig, LiveCluster
from repro.net.codec import HEADER_SIZE, encode_frame
from repro.net.frames import DirectFrame
from repro.net.peer import NetConfig
from repro.sim.messages import UnsubscribeMessage

STREAM = settings(max_examples=12, deadline=None)

VALID_FRAME = encode_frame(
    DirectFrame(message=UnsubscribeMessage(query_key="probe"))
)


def make_cluster():
    return LiveCluster(
        ClusterConfig(
            n_nodes=2,
            quiesce_timeout=5.0,
            net=NetConfig(connect_timeout=0.5, io_timeout=1.0, backoff_base=0.01),
        )
    )


async def poke_and_verify(payload: bytes, *, expect_codec_fault: bool):
    """Write ``payload`` raw to a live peer, then prove the peer still
    works: the poisoned connection dies, a fresh one delivers."""
    cluster = make_cluster()
    await cluster.start()
    try:
        received = []
        for node in cluster.network.nodes:
            node.register_handler(
                "unsubscribe",
                lambda node, message: received.append(message.query_key),
            )
        target = next(iter(cluster.peers.values()))
        info = target.info

        reader, writer = await asyncio.open_connection(info.host, info.port)
        writer.write(payload)
        await writer.drain()
        if expect_codec_fault:
            # A complete-but-corrupt frame: the server must abort the
            # connection from its side (we observe EOF).
            data = await asyncio.wait_for(reader.read(64), 3.0)
            assert data == b""
        else:
            # Mid-frame truncation: close our side; the reader task must
            # notice and clean up rather than hang.
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass
        if expect_codec_fault:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

        # Give the serve task a beat to record the fault.
        for _ in range(100):
            if cluster.codec_faults or cluster.stream_breaks:
                break
            await asyncio.sleep(0.01)
        if expect_codec_fault:
            assert cluster.codec_faults >= 1
        else:
            assert cluster.stream_breaks >= 1
        # Without chaos installed, corruption is surfaced as an error;
        # acknowledge it so it doesn't fail the next drain.
        assert cluster.errors
        cluster.errors.clear()

        # The server survived: a clean connection still delivers.
        reader2, writer2 = await asyncio.open_connection(info.host, info.port)
        cluster.in_flight.inc("unsubscribe")
        writer2.write(VALID_FRAME)
        await writer2.drain()
        await cluster.drain()
        assert received == ["probe"]
        writer2.close()
        try:
            await writer2.wait_closed()
        except (OSError, ConnectionError):
            pass
    finally:
        cluster.errors.clear()
        await cluster.stop()


class TestGarbledFrames:
    @STREAM
    @given(junk=st.binary(min_size=HEADER_SIZE, max_size=64))
    def test_garbage_bytes_abort_the_connection(self, junk):
        # Avoid junk that happens to be a valid frame prefix: force a
        # bad magic so the decode deterministically fails.
        poisoned = b"XX" + junk[2:]
        asyncio.run(poke_and_verify(poisoned, expect_codec_fault=True))

    @STREAM
    @given(cut=st.integers(min_value=1, max_value=len(VALID_FRAME) - 1))
    def test_corrupted_payload_of_valid_header(self, cut):
        # Valid header + payload with the tag byte smashed: the server
        # reads the complete frame and must fail in the decoder.
        frame = bytearray(VALID_FRAME)
        frame[HEADER_SIZE] = 0xFF
        asyncio.run(poke_and_verify(bytes(frame), expect_codec_fault=True))


class TestTruncatedFrames:
    @STREAM
    @given(
        cut=st.integers(min_value=HEADER_SIZE + 1, max_value=len(VALID_FRAME) - 1)
    )
    def test_mid_frame_eof_breaks_stream_not_server(self, cut):
        asyncio.run(
            poke_and_verify(VALID_FRAME[:cut], expect_codec_fault=False)
        )
