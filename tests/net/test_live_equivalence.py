"""End-to-end: a live TCP ring must reproduce the simulator exactly.

An 8-node localhost cluster replays a seeded workload over real sockets
and must deliver *exactly* the simulator's notification set — same
digest, same per-query (join value, row) sets — and both must agree
with the centralized nested-loop oracle.  This is the subsystem's
correctness gate: any divergence in routing, codec, or quiescence shows
up as a digest mismatch here.
"""

import asyncio

import pytest

from repro.chord.network import ChordNetwork
from repro.core.engine import ContinuousQueryEngine, EngineConfig
from repro.core.oracle import CentralizedOracle
from repro.bench.harness import run_workload
from repro.bench.macro import notification_digest
from repro.net.cluster import ClusterConfig, LiveCluster
from repro.sql.tuples import DataTuple
from repro.workload.generator import WorkloadParams, build_workload

N_NODES = 8
SEED = 7

WORKLOAD = build_workload(
    WorkloadParams(n_queries=10, n_tuples=40, domain_size=20, seed=SEED)
)


async def live_run(algorithm, workload=WORKLOAD, n_nodes=N_NODES):
    """Run ``workload`` on a live ring; return the still-warm cluster."""
    cluster = LiveCluster(
        ClusterConfig(algorithm=algorithm, n_nodes=n_nodes, seed=SEED)
    )
    await cluster.start()
    try:
        report = await cluster.run(workload)
    finally:
        await cluster.stop()
    return cluster, report


def simulator_run(algorithm, workload=WORKLOAD, n_nodes=N_NODES):
    engine = ContinuousQueryEngine(
        ChordNetwork.build(n_nodes),
        EngineConfig(algorithm=algorithm, seed=SEED),
    )
    run_workload(engine, workload, seed=SEED)
    return engine


def oracle_for(engine, workload):
    """Ground truth for the live engine's bound queries + the workload."""
    oracle = CentralizedOracle()
    for query in engine.queries.values():
        oracle.subscribe(query)
    for event in workload:
        if event.kind == "tuple":
            relation, values = event.payload
            oracle.insert(DataTuple.make(relation, values, pub_time=event.time))
    return oracle


@pytest.mark.parametrize("algorithm", ["sai", "dai-v"])
def test_live_ring_matches_simulator_exactly(algorithm):
    cluster, report = asyncio.run(live_run(algorithm))
    sim_engine = simulator_run(algorithm)

    # Same digest (the CLI gate) ...
    assert report.notification_digest == notification_digest(sim_engine)
    # ... and, stronger, the same per-query delivered-notification sets.
    live_engine = cluster.engine
    assert set(live_engine.queries) == set(sim_engine.queries)
    for key in sim_engine.queries:
        assert live_engine.delivered_rows(key) == sim_engine.delivered_rows(key)
    assert report.notifications_delivered == sum(
        len(batch) for batch in sim_engine.delivered.values()
    )
    # No deliveries outstanding, no swallowed failures.
    assert cluster.in_flight.count == 0
    assert cluster.errors == []
    # Payloads really crossed sockets.
    assert report.frames_sent > 0
    assert report.bytes_sent > 0


@pytest.mark.parametrize("algorithm", ["sai", "dai-v"])
def test_live_ring_matches_centralized_oracle(algorithm):
    cluster, _ = asyncio.run(live_run(algorithm))
    engine = cluster.engine
    oracle = oracle_for(engine, WORKLOAD)
    for key in engine.queries:
        assert engine.delivered_rows(key) == oracle.rows_for(key), key


def test_all_four_algorithms_match_on_a_small_ring():
    workload = build_workload(
        WorkloadParams(n_queries=6, n_tuples=24, domain_size=12, seed=SEED)
    )
    for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
        _, report = asyncio.run(live_run(algorithm, workload, n_nodes=6))
        sim_engine = simulator_run(algorithm, workload, n_nodes=6)
        assert report.notification_digest == notification_digest(sim_engine), (
            algorithm
        )
