"""Tests for the expression AST: evaluation, substitution, folding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QueryError
from repro.sql.expr import (
    AttrRef,
    BinaryOp,
    Const,
    Negate,
    attributes_of,
    canonical_text,
    canonical_value,
    evaluate,
    is_single_attribute,
    relations_of,
    substitute,
)
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

R = Relation("R", ("A", "B"))


def r_tuple(a, b, pub=0.0):
    return DataTuple(R, (a, b), pub)


class TestAnalysis:
    def test_attributes_of_collects_refs(self):
        expr = BinaryOp("+", AttrRef("R", "A"), BinaryOp("*", Const(2), AttrRef("R", "B")))
        assert attributes_of(expr) == {AttrRef("R", "A"), AttrRef("R", "B")}

    def test_attributes_of_const_empty(self):
        assert attributes_of(Const(5)) == set()

    def test_relations_of(self):
        expr = BinaryOp("+", AttrRef("R", "A"), AttrRef("S", "B"))
        assert relations_of(expr) == {"R", "S"}

    def test_is_single_attribute(self):
        assert is_single_attribute(AttrRef("R", "A"))
        assert not is_single_attribute(Const(1))
        assert not is_single_attribute(BinaryOp("+", AttrRef("R", "A"), Const(1)))

    def test_negate_traversal(self):
        assert attributes_of(Negate(AttrRef("R", "A"))) == {AttrRef("R", "A")}

    def test_invalid_operator_rejected(self):
        with pytest.raises(QueryError):
            BinaryOp("%", Const(1), Const(2))


class TestEvaluate:
    def test_arithmetic(self):
        expr = BinaryOp(
            "+",
            BinaryOp("*", Const(4), AttrRef("R", "A")),
            BinaryOp("-", AttrRef("R", "B"), Const(1)),
        )
        assert evaluate(expr, r_tuple(2, 10)) == 8 + 9

    def test_division(self):
        expr = BinaryOp("/", AttrRef("R", "A"), Const(2))
        assert evaluate(expr, r_tuple(6, 0)) == 3.0

    def test_negate(self):
        assert evaluate(Negate(AttrRef("R", "A")), r_tuple(5, 0)) == -5

    def test_string_concatenation(self):
        expr = BinaryOp("+", AttrRef("R", "A"), Const("!"))
        assert evaluate(expr, r_tuple("hi", 0)) == "hi!"

    def test_type_error_wrapped(self):
        expr = BinaryOp("+", AttrRef("R", "A"), Const(1))
        with pytest.raises(QueryError):
            evaluate(expr, r_tuple("text", 0))

    def test_non_expression_rejected(self):
        with pytest.raises(QueryError):
            evaluate("not an expr", r_tuple(1, 2))


class TestSubstitute:
    def test_replaces_matching_relation(self):
        expr = BinaryOp("+", AttrRef("R", "A"), AttrRef("S", "X"))
        result = substitute(expr, "R", r_tuple(3, 0))
        assert result == BinaryOp("+", Const(3), AttrRef("S", "X"))

    def test_full_fold_to_const(self):
        expr = BinaryOp("*", AttrRef("R", "A"), AttrRef("R", "B"))
        assert substitute(expr, "R", r_tuple(3, 4)) == Const(12)

    def test_keeps_other_relation(self):
        expr = AttrRef("S", "X")
        assert substitute(expr, "R", r_tuple(1, 2)) == expr

    def test_negate_folds(self):
        assert substitute(Negate(AttrRef("R", "A")), "R", r_tuple(5, 0)) == Const(-5)

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_property_substitute_matches_evaluate(self, a, b):
        """Folding then evaluating equals evaluating directly."""
        expr = BinaryOp(
            "-",
            BinaryOp("*", Const(3), AttrRef("R", "A")),
            BinaryOp("+", AttrRef("R", "B"), Const(7)),
        )
        tup = r_tuple(a, b)
        folded = substitute(expr, "R", tup)
        assert isinstance(folded, Const)
        assert folded.value == evaluate(expr, tup)


class TestCanonical:
    def test_canonical_text_deterministic(self):
        expr = BinaryOp("+", AttrRef("R", "A"), Const(1))
        assert canonical_text(expr) == "(R.A + 1)"

    def test_canonical_value_integral_float(self):
        assert canonical_value(4.0) == 4
        assert isinstance(canonical_value(4.0), int)

    def test_canonical_value_fractional_float_kept(self):
        assert canonical_value(4.5) == 4.5

    def test_canonical_value_int_passthrough(self):
        assert canonical_value(7) == 7

    def test_canonical_value_string_passthrough(self):
        assert canonical_value("x") == "x"

    def test_canonical_value_bool_to_int(self):
        assert canonical_value(True) == 1 and repr(canonical_value(True)) == "1"

    @given(st.integers(-1000, 1000))
    def test_property_equal_values_equal_reprs(self, n):
        assert repr(canonical_value(float(n))) == repr(canonical_value(n))
