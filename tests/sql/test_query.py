"""Tests for query objects, rewriting and rewritten-query semantics."""

import pytest

from repro.errors import QueryError
from repro.sql.expr import AttrRef, BinaryOp, Const
from repro.sql.parser import parse_query
from repro.sql.query import (
    LEFT,
    RIGHT,
    BoundValue,
    JoinQuery,
    LocalFilter,
    PendingAttr,
    QuerySide,
    Subscriber,
    rewrite,
)
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

R = Relation("R", ("A", "B", "C"))
S = Relation("S", ("D", "E", "F"))
SUB = Subscriber("n1", 42, "10.0.0.1")


def simple_query(**kwargs):
    query = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
    return query.with_subscription(
        kwargs.get("key", "n1#0"), kwargs.get("insertion_time", 1.0), SUB
    )


def r_tuple(a, b, c, pub=5.0):
    return DataTuple(R, (a, b, c), pub)


def s_tuple(d, e, f, pub=5.0):
    return DataTuple(S, (d, e, f), pub)


class TestQuerySide:
    def test_rejects_foreign_relation_in_expr(self):
        with pytest.raises(QueryError):
            QuerySide("R", AttrRef("S", "D"))

    def test_rejects_constant_expr(self):
        with pytest.raises(QueryError):
            QuerySide("R", Const(1))

    def test_join_attributes_sorted(self):
        side = QuerySide("R", BinaryOp("+", AttrRef("R", "C"), AttrRef("R", "A")))
        assert side.join_attributes == ("A", "C")

    def test_single_attribute(self):
        assert QuerySide("R", AttrRef("R", "B")).single_attribute == "B"
        assert QuerySide("R", BinaryOp("+", AttrRef("R", "B"), Const(1))).single_attribute is None

    def test_accepts_checks_filters(self):
        side = QuerySide("R", AttrRef("R", "B"), (LocalFilter("C", 9),))
        assert side.accepts(r_tuple(1, 2, 9))
        assert not side.accepts(r_tuple(1, 2, 8))

    def test_signature_includes_filters(self):
        bare = QuerySide("R", AttrRef("R", "B"))
        filtered = QuerySide("R", AttrRef("R", "B"), (LocalFilter("C", 9),))
        assert bare.signature() != filtered.signature()


class TestJoinQuery:
    def test_type_classification(self):
        assert simple_query().query_type == "T1"
        # Linear single-attribute sides keep the unique-solution
        # property, so they are T1 too (paper Section 3.2).
        linear = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B + 1 = S.E")
        assert linear.query_type == "T1"
        t2 = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B + R.C = S.E")
        assert t2.query_type == "T2"

    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery(
                select=(AttrRef("R", "A"),),
                left=QuerySide("R", AttrRef("R", "A")),
                right=QuerySide("R", AttrRef("R", "B")),
            )

    def test_select_outside_from_rejected(self):
        with pytest.raises(QueryError):
            JoinQuery(
                select=(AttrRef("T", "X"),),
                left=QuerySide("R", AttrRef("R", "A")),
                right=QuerySide("S", AttrRef("S", "D")),
            )

    def test_side_access(self):
        query = simple_query()
        assert query.side(LEFT).relation == "R"
        assert query.side(RIGHT).relation == "S"
        assert query.other_label(LEFT) == RIGHT
        with pytest.raises(QueryError):
            query.side("middle")

    def test_side_for_relation(self):
        query = simple_query()
        assert query.side_for_relation("R") == LEFT
        assert query.side_for_relation("S") == RIGHT
        with pytest.raises(QueryError):
            query.side_for_relation("T")

    def test_index_attribute_t1(self):
        query = simple_query()
        assert query.index_attribute(LEFT) == "B"
        assert query.index_attribute(RIGHT) == "E"

    def test_index_attribute_t2_deterministic(self):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.C + R.B = S.E + S.F"
        )
        assert query.index_attribute(LEFT) == "B"  # first in sorted order
        assert query.index_attribute(RIGHT) == "E"

    def test_join_signature_groups_equivalent_queries(self):
        first = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        second = parse_query("SELECT R.C, S.F FROM R, S WHERE R.B = S.E")
        assert first.join_signature() == second.join_signature()

    def test_join_signature_distinguishes_conditions(self):
        first = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        second = parse_query("SELECT R.A, S.D FROM R, S WHERE R.C = S.E")
        assert first.join_signature() != second.join_signature()

    def test_with_subscription_binds(self):
        query = simple_query(key="k", insertion_time=3.0)
        assert query.key == "k"
        assert query.insertion_time == 3.0
        assert query.subscriber == SUB


class TestRewrite:
    def test_rewrite_left_trigger(self):
        query = simple_query()
        rewritten = rewrite(query, LEFT, r_tuple(10, 7, 0))
        assert rewritten.relation == "S"
        assert rewritten.dis_attribute == "E"
        assert rewritten.required_value == 7
        assert rewritten.select == (BoundValue(10), PendingAttr("D"))
        assert rewritten.trigger_pub_time == 5.0
        assert rewritten.original_key == query.key

    def test_rewrite_right_trigger(self):
        query = simple_query()
        rewritten = rewrite(query, RIGHT, s_tuple(20, 7, 0))
        assert rewritten.relation == "R"
        assert rewritten.dis_attribute == "B"
        assert rewritten.select == (PendingAttr("A"), BoundValue(20))

    def test_rewrite_wrong_relation_rejected(self):
        with pytest.raises(QueryError):
            rewrite(simple_query(), LEFT, s_tuple(1, 2, 3))

    def test_key_formula(self):
        """Key(q') = Key(q) + select values + valDA (Section 4.3.3)."""
        query = simple_query(key="Q")
        rewritten = rewrite(query, LEFT, r_tuple(10, 7, 0))
        assert rewritten.key == "Q+10+7"

    def test_keys_collide_for_equivalent_triggers(self):
        query = simple_query()
        first = rewrite(query, LEFT, r_tuple(10, 7, 0))
        second = rewrite(query, LEFT, r_tuple(10, 7, 99))  # differs only on C
        assert first.key == second.key

    def test_keys_differ_for_different_select_values(self):
        query = simple_query()
        first = rewrite(query, LEFT, r_tuple(10, 7, 0))
        second = rewrite(query, LEFT, r_tuple(11, 7, 0))
        assert first.key != second.key

    def test_keys_differ_for_different_join_values(self):
        query = simple_query()
        first = rewrite(query, LEFT, r_tuple(10, 7, 0))
        second = rewrite(query, LEFT, r_tuple(10, 8, 0))
        assert first.key != second.key

    def test_t2_value_computed(self):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE 4 * R.B + R.C + 8 = 5 * S.E + S.D - S.F"
        ).with_subscription("k", 0.0, SUB)
        rewritten = rewrite(query, LEFT, r_tuple(1, 4, 9))
        assert rewritten.required_value == 4 * 4 + 9 + 8
        assert rewritten.dis_attribute is None  # T2 side is an expression

    def test_division_value_canonicalized(self):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B / 2 = S.E"
        ).with_subscription("k", 0.0, SUB)
        rewritten = rewrite(query, LEFT, r_tuple(1, 8, 0))
        assert rewritten.required_value == 4
        assert isinstance(rewritten.required_value, int)


class TestRewrittenQueryMatching:
    def test_matches_checks_value(self):
        rewritten = rewrite(simple_query(), LEFT, r_tuple(10, 7, 0))
        assert rewritten.matches(s_tuple(1, 7, 0))
        assert not rewritten.matches(s_tuple(1, 8, 0))

    def test_matches_skip_value_check(self):
        rewritten = rewrite(simple_query(), LEFT, r_tuple(10, 7, 0))
        assert rewritten.matches(s_tuple(1, 8, 0), check_value=False)

    def test_matches_enforces_time_semantics(self):
        query = simple_query(insertion_time=10.0)
        rewritten = rewrite(query, LEFT, r_tuple(10, 7, 0, pub=11.0))
        assert not rewritten.matches(s_tuple(1, 7, 0, pub=9.0))
        assert rewritten.matches(s_tuple(1, 7, 0, pub=10.0))

    def test_matches_enforces_filters(self):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 1"
        ).with_subscription("k", 0.0, SUB)
        rewritten = rewrite(query, LEFT, r_tuple(10, 7, 0))
        assert rewritten.matches(s_tuple(1, 7, 1))
        assert not rewritten.matches(s_tuple(1, 7, 2))

    def test_result_row_combines_bound_and_pending(self):
        rewritten = rewrite(simple_query(), LEFT, r_tuple(10, 7, 0))
        assert rewritten.result_row(s_tuple(33, 7, 0)) == (10, 33)

    def test_needed_attributes(self):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 1"
        ).with_subscription("k", 0.0, SUB)
        rewritten = rewrite(query, LEFT, r_tuple(10, 7, 0))
        assert rewritten.needed_attributes == ("D", "E", "F")
