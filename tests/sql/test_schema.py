"""Tests for relations and schemas."""

import pytest

from repro.errors import SchemaError
from repro.sql.schema import Relation, Schema, example_elearning_schema


class TestRelation:
    def test_basic(self):
        relation = Relation("R", ("A", "B"))
        assert relation.arity == 2
        assert relation.has_attribute("A")
        assert not relation.has_attribute("Z")

    def test_index_of(self):
        relation = Relation("R", ("A", "B"))
        assert relation.index_of("B") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A",)).index_of("B")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "A"))

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ())

    def test_invalid_names_rejected(self):
        with pytest.raises(SchemaError):
            Relation("9R", ("A",))
        with pytest.raises(SchemaError):
            Relation("R", ("has space",))
        with pytest.raises(SchemaError):
            Relation("", ("A",))

    def test_str(self):
        assert str(Relation("R", ("A", "B"))) == "R(A, B)"

    def test_underscore_names_allowed(self):
        relation = Relation("my_rel", ("attr_1",))
        assert relation.has_attribute("attr_1")


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema()
        relation = schema.add(Relation("R", ("A",)))
        assert schema.relation("R") is relation
        assert "R" in schema

    def test_duplicate_relation_rejected(self):
        schema = Schema([Relation("R", ("A",))])
        with pytest.raises(SchemaError):
            schema.add(Relation("R", ("B",)))

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema().relation("missing")

    def test_from_dict(self):
        schema = Schema.from_dict({"R": ["A", "B"], "S": ["C"]})
        assert len(schema) == 2
        assert schema.relation("S").attributes == ("C",)

    def test_names_preserve_order(self):
        schema = Schema.from_dict({"Z": ["A"], "A": ["B"]})
        assert schema.names == ["Z", "A"]

    def test_iteration(self):
        schema = Schema.from_dict({"R": ["A"], "S": ["B"]})
        assert [relation.name for relation in schema] == ["R", "S"]

    def test_example_elearning_schema(self):
        schema = example_elearning_schema()
        assert schema.relation("Document").has_attribute("AuthorId")
        assert schema.relation("Authors").has_attribute("Surname")
