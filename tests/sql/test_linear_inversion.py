"""Tests for the extended-T1 linear inversion (DESIGN.md extension).

The paper's T1 criterion is "single attribute per side AND unique
solution"; ``linear_form`` detects exactly the sides of the shape
``a * X + b`` (``a != 0``) and ``solve_for_attribute`` inverts them so
SAI/DAI-Q/DAI-T can compute ``valDA`` for expressions, not just bare
attributes.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QueryError
from repro.sql.expr import AttrRef, BinaryOp, Const, Negate, evaluate, linear_form
from repro.sql.query import QuerySide
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

R = Relation("R", ("A", "B"))
B = AttrRef("R", "B")


class TestLinearForm:
    def test_bare_attribute(self):
        assert linear_form(B) == (B, 1, 0)

    def test_scaled(self):
        assert linear_form(BinaryOp("*", Const(3), B)) == (B, 3, 0)
        assert linear_form(BinaryOp("*", B, Const(3))) == (B, 3, 0)

    def test_affine(self):
        expr = BinaryOp("+", BinaryOp("*", Const(2), B), Const(5))
        assert linear_form(expr) == (B, 2, 5)

    def test_subtraction(self):
        expr = BinaryOp("-", Const(10), B)
        assert linear_form(expr) == (B, -1, 10)

    def test_negation(self):
        assert linear_form(Negate(B)) == (B, -1, 0)

    def test_division_by_constant(self):
        expr = BinaryOp("/", B, Const(4))
        attr, a, b = linear_form(expr)
        assert (attr, a, b) == (B, 0.25, 0)

    def test_nested_parenthesized(self):
        # (B + 1) * 2 == 2B + 2
        expr = BinaryOp("*", BinaryOp("+", B, Const(1)), Const(2))
        assert linear_form(expr) == (B, 2, 2)

    def test_cancelling_attribute_rejected(self):
        # B - B == 0: coefficient collapses to zero -> not invertible.
        expr = BinaryOp("-", B, B)
        assert linear_form(expr) is None

    def test_two_attributes_rejected(self):
        expr = BinaryOp("+", B, AttrRef("R", "A"))
        assert linear_form(expr) is None

    def test_quadratic_rejected(self):
        assert linear_form(BinaryOp("*", B, B)) is None

    def test_division_by_attribute_rejected(self):
        assert linear_form(BinaryOp("/", Const(1), B)) is None

    def test_division_by_zero_rejected(self):
        assert linear_form(BinaryOp("/", B, Const(0))) is None

    def test_constant_rejected(self):
        assert linear_form(Const(5)) is None

    def test_string_constant_rejected(self):
        assert linear_form(BinaryOp("+", B, Const("suffix"))) is None

    @given(
        a=st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
        b=st.integers(min_value=-10, max_value=10),
        x=st.integers(min_value=-100, max_value=100),
    )
    def test_property_form_matches_evaluation(self, a, b, x):
        expr = BinaryOp("+", BinaryOp("*", Const(a), B), Const(b))
        attr, got_a, got_b = linear_form(expr)
        tup = DataTuple(R, (0, x))
        assert got_a * x + got_b == evaluate(expr, tup)


class TestSolveForAttribute:
    def test_identity(self):
        side = QuerySide("R", B)
        assert side.solve_for_attribute(7) == 7

    def test_identity_string_domain(self):
        side = QuerySide("R", B)
        assert side.solve_for_attribute("Smith") == "Smith"

    def test_affine(self):
        side = QuerySide("R", BinaryOp("+", BinaryOp("*", Const(2), B), Const(5)))
        assert side.solve_for_attribute(11) == 3  # 2*3 + 5 == 11

    def test_result_canonicalized(self):
        side = QuerySide("R", BinaryOp("*", Const(2), B))
        solved = side.solve_for_attribute(8)
        assert solved == 4 and isinstance(solved, int)

    def test_fractional_solution_kept(self):
        side = QuerySide("R", BinaryOp("*", Const(2), B))
        assert side.solve_for_attribute(7) == 3.5

    def test_non_invertible_rejected(self):
        side = QuerySide("R", BinaryOp("+", B, AttrRef("R", "A")))
        with pytest.raises(QueryError):
            side.solve_for_attribute(5)

    @given(
        a=st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
        b=st.integers(min_value=-10, max_value=10),
        x=st.integers(min_value=-50, max_value=50),
    )
    def test_property_solve_inverts_evaluate(self, a, b, x):
        expr = BinaryOp("+", BinaryOp("*", Const(a), B), Const(b))
        side = QuerySide("R", expr)
        value = evaluate(expr, DataTuple(R, (0, x)))
        assert side.solve_for_attribute(value) == x


class TestLinearT1EndToEnd:
    """Linear-expression queries run on all T1 algorithms."""

    SQL = "SELECT R.A, S.D FROM R, S WHERE 2 * R.B + 1 = S.E - 3"

    @pytest.mark.parametrize("algorithm", ["sai", "dai-q", "dai-t", "dai-v"])
    def test_linear_condition_matches(
        self, algorithm, engine_factory, two_relation_schema
    ):
        engine = engine_factory(algorithm=algorithm)
        R_rel = two_relation_schema.relation("R")
        S_rel = two_relation_schema.relation("S")
        query = engine.subscribe(
            engine.network.nodes[0], self.SQL, two_relation_schema
        )
        engine.clock.advance(1)
        # Left value: 2*3 + 1 = 7 -> S.E must be 10.
        engine.publish(engine.network.nodes[1], R_rel, {"A": 1, "B": 3, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S_rel, {"D": 2, "E": 10, "F": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[3], S_rel, {"D": 9, "E": 11, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    @pytest.mark.parametrize("algorithm", ["sai", "dai-q", "dai-t"])
    def test_reverse_arrival_order(self, algorithm, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm=algorithm)
        R_rel = two_relation_schema.relation("R")
        S_rel = two_relation_schema.relation("S")
        query = engine.subscribe(
            engine.network.nodes[0], self.SQL, two_relation_schema
        )
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S_rel, {"D": 2, "E": 10, "F": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R_rel, {"A": 1, "B": 3, "C": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_differential_with_linear_queries(self, two_relation_schema):
        import random

        from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig
        from repro.core.oracle import CentralizedOracle

        for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
            rng = random.Random(11)
            network = ChordNetwork.build(32)
            engine = ContinuousQueryEngine(
                network, EngineConfig(algorithm=algorithm, index_choice="random")
            )
            oracle = CentralizedOracle()
            R_rel = two_relation_schema.relation("R")
            S_rel = two_relation_schema.relation("S")
            keys = []
            for index in range(150):
                engine.clock.advance(1)
                origin = network.random_node(rng)
                if index % 25 == 0:
                    scale_factor = rng.randint(1, 3)
                    offset = rng.randrange(4)
                    sql = (
                        f"SELECT R.A, S.D FROM R, S "
                        f"WHERE {scale_factor} * R.B + {offset} = S.E"
                    )
                    query = engine.subscribe(origin, sql, two_relation_schema)
                    oracle.subscribe(query)
                    keys.append(query.key)
                elif rng.random() < 0.5:
                    tup = engine.publish(
                        origin, R_rel, {k: rng.randrange(6) for k in R_rel.attributes}
                    )
                    oracle.insert(tup)
                else:
                    tup = engine.publish(
                        origin, S_rel, {k: rng.randrange(14) for k in S_rel.attributes}
                    )
                    oracle.insert(tup)
            for key in keys:
                assert engine.delivered_rows(key) == oracle.rows_for(key), (
                    algorithm,
                    key,
                )
