"""Tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.expr import AttrRef, BinaryOp, Const
from repro.sql.parser import parse_query, tokenize
from repro.sql.query import LocalFilter
from repro.sql.schema import Schema


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ["A", "B", "C"], "S": ["D", "E", "F"]})


class TestTokenizer:
    def test_tokenizes_keywords_case_insensitively(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert [t.kind for t in tokens[:-1]] == ["keyword"] * 3

    def test_numbers(self):
        tokens = tokenize("12 3.5")
        assert [t.text for t in tokens[:-1]] == ["12", "3.5"]

    def test_strings(self):
        tokens = tokenize("'Smith'")
        assert tokens[0].kind == "string"

    def test_junk_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")

    def test_eof_token_appended(self):
        assert tokenize("x")[-1].kind == "eof"


class TestBasicQueries:
    def test_simple_t1(self, schema):
        query = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema)
        assert query.query_type == "T1"
        assert query.left.relation == "R"
        assert query.right.relation == "S"
        assert query.left.expr == AttrRef("R", "B")
        assert query.right.expr == AttrRef("S", "E")
        assert query.select == (AttrRef("R", "A"), AttrRef("S", "D"))

    def test_reversed_condition_oriented(self, schema):
        query = parse_query("SELECT R.A, S.D FROM R, S WHERE S.E = R.B", schema)
        assert query.left.expr == AttrRef("R", "B")
        assert query.right.expr == AttrRef("S", "E")

    def test_aliases(self):
        query = parse_query(
            "SELECT D.Title, A.Name FROM Document AS D, Authors AS A "
            "WHERE D.AuthorId = A.Id"
        )
        assert query.left.relation == "Document"
        assert query.select[0] == AttrRef("Document", "Title")

    def test_local_filter(self, schema):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 10", schema
        )
        assert query.right.filters == (LocalFilter("F", 10),)

    def test_filter_literal_on_left(self, schema):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND 10 = S.F", schema
        )
        assert query.right.filters == (LocalFilter("F", 10),)

    def test_string_filter(self):
        query = parse_query(
            "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A "
            "WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'"
        )
        assert query.right.filters == (LocalFilter("Surname", "Smith"),)

    def test_multiple_filters(self, schema):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S "
            "WHERE R.B = S.E AND S.F = 1 AND R.C = 2",
            schema,
        )
        assert query.right.filters == (LocalFilter("F", 1),)
        assert query.left.filters == (LocalFilter("C", 2),)


class TestT2Queries:
    def test_paper_example(self):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S "
            "WHERE 4 * R.B + R.C + 8 = 5 * S.E + S.D - S.F"
        )
        assert query.query_type == "T2"
        assert set(query.left.join_attributes) == {"B", "C"}
        assert set(query.right.join_attributes) == {"D", "E", "F"}

    def test_parenthesized_expression(self, schema):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE (R.B + 1) * 2 = S.E", schema
        )
        # Linear in a single attribute: unique solution, hence T1
        # (the paper's full T1 criterion).
        assert query.query_type == "T1"
        left = query.left.expr
        assert left == BinaryOp("*", BinaryOp("+", AttrRef("R", "B"), Const(1)), Const(2))

    def test_unary_minus(self, schema):
        query = parse_query("SELECT R.A, S.D FROM R, S WHERE -R.B = S.E", schema)
        assert query.query_type == "T1"  # still uniquely solvable

    def test_nonlinear_single_attribute_is_t2(self, schema):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B * R.B = S.E", schema
        )
        assert query.query_type == "T2"  # no unique solution

    def test_precedence(self, schema):
        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B + R.C * 2 = S.E", schema
        )
        expr = query.left.expr
        assert expr.op == "+"
        assert expr.right == BinaryOp("*", AttrRef("R", "C"), Const(2))


class TestErrors:
    def test_unknown_relation_with_schema(self, schema):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, X.D FROM R, X WHERE R.B = X.E", schema)

    def test_unknown_attribute_with_schema(self, schema):
        with pytest.raises(ParseError):
            parse_query("SELECT R.Z, S.D FROM R, S WHERE R.B = S.E", schema)

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A WHERE R.B = S.E")

    def test_one_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A FROM R WHERE R.B = 1")

    def test_three_relations_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, S.D FROM R, S, T WHERE R.B = S.E")

    def test_self_join_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, R.B FROM R, R WHERE R.A = R.B")

    def test_missing_join_condition(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = 1")

    def test_two_join_conditions_rejected(self):
        with pytest.raises(ParseError):
            parse_query(
                "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND R.C = S.F"
            )

    def test_mixed_relation_side_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, S.D FROM R, S WHERE R.B + S.D = S.E")

    def test_nonliteral_filter_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND R.A = R.C")

    def test_unknown_alias_in_select(self):
        with pytest.raises(ParseError):
            parse_query("SELECT X.A, S.D FROM R, S WHERE R.B = S.E")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E extra")

    def test_select_star_unsupported(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM R, S WHERE R.B = S.E")

    def test_constant_conjunct_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND 1 = 1")

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT D.A, D.B FROM R AS D, S AS D WHERE D.A = D.B")


class TestRoundTrips:
    def test_str_of_parsed_query_reparses(self, schema):
        text = "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 3"
        query = parse_query(text, schema)
        again = parse_query(str(query), schema)
        assert again.join_signature() == query.join_signature()
        assert again.select == query.select
