"""Tests for data tuples and projections."""

import pytest

from repro.errors import SchemaError
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple, ProjectedTuple

R = Relation("R", ("A", "B", "C"))


class TestDataTuple:
    def test_make_from_mapping(self):
        tup = DataTuple.make(R, {"A": 1, "B": 2, "C": 3}, pub_time=4.0)
        assert tup.values == (1, 2, 3)
        assert tup.pub_time == 4.0

    def test_make_order_independent(self):
        tup = DataTuple.make(R, {"C": 3, "A": 1, "B": 2})
        assert tup.value("A") == 1 and tup.value("C") == 3

    def test_make_missing_attribute_rejected(self):
        with pytest.raises(SchemaError):
            DataTuple.make(R, {"A": 1, "B": 2})

    def test_make_extra_attribute_rejected(self):
        with pytest.raises(SchemaError):
            DataTuple.make(R, {"A": 1, "B": 2, "C": 3, "D": 4})

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            DataTuple(R, (1, 2))

    def test_value_unknown_attribute(self):
        tup = DataTuple(R, (1, 2, 3))
        with pytest.raises(SchemaError):
            tup.value("Z")

    def test_as_dict(self):
        tup = DataTuple(R, (1, 2, 3))
        assert tup.as_dict() == {"A": 1, "B": 2, "C": 3}

    def test_str(self):
        assert str(DataTuple(R, (1, "x", 3))) == "R(1, 'x', 3)"

    def test_hashable(self):
        assert DataTuple(R, (1, 2, 3)) == DataTuple(R, (1, 2, 3))
        assert len({DataTuple(R, (1, 2, 3)), DataTuple(R, (1, 2, 3))}) == 1


class TestProjection:
    def test_project_subset(self):
        tup = DataTuple(R, (1, 2, 3), pub_time=9.0)
        projection = tup.project(("A", "C"))
        assert projection.value("A") == 1
        assert projection.value("C") == 3
        assert projection.pub_time == 9.0
        assert projection.relation_name == "R"

    def test_projection_lacks_dropped_attribute(self):
        projection = DataTuple(R, (1, 2, 3)).project(("A",))
        assert not projection.has("B")
        with pytest.raises(SchemaError):
            projection.value("B")

    def test_projection_as_dict(self):
        projection = DataTuple(R, (1, 2, 3)).project(("B",))
        assert projection.as_dict() == {"B": 2}

    def test_projection_hashable(self):
        a = DataTuple(R, (1, 2, 3)).project(("A",))
        b = DataTuple(R, (1, 2, 3)).project(("A",))
        assert a == b
        assert len({a, b}) == 1

    def test_projected_tuple_direct(self):
        projection = ProjectedTuple("S", (("X", 7),), pub_time=1.0)
        assert projection.value("X") == 7
        assert projection.has("X")
