"""Tests for circular identifier-space arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.chord.idspace import IdentifierSpace

SPACE = IdentifierSpace(8)  # ring of 256 identifiers
ident = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestBasics:
    def test_size(self):
        assert SPACE.size == 256

    def test_validate_accepts_in_range(self):
        assert SPACE.validate(0) == 0
        assert SPACE.validate(255) == 255

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SPACE.validate(256)
        with pytest.raises(ValueError):
            SPACE.validate(-1)

    def test_shift_wraps(self):
        assert SPACE.shift(250, 10) == 4

    def test_distance_simple(self):
        assert SPACE.distance(10, 20) == 10

    def test_distance_wraps(self):
        assert SPACE.distance(250, 5) == 11

    def test_distance_self_is_zero(self):
        assert SPACE.distance(42, 42) == 0


class TestIntervals:
    def test_open_interval_simple(self):
        assert SPACE.in_open(15, 10, 20)
        assert not SPACE.in_open(10, 10, 20)
        assert not SPACE.in_open(20, 10, 20)

    def test_open_interval_wrapping(self):
        assert SPACE.in_open(255, 250, 5)
        assert SPACE.in_open(2, 250, 5)
        assert not SPACE.in_open(100, 250, 5)

    def test_open_degenerate_covers_all_but_point(self):
        assert SPACE.in_open(1, 7, 7)
        assert not SPACE.in_open(7, 7, 7)

    def test_half_open_includes_high(self):
        assert SPACE.in_half_open(20, 10, 20)
        assert not SPACE.in_half_open(10, 10, 20)

    def test_half_open_wrapping(self):
        assert SPACE.in_half_open(5, 250, 5)
        assert SPACE.in_half_open(0, 250, 5)
        assert not SPACE.in_half_open(250, 250, 5)

    def test_half_open_degenerate_is_full_ring(self):
        # A single node owns the whole ring.
        assert SPACE.in_half_open(123, 9, 9)
        assert SPACE.in_half_open(9, 9, 9)

    def test_closed_open_includes_low(self):
        assert SPACE.in_closed_open(10, 10, 20)
        assert not SPACE.in_closed_open(20, 10, 20)

    @given(ident, ident, ident)
    def test_property_half_open_partitions_ring(self, x, low, high):
        """(low, high] and (high, low] partition the ring (minus nothing)."""
        if low == high:
            return
        in_first = SPACE.in_half_open(x, low, high)
        in_second = SPACE.in_half_open(x, high, low)
        assert in_first != in_second

    @given(ident, ident, ident)
    def test_property_open_subset_of_half_open(self, x, low, high):
        if SPACE.in_open(x, low, high):
            assert SPACE.in_half_open(x, low, high)


class TestSortClockwise:
    def test_orders_from_start(self):
        assert SPACE.sort_clockwise(100, [50, 150, 200]) == [150, 200, 50]

    def test_start_itself_first(self):
        assert SPACE.sort_clockwise(100, [100, 99]) == [100, 99]

    def test_empty(self):
        assert SPACE.sort_clockwise(0, []) == []

    @given(ident, st.lists(ident, max_size=12))
    def test_property_distances_monotone(self, start, idents):
        ordered = SPACE.sort_clockwise(start, idents)
        distances = [SPACE.distance(start, i) for i in ordered]
        assert distances == sorted(distances)
        assert sorted(ordered) == sorted(idents)
