"""Property-based differential check: RingSnapshot ≡ the object ring.

The large-scale fast path (DESIGN.md §14) rests on one claim: bisect
arithmetic over the sorted identifier array reproduces the object
ring's routing *exactly* — same successor, same forwarding choice at
every node, same hop counts.  Hypothesis drives random memberships,
wrap-around targets and join/leave edits through both implementations
side by side; any divergence is a routing bug, not a tolerance issue.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.chord.network import ChordNetwork
from repro.chord.snapshot import RingSnapshot

#: Cached exact rings per size: examples only ever *read* them, and
#: building the ring (not checking it) dominates each example.
_RINGS: dict[int, ChordNetwork] = {}


def ring_of(n_nodes: int) -> ChordNetwork:
    network = _RINGS.get(n_nodes)
    if network is None:
        network = ChordNetwork.build(n_nodes)
        network.enable_fast_routing()
        _RINGS[n_nodes] = network
    return network


def snapshot_of(network: ChordNetwork) -> RingSnapshot:
    snapshot = network.ring_snapshot()
    assert snapshot is not None
    return snapshot


@st.composite
def ring_and_targets(draw):
    """A ring size plus targets biased toward ownership boundaries."""
    n_nodes = draw(st.integers(min_value=1, max_value=24))
    network = ring_of(n_nodes)
    idents = snapshot_of(network).idents
    size = network.space.size
    boundary = st.builds(
        lambda ident, offset: (ident + offset) % size,
        st.sampled_from(idents),
        st.integers(min_value=-2, max_value=2),
    )
    anywhere = st.integers(min_value=0, max_value=size - 1)
    targets = draw(
        st.lists(st.one_of(boundary, anywhere), min_size=1, max_size=8)
    )
    source = idents[draw(st.integers(min_value=0, max_value=n_nodes - 1))]
    return n_nodes, source, targets


@settings(max_examples=200, deadline=None)
@given(ring_and_targets())
def test_successor_matches_global_oracle(case):
    n_nodes, _, targets = case
    network = ring_of(n_nodes)
    snapshot = snapshot_of(network)
    for target in targets:
        expected = network._oracle_successor(target).ident
        assert snapshot.successor_ident(target) == expected
        assert snapshot.idents[snapshot.owner_pos(target)] == expected
        assert snapshot.owns(snapshot.position(expected), target)


@settings(max_examples=200, deadline=None)
@given(ring_and_targets())
def test_closest_preceding_finger_matches_object_scan(case):
    n_nodes, source, targets = case
    network = ring_of(n_nodes)
    snapshot = snapshot_of(network)
    node = network._nodes[source]
    pos = snapshot.position(source)
    for target in targets:
        expected = node.closest_preceding_finger(target).ident
        got = snapshot.idents[snapshot.closest_preceding_finger_pos(pos, target)]
        assert got == expected, (
            f"cpf({source}, {target}) diverged: snapshot {got}, object {expected}"
        )


@settings(max_examples=200, deadline=None)
@given(ring_and_targets())
def test_find_successor_and_walk_match_hop_for_hop(case):
    n_nodes, source, targets = case
    network = ring_of(n_nodes)
    snapshot = snapshot_of(network)
    router = network.router
    node = network._nodes[source]
    # Disable the snapshot shortcut so the router runs the object walk.
    network.fast_routing = False
    try:
        for target in targets:
            expected_node, expected_hops = router.find_successor(node, target)
            got_pos, got_hops = snapshot.find_successor(source, target)
            assert snapshot.idents[got_pos] == expected_node.ident
            assert got_hops == expected_hops
            walk_node, walk_hops = router._walk(node, target)
            got_pos, got_hops = snapshot.walk(source, target)
            assert snapshot.idents[got_pos] == walk_node.ident
            assert got_hops == walk_hops
    finally:
        network.fast_routing = True


@settings(max_examples=100, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_membership_edits_match_full_rebuild(n_nodes, seed):
    """`with_member`/`without_member` ≡ snapshot of the edited ring."""
    network = ring_of(n_nodes)
    snapshot = snapshot_of(network)
    rng = random.Random(seed)

    leaver = rng.choice(snapshot.idents)
    shrunk = snapshot.without_member(leaver)
    rebuilt = RingSnapshot(
        [ident for ident in snapshot.idents if ident != leaver],
        snapshot.m,
        snapshot.successor_list_size,
    )
    assert shrunk.idents == rebuilt.idents
    probe = rng.randrange(snapshot.size)
    assert shrunk.successor_ident(probe) == rebuilt.successor_ident(probe)
    start = rng.choice(rebuilt.idents)
    assert shrunk.find_successor(start, probe) == rebuilt.find_successor(start, probe)

    joiner = rng.randrange(snapshot.size)
    if joiner not in snapshot:
        grown = snapshot.with_member(joiner)
        rebuilt = RingSnapshot(
            sorted(snapshot.idents + [joiner]),
            snapshot.m,
            snapshot.successor_list_size,
        )
        assert grown.idents == rebuilt.idents
        assert grown.successor_ident(probe) == rebuilt.successor_ident(probe)
        assert grown.find_successor(joiner, probe) == rebuilt.find_successor(
            joiner, probe
        )
