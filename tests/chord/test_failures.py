"""Overlay failure edge cases beyond simple scattered crashes.

Complements ``test_network.py``'s ``TestFailures`` with the scenarios a
fault-injection run can actually produce: the ring shrinking to
nothing, a crash burst wider than a successor list, and a voluntary
departure immediately followed by the failure of the node that absorbed
its keys.
"""

import pytest

from repro import ChordNetwork
from repro.errors import NetworkError


class TestLastNodeFailure:
    def test_fail_last_remaining_node_empties_network(self):
        network = ChordNetwork.build(1)
        only = network.nodes[0]
        network.fail(only)
        assert not only.alive
        assert len(network) == 0

    def test_empty_network_rejects_lookups(self):
        network = ChordNetwork.build(1)
        network.fail(network.nodes[0])
        with pytest.raises(NetworkError):
            network.responsible_node(0)

    def test_join_after_total_loss_restarts_the_ring(self):
        network = ChordNetwork.build(1)
        network.fail(network.nodes[0])
        reborn = network.join("phoenix")
        assert len(network) == 1
        assert reborn.successor is reborn
        assert reborn.owns(0) and reborn.owns(network.space.size - 1)

    def test_shrink_to_one_by_failures(self):
        network = ChordNetwork.build(5)
        survivor = network.nodes[0]
        for node in network.nodes[1:]:
            network.fail(node)
        network.run_stabilization(3, fix_all_fingers=True)
        assert len(network) == 1
        assert survivor.owns(survivor.ident)


class TestSuccessorListWipeout:
    """A crash burst killing a node's *entire* successor list."""

    def test_ring_recovers_via_finger_fallback(self):
        network = ChordNetwork.build(64)
        node = network.nodes[10]
        victims = list(node.successor_list)
        assert len(victims) == node.successor_list_size
        for victim in victims:
            network.fail(victim)
        assert node.successor is node  # the list is momentarily useless
        network.run_stabilization(6, fix_all_fingers=True)
        assert network.ring_is_consistent()

    def test_lookups_correct_after_recovery(self, rng):
        network = ChordNetwork.build(64)
        node = network.nodes[10]
        for victim in list(node.successor_list):
            network.fail(victim)
        network.run_stabilization(6, fix_all_fingers=True)
        for _ in range(50):
            ident = rng.randrange(network.space.size)
            found, _ = network.router.find_successor(node, ident)
            assert found is network.responsible_node(ident)

    def test_two_node_ring_survives_one_failure(self):
        network = ChordNetwork.build(2)
        survivor, victim = network.nodes
        network.fail(victim)
        network.run_stabilization(3, fix_all_fingers=True)
        assert survivor.successor is survivor
        assert survivor.owns(victim.ident)


class TestLeaveThenFailSuccessor:
    """``leave()`` hands keys to the successor — which then crashes."""

    def test_ring_stays_consistent(self):
        network = ChordNetwork.build(32)
        leaver = network.nodes[5]
        heir = leaver.successor
        network.leave(leaver)
        network.fail(heir)
        network.run_stabilization(5, fix_all_fingers=True)
        assert network.ring_is_consistent()

    def test_transferred_keys_are_lost_with_the_heir(self):
        """Keys moved by the voluntary leave die with the failed heir —
        the best-effort semantics the soft-state recovery layer exists
        to paper over."""
        network = ChordNetwork.build(32)
        moved: list[tuple[int, int]] = []
        network.transfer_hook = lambda src, dst: moved.append((src.ident, dst.ident))
        leaver = network.nodes[5]
        heir = leaver.successor
        network.leave(leaver)
        assert moved == [(leaver.ident, heir.ident)]
        network.fail(heir)
        network.run_stabilization(5, fix_all_fingers=True)
        new_owner = network.responsible_node(leaver.ident)
        assert new_owner is not heir and new_owner.alive

    def test_lookup_of_departed_range_lands_on_live_node(self, rng):
        network = ChordNetwork.build(32)
        leaver = network.nodes[5]
        departed_ident = leaver.ident
        heir = leaver.successor
        network.leave(leaver)
        network.fail(heir)
        network.run_stabilization(5, fix_all_fingers=True)
        found, _ = network.router.find_successor(
            network.random_node(rng), departed_ident
        )
        assert found.alive
        assert found is network.responsible_node(departed_ident)
