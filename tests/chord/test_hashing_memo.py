"""Regression tests for the memoized hashing layers.

The optimization pass memoizes ``hash_key`` (full SHA-1 digests) and
``ConsistentHash.hash_parts`` (per-instance parts→identifier).  These
tests pin the two guarantees the rest of the system relies on: the
memoized values are *byte-identical* to a fresh SHA-1 computation, and
both caches stay bounded no matter how many distinct keys flow through.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.chord import hashing
from repro.chord.hashing import (
    ConsistentHash,
    hash_key,
    hash_key_cache_clear,
    hash_key_cache_info,
    make_key,
)

KEYS = ["R|B|7", "Documents|AuthorId|42", "", "unicode-κλειδί", "R|B|8"] + [
    f"R|A|{i}" for i in range(50)
]


def _fresh_sha1(key: str) -> int:
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest(), "big")


def test_hash_key_matches_fresh_sha1_on_hit_and_miss():
    hash_key_cache_clear()
    for key in KEYS:
        assert hash_key(key) == _fresh_sha1(key)  # miss path
    for key in KEYS:
        assert hash_key(key) == _fresh_sha1(key)  # hit path
    info = hash_key_cache_info()
    assert info.hits >= len(KEYS)


def test_hash_key_cache_is_bounded():
    assert hash_key_cache_info().maxsize == hashing.HASH_CACHE_SIZE


def test_hash_parts_equals_hash_of_make_key():
    h = ConsistentHash(m=32)
    cases = [("R", "B", 7), ("R", "B", "7"), (13,), ("", ""), ("R", "A", -1.5)]
    for parts in cases:
        expected = hash_key(make_key(*parts)) % h.modulus
        assert h.hash_parts(*parts) == expected  # miss
        assert h.hash_parts(*parts) == expected  # hit


def test_hash_parts_single_part_equals_str_hash():
    # DAI-V relies on make_key(v) == str(v) for one part, so the keyed
    # and non-keyed evaluator identifiers stay on the same ring.
    h = ConsistentHash(m=32)
    assert h.hash_parts(1234) == h(str(1234))


def test_hash_parts_cache_is_bounded(monkeypatch):
    monkeypatch.setattr(hashing, "HASH_CACHE_SIZE", 4)
    h = ConsistentHash(m=32)
    values = [h.hash_parts("R", "B", i) for i in range(20)]
    assert len(h._parts_cache) <= 4
    # Overflowing keys are still computed correctly, just not stored.
    assert values == [hash_key(make_key("R", "B", i)) % h.modulus for i in range(20)]


def test_distinct_instances_do_not_share_parts_caches():
    a, b = ConsistentHash(m=16), ConsistentHash(m=32)
    ident_a = a.hash_parts("R", "B", 7)
    ident_b = b.hash_parts("R", "B", 7)
    assert ident_a == ident_b % a.modulus
    assert a._parts_cache is not b._parts_cache


def test_hash_parts_separator_prevents_ambiguity():
    h = ConsistentHash(m=32)
    assert h.hash_parts("RA", "B") != h.hash_parts("R", "AB")
