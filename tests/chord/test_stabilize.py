"""Unit tests for the stabilize/notify/fix-finger maintenance protocol."""

from repro.chord import ChordNetwork
from repro.chord.idspace import IdentifierSpace
from repro.chord.node import ChordNode
from repro.chord import stabilize as maintenance


def node(ident, space=None):
    return ChordNode(f"k{ident}", ident, space or IdentifierSpace(8))


class TestNotify:
    def test_adopts_first_predecessor(self):
        space = IdentifierSpace(8)
        a, b = node(10, space), node(20, space)
        maintenance.notify(b, a)
        assert b.predecessor is a

    def test_adopts_closer_predecessor(self):
        space = IdentifierSpace(8)
        a, between, b = node(10, space), node(15, space), node(20, space)
        b.predecessor = a
        maintenance.notify(b, between)
        assert b.predecessor is between

    def test_keeps_closer_existing_predecessor(self):
        space = IdentifierSpace(8)
        a, between, b = node(10, space), node(15, space), node(20, space)
        b.predecessor = between
        maintenance.notify(b, a)
        assert b.predecessor is between

    def test_ignores_dead_candidate(self):
        space = IdentifierSpace(8)
        a, b = node(10, space), node(20, space)
        a.alive = False
        maintenance.notify(b, a)
        assert b.predecessor is None

    def test_ignores_self(self):
        a = node(10)
        maintenance.notify(a, a)
        assert a.predecessor is None

    def test_replaces_dead_predecessor(self):
        space = IdentifierSpace(8)
        dead, fresh, b = node(12, space), node(11, space), node(20, space)
        dead.alive = False
        b.predecessor = dead
        maintenance.notify(b, fresh)
        assert b.predecessor is fresh


class TestCheckPredecessor:
    def test_clears_dead_predecessor(self):
        a, b = node(1), node(2)
        b.predecessor = a
        a.alive = False
        maintenance.check_predecessor(b)
        assert b.predecessor is None

    def test_keeps_live_predecessor(self):
        a, b = node(1), node(2)
        b.predecessor = a
        maintenance.check_predecessor(b)
        assert b.predecessor is a


class TestStabilize:
    def test_discovers_interposed_node(self):
        space = IdentifierSpace(8)
        a, mid, b = node(10, space), node(15, space), node(20, space)
        a.set_successor(b)
        mid.set_successor(b)
        b.predecessor = mid  # mid joined between a and b
        maintenance.stabilize(a)
        assert a.successor is mid
        assert mid.predecessor is a

    def test_notifies_successor(self):
        space = IdentifierSpace(8)
        a, b = node(10, space), node(20, space)
        a.set_successor(b)
        maintenance.stabilize(a)
        assert b.predecessor is a

    def test_noop_when_alone(self):
        a = node(1)
        maintenance.stabilize(a)  # must not raise
        assert a.successor is a


class TestFixFingers:
    def test_fix_finger_updates_entry(self):
        network = ChordNetwork.build(16)
        target = network.nodes[0]
        target.fingers = [None] * network.space.m
        target.set_successor(network.nodes[1])
        for j in range(network.space.m):
            maintenance.fix_finger(target, j, network.router)
        for j in range(network.space.m):
            expected = network.responsible_node(target.finger_start(j))
            assert target.fingers[j] is expected

    def test_fix_next_finger_round_robin(self):
        network = ChordNetwork.build(8)
        target = network.nodes[0]
        # m calls must refresh every entry exactly once.
        target.fingers = [None] * network.space.m
        target.set_successor(network.nodes[1])
        for _ in range(network.space.m):
            maintenance.fix_next_finger(target, network.router)
        assert all(entry is not None for entry in target.fingers)
