"""Tests for consistent hashing and key construction."""

import pytest
from hypothesis import given, strategies as st

from repro.chord.hashing import DEFAULT_M, SHA1_BITS, ConsistentHash, make_key
from repro.errors import ReproError


class TestMakeKey:
    def test_concatenates_with_separator(self):
        assert make_key("R", "B", 7) == "R|B|7"

    def test_numeric_values_become_strings(self):
        assert make_key("R", "B", 3.5) == "R|B|3.5"

    def test_single_part(self):
        assert make_key("25") == "25"

    def test_disambiguates_concatenation(self):
        # Plain concatenation would make these collide.
        assert make_key("RA", "B") != make_key("R", "AB")


class TestConsistentHash:
    def test_deterministic(self):
        h = ConsistentHash()
        assert h("hello") == h("hello")

    def test_same_m_same_function(self):
        assert ConsistentHash(32)("x") == ConsistentHash(32)("x")

    def test_different_m_truncates_differently(self):
        full = ConsistentHash(SHA1_BITS)("x")
        small = ConsistentHash(16)("x")
        assert small == full % (1 << 16)

    def test_range(self):
        h = ConsistentHash(12)
        for key in ("a", "b", "R|B|7", ""):
            assert 0 <= h(key) < 4096

    def test_hash_parts_matches_make_key(self):
        h = ConsistentHash()
        assert h.hash_parts("R", "B", 7) == h(make_key("R", "B", 7))

    def test_rejects_tiny_m(self):
        with pytest.raises(ValueError):
            ConsistentHash(4)

    def test_rejects_huge_m(self):
        with pytest.raises(ValueError):
            ConsistentHash(SHA1_BITS + 1)

    def test_equality_and_hash(self):
        assert ConsistentHash(32) == ConsistentHash(32)
        assert ConsistentHash(32) != ConsistentHash(16)
        assert hash(ConsistentHash(32)) == hash(ConsistentHash(32))

    def test_default_m(self):
        assert ConsistentHash().m == DEFAULT_M

    @given(st.text(max_size=50), st.integers(min_value=8, max_value=64))
    def test_property_in_range(self, key, m):
        h = ConsistentHash(m)
        assert 0 <= h(key) < (1 << m)

    @given(st.lists(st.text(alphabet="abcXYZ019", max_size=8), min_size=1, max_size=4))
    def test_property_key_roundtrip_is_stable(self, parts):
        h = ConsistentHash()
        assert h.hash_parts(*parts) == h.hash_parts(*parts)

    def test_spread(self):
        """Hash values should not cluster pathologically."""
        h = ConsistentHash(16)
        values = {h(f"key-{i}") for i in range(1000)}
        # With 65536 slots and 1000 keys, expect nearly all distinct.
        assert len(values) > 950
