"""Hypothesis stateful testing of Chord under arbitrary churn.

A rule-based state machine performs random joins, voluntary leaves,
failures and stabilization rounds; invariants checked throughout:

* after stabilization, the ring is consistent with the oracle ordering;
* routed lookups from arbitrary nodes find the oracle-responsible node;
* key/value items survive joins and voluntary leaves (tracked through
  the transfer hook).
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.chord import ChordNetwork

MAX_NODES = 24
MIN_NODES = 3


class ChurningChord(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.network = None
        self.rng = random.Random(99)
        self.join_counter = 0
        #: item ident -> payload; payloads live on node.app dicts.
        self.items = {}

    # -- helpers --------------------------------------------------------
    def _place_items(self):
        """(Re)assert that every tracked item sits on its oracle owner."""
        for ident, payload in self.items.items():
            owner = self.network.responsible_node(ident)
            store = owner.app if isinstance(owner.app, dict) else {}
            assert store.get(ident) == payload, (
                f"item {ident} not at oracle owner {owner.ident}"
            )

    @staticmethod
    def _transfer(source, target):
        source_store = source.app if isinstance(source.app, dict) else {}
        target_store = target.app if isinstance(target.app, dict) else {}
        for ident in list(source_store):
            if target.owns(ident):
                target_store[ident] = source_store.pop(ident)
        source.app = source_store
        target.app = target_store

    # -- rules ------------------------------------------------------------
    @initialize(size=st.integers(min_value=MIN_NODES, max_value=10))
    def build(self, size):
        self.network = ChordNetwork.build(size)
        for node in self.network:
            node.app = {}
        self.network.transfer_hook = self._transfer

    @rule(data=st.integers(min_value=0, max_value=2**31))
    def store_item(self, data):
        ident = data % self.network.space.size
        owner = self.network.responsible_node(ident)
        store = owner.app if isinstance(owner.app, dict) else {}
        store[ident] = data
        owner.app = store
        self.items[ident] = data

    @precondition(lambda self: len(self.network) < MAX_NODES)
    @rule()
    def join(self):
        self.join_counter += 1
        node = self.network.join(f"churner-{self.join_counter}")
        if not isinstance(node.app, dict):
            node.app = {}
        self.network.run_stabilization(2, fix_all_fingers=True)

    @precondition(lambda self: len(self.network) > MIN_NODES)
    @rule()
    def leave(self):
        victim = self.network.random_node(self.rng)
        self.network.leave(victim)
        self.network.run_stabilization(2, fix_all_fingers=True)

    @precondition(lambda self: len(self.network) > MIN_NODES)
    @rule()
    def fail(self):
        victim = self.network.random_node(self.rng)
        # Items on a failed node are lost (best effort); stop tracking.
        if isinstance(victim.app, dict):
            for ident in victim.app:
                self.items.pop(ident, None)
        self.network.fail(victim)
        self.network.run_stabilization(3, fix_all_fingers=True)

    @rule()
    def stabilize(self):
        self.network.run_stabilization(1)

    # -- invariants -------------------------------------------------------
    @invariant()
    def ring_consistent(self):
        if self.network is None:
            return
        self.network.run_stabilization(1, fix_all_fingers=True)
        assert self.network.ring_is_consistent()

    @invariant()
    def lookups_correct(self):
        if self.network is None:
            return
        for _ in range(3):
            ident = self.rng.randrange(self.network.space.size)
            start = self.network.random_node(self.rng)
            found, hops = self.network.router.find_successor(start, ident)
            assert found is self.network.responsible_node(ident)
            assert hops <= self.network.router.max_hops

    @invariant()
    def items_at_owners(self):
        if self.network is None:
            return
        self._place_items()


ChurningChordTest = ChurningChord.TestCase
ChurningChordTest.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
