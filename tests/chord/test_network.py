"""Tests for ring construction, lookup correctness and churn."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chord import ChordNetwork
from repro.errors import NetworkError


class TestBuild:
    def test_builds_requested_size(self):
        assert len(ChordNetwork.build(17)) == 17

    def test_single_node_ring(self):
        network = ChordNetwork.build(1)
        node = network.nodes[0]
        assert node.successor is node
        assert node.owns(0) and node.owns(network.space.size - 1)

    def test_rejects_empty(self):
        with pytest.raises(NetworkError):
            ChordNetwork.build(0)

    def test_ring_is_consistent(self, small_network):
        assert small_network.ring_is_consistent()

    def test_nodes_sorted_by_identifier(self, small_network):
        idents = [node.ident for node in small_network.nodes]
        assert idents == sorted(idents)

    def test_successors_follow_ring_order(self, tiny_network):
        nodes = tiny_network.nodes
        for position, node in enumerate(nodes):
            assert node.successor is nodes[(position + 1) % len(nodes)]
            assert node.predecessor is nodes[(position - 1) % len(nodes)]

    def test_fingers_point_to_oracle_successors(self, tiny_network):
        for node in tiny_network.nodes:
            for j in range(tiny_network.space.m):
                expected = tiny_network.responsible_node(node.finger_start(j))
                assert node.fingers[j] is expected

    def test_identifier_collisions_resolved_by_salting(self):
        # Tiny identifier space forces collisions.
        network = ChordNetwork.build(200, m=8)
        assert len(network) == 200
        assert len({node.ident for node in network}) == 200


class TestResponsibility:
    def test_responsible_node_matches_half_open_interval(self, tiny_network):
        nodes = tiny_network.nodes
        for position, node in enumerate(nodes):
            predecessor = nodes[(position - 1) % len(nodes)]
            inside = (predecessor.ident + 1) % tiny_network.space.size
            assert tiny_network.responsible_node(inside) is node
            assert tiny_network.responsible_node(node.ident) is node

    def test_wraparound_key_owned_by_first_node(self, tiny_network):
        last = tiny_network.nodes[-1]
        first = tiny_network.nodes[0]
        key = (last.ident + 1) % tiny_network.space.size
        assert tiny_network.responsible_node(key) is first


class TestLookup:
    def test_routed_lookup_agrees_with_oracle(self, small_network, rng):
        for _ in range(300):
            ident = rng.randrange(small_network.space.size)
            start = small_network.random_node(rng)
            found, hops = small_network.router.find_successor(start, ident)
            assert found is small_network.responsible_node(ident)
            assert hops <= small_network.space.m

    def test_lookup_from_responsible_node_is_free(self, small_network):
        node = small_network.nodes[3]
        found, hops = small_network.router.find_successor(node, node.ident)
        assert found is node
        assert hops == 0

    def test_logarithmic_hops(self):
        """Mean lookup cost should be O(log N), far under N."""
        network = ChordNetwork.build(256)
        rng = random.Random(5)
        total = 0
        trials = 200
        for _ in range(trials):
            ident = rng.randrange(network.space.size)
            _, hops = network.router.find_successor(network.random_node(rng), ident)
            total += hops
        assert total / trials < 2 * 8  # 2 * log2(256)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 63))
    def test_property_lookup_correct(self, ident, start_index):
        network = _shared_network()
        start = network.nodes[start_index]
        found, _ = network.router.find_successor(start, ident % network.space.size)
        assert found is network.responsible_node(ident % network.space.size)


_NETWORK_CACHE = {}


def _shared_network():
    if "net" not in _NETWORK_CACHE:
        _NETWORK_CACHE["net"] = ChordNetwork.build(64)
    return _NETWORK_CACHE["net"]


class TestJoin:
    def test_join_grows_network(self, small_network):
        before = len(small_network)
        small_network.join("newcomer")
        assert len(small_network) == before + 1

    def test_join_converges_after_stabilization(self, small_network, rng):
        for index in range(5):
            small_network.join(f"late-{index}")
        small_network.run_stabilization(3, fix_all_fingers=True)
        assert small_network.ring_is_consistent()
        for _ in range(100):
            ident = rng.randrange(small_network.space.size)
            found, _ = small_network.router.find_successor(
                small_network.random_node(rng), ident
            )
            assert found is small_network.responsible_node(ident)

    def test_join_into_empty_network(self):
        network = ChordNetwork(m=16)
        node = network.join("first")
        assert node.successor is node
        assert node.owns(12345)

    def test_join_duplicate_key_salts(self, small_network):
        a = small_network.join("dup")
        b = small_network.join("dup")
        assert a.ident != b.ident


class TestLeave:
    def test_leave_shrinks_network(self, small_network):
        victim = small_network.nodes[5]
        small_network.leave(victim)
        assert len(small_network) == 63
        assert not victim.alive

    def test_leave_fixes_neighbours(self, tiny_network):
        nodes = tiny_network.nodes
        victim = nodes[3]
        tiny_network.leave(victim)
        assert nodes[2].successor is nodes[4]
        assert nodes[4].predecessor is nodes[2]

    def test_leave_unknown_node_raises(self, small_network):
        stranger = ChordNetwork.build(2).nodes[0]
        with pytest.raises(NetworkError):
            small_network.leave(stranger)

    def test_leave_last_node(self):
        network = ChordNetwork(m=16)
        node = network.join("only")
        network.leave(node)
        assert len(network) == 0

    def test_routing_correct_after_leaves(self, small_network, rng):
        for _ in range(8):
            small_network.leave(small_network.random_node(rng))
        small_network.run_stabilization(3, fix_all_fingers=True)
        for _ in range(100):
            ident = rng.randrange(small_network.space.size)
            found, _ = small_network.router.find_successor(
                small_network.random_node(rng), ident
            )
            assert found is small_network.responsible_node(ident)


class TestFailures:
    def test_failures_survived_via_successor_lists(self, small_network, rng):
        victims = {small_network.random_node(rng) for _ in range(6)}
        for victim in victims:
            small_network.fail(victim)
        small_network.run_stabilization(5, fix_all_fingers=True)
        assert small_network.ring_is_consistent()
        for _ in range(100):
            ident = rng.randrange(small_network.space.size)
            found, _ = small_network.router.find_successor(
                small_network.random_node(rng), ident
            )
            assert found is small_network.responsible_node(ident)

    def test_fail_marks_dead(self, small_network):
        victim = small_network.nodes[0]
        small_network.fail(victim)
        assert not victim.alive

    def test_mixed_churn(self, small_network, rng):
        """Interleaved joins/leaves/failures converge."""
        for round_index in range(4):
            small_network.join(f"j{round_index}")
            small_network.leave(small_network.random_node(rng))
            small_network.fail(small_network.random_node(rng))
            small_network.run_stabilization(3, fix_all_fingers=True)
        assert small_network.ring_is_consistent()


class TestTransferHook:
    def test_called_on_join_with_owner(self, tiny_network):
        calls = []
        tiny_network.transfer_hook = lambda src, dst: calls.append((src, dst))
        newcomer = tiny_network.join("x")
        assert len(calls) == 1
        source, target = calls[0]
        assert target is newcomer
        assert target.owns(target.ident)

    def test_called_on_leave_with_successor_owning_range(self, tiny_network):
        calls = []
        tiny_network.transfer_hook = lambda src, dst: calls.append((src, dst))
        victim = tiny_network.nodes[2]
        victim_ident = victim.ident
        tiny_network.leave(victim)
        (source, target), = calls
        assert source is victim
        assert target.owns(victim_ident)
