"""Tests for send/multisend routing (paper Section 2.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chord import ChordNetwork
from repro.errors import RoutingError
from repro.sim.messages import Message
from repro.chord.routing import multisend_cost


class Recorder:
    """Collects deliveries per node for assertions."""

    def __init__(self, network):
        self.received = []
        for node in network:
            node.register_handler(
                "message", lambda n, m: self.received.append((n.ident, m))
            )


class TestSend:
    def test_delivers_to_successor(self, small_network, rng):
        recorder = Recorder(small_network)
        for _ in range(50):
            ident = rng.randrange(small_network.space.size)
            source = small_network.random_node(rng)
            target = small_network.router.send(source, Message(), ident)
            assert target is small_network.responsible_node(ident)
        assert len(recorder.received) == 50

    def test_records_traffic(self, small_network, rng):
        Recorder(small_network)
        before = small_network.stats.messages
        small_network.router.send(small_network.random_node(rng), Message(), 12345)
        assert small_network.stats.messages == before + 1
        assert small_network.stats.messages_by_type["message"] >= 1

    def test_send_direct_costs_one_hop(self, small_network):
        Recorder(small_network)
        a, b = small_network.nodes[0], small_network.nodes[1]
        before = small_network.stats.hops
        small_network.router.send_direct(a, Message(), b)
        assert small_network.stats.hops == before + 1

    def test_send_direct_to_self_is_free(self, small_network):
        Recorder(small_network)
        node = small_network.nodes[0]
        before = small_network.stats.hops
        small_network.router.send_direct(node, Message(), node)
        assert small_network.stats.hops == before

    def test_lookup_accounts_hops_to_named_bucket(self, small_network, rng):
        small_network.router.lookup(
            small_network.random_node(rng), 999, account="rate-probe"
        )
        assert "rate-probe" in small_network.stats.hops_by_type


class TestMultisend:
    @pytest.mark.parametrize("recursive", [True, False])
    def test_reaches_all_recipients(self, small_network, rng, recursive):
        recorder = Recorder(small_network)
        source = small_network.random_node(rng)
        idents = [rng.randrange(small_network.space.size) for _ in range(20)]
        targets = small_network.router.multisend(
            source, Message(), idents, recursive=recursive
        )
        assert len(recorder.received) == 20
        for ident, target in zip(idents, targets):
            assert target is small_network.responsible_node(ident)

    def test_recursive_and_iterative_reach_same_nodes(self, small_network, rng):
        source = small_network.random_node(rng)
        idents = [rng.randrange(small_network.space.size) for _ in range(32)]
        Recorder(small_network)
        recursive = small_network.router.multisend(
            source, Message(), idents, recursive=True
        )
        iterative = small_network.router.multisend(
            source, Message(), idents, recursive=False
        )
        assert [n.ident for n in recursive] == [n.ident for n in iterative]

    def test_recursive_cheaper_than_iterative(self, small_network, rng):
        source = small_network.random_node(rng)
        idents = [rng.randrange(small_network.space.size) for _ in range(64)]
        iterative = multisend_cost(
            small_network.router, source, idents, recursive=False
        )
        recursive = multisend_cost(
            small_network.router, source, idents, recursive=True
        )
        assert recursive < iterative

    def test_distinct_messages_per_identifier(self, small_network, rng):
        """The multisend(M, L) form pairs message j with identifier j."""

        class Tagged(Message):
            def __init__(self, tag):
                object.__setattr__(self, "tag", tag)

        received = {}
        for node in small_network:
            node.register_handler(
                "message", lambda n, m: received.setdefault(m.tag, n.ident)
            )
        source = small_network.random_node(rng)
        idents = [rng.randrange(small_network.space.size) for _ in range(10)]
        messages = [Tagged(i) for i in range(10)]
        small_network.router.multisend(source, messages, idents, recursive=True)
        for tag, ident in enumerate(idents):
            assert received[tag] == small_network.responsible_node(ident).ident

    def test_mismatched_lengths_rejected(self, small_network):
        with pytest.raises(ValueError):
            small_network.router.multisend(
                small_network.nodes[0], [Message()], [1, 2]
            )

    def test_empty_list_is_noop(self, small_network):
        assert small_network.router.multisend(small_network.nodes[0], Message(), []) == []

    def test_duplicate_identifiers_each_delivered(self, small_network, rng):
        recorder = Recorder(small_network)
        source = small_network.random_node(rng)
        ident = rng.randrange(small_network.space.size)
        small_network.router.multisend(source, Message(), [ident, ident, ident])
        assert len(recorder.received) == 3

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=24))
    def test_property_recursive_matches_oracle(self, idents):
        network = _shared()
        Recorder(network)
        source = network.nodes[7]
        wrapped = [i % network.space.size for i in idents]
        targets = network.router.multisend(source, Message(), wrapped, recursive=True)
        for ident, target in zip(wrapped, targets):
            assert target is network.responsible_node(ident)


_CACHE = {}


def _shared():
    if "net" not in _CACHE:
        _CACHE["net"] = ChordNetwork.build(48)
    return _CACHE["net"]


class TestRoutingRobustness:
    def test_gives_up_when_hop_limit_exceeded(self):
        """Finger-less successor walking past the hop budget must fail
        loudly instead of walking the whole ring."""
        network = ChordNetwork.build(200, m=8)  # max_hops = 4*8 + 8 = 40
        for node in network:
            node.fingers = [None] * network.space.m
        nodes = network.nodes
        start = nodes[0]
        # The node just behind the start is a near-full ring walk away;
        # even skipping 4 nodes per hop via successor lists that is
        # ~50 hops, beyond the 40-hop budget.
        far = nodes[-2].ident
        with pytest.raises(RoutingError):
            network.router.find_successor(start, far)

    def test_routes_around_dead_finger(self, small_network, rng):
        """A stale (dead) finger entry must not break routing."""
        victim = small_network.nodes[10]
        small_network.fail(victim)
        # Deliberately do NOT fix fingers: other nodes still point at it.
        for _ in range(100):
            ident = rng.randrange(small_network.space.size)
            found, _ = small_network.router.find_successor(
                small_network.random_node(rng), ident
            )
            assert found.alive
