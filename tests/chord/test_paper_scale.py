"""Structural feasibility of the paper-scale network (10^4 nodes).

The full paper-scale experiments are hours of simulation, but the
substrate must *structurally* support them: a 10^4-node ring builds,
is consistent, and routes in O(log N) hops.  This is the check behind
the ``REPRO_SCALE=paper`` profile claim.
"""

import random

import pytest

from repro.chord import ChordNetwork


@pytest.fixture(scope="module")
def paper_network():
    return ChordNetwork.build(10_000)


class TestPaperScale:
    def test_ring_builds_consistent(self, paper_network):
        assert len(paper_network) == 10_000
        assert paper_network.ring_is_consistent()

    def test_lookups_logarithmic(self, paper_network):
        rng = random.Random(17)
        total = 0
        trials = 100
        for _ in range(trials):
            ident = rng.randrange(paper_network.space.size)
            start = paper_network.random_node(rng)
            found, hops = paper_network.router.find_successor(start, ident)
            assert found is paper_network.responsible_node(ident)
            total += hops
        mean_hops = total / trials
        # O(log N): log2(10^4) ≈ 13.3; allow generous slack, but far
        # below anything linear in N.
        assert mean_hops < 2 * 13.3

    def test_multisend_scales(self, paper_network):
        from repro.chord.routing import multisend_cost

        rng = random.Random(18)
        source = paper_network.random_node(rng)
        # Savings grow with the recipient count; at 10^4 nodes a batch
        # of 256 recipients is where the clockwise sweep pays off.
        idents = [rng.randrange(paper_network.space.size) for _ in range(256)]
        recursive = multisend_cost(
            paper_network.router, source, idents, recursive=True
        )
        iterative = multisend_cost(
            paper_network.router, source, idents, recursive=False
        )
        assert recursive < iterative * 0.75
