"""Unit tests for ChordNode pointers and handlers."""

import pytest

from repro.chord.idspace import IdentifierSpace
from repro.chord.node import ChordNode
from repro.sim.messages import Message


def make_node(ident, space=None):
    space = space or IdentifierSpace(8)
    return ChordNode(f"key-{ident}", ident, space)


class TestSuccessorList:
    def test_single_node_is_own_successor(self):
        node = make_node(10)
        assert node.successor is node

    def test_set_successor_prepends(self):
        a, b, c = make_node(1), make_node(2), make_node(3)
        a.set_successor(b)
        a.set_successor(c)
        assert a.successor is c
        assert a.successor_list == [c, b]

    def test_set_successor_deduplicates(self):
        a, b = make_node(1), make_node(2)
        a.set_successor(b)
        a.set_successor(b)
        assert a.successor_list == [b]

    def test_dead_entries_skipped(self):
        a, b, c = make_node(1), make_node(2), make_node(3)
        a.successor_list = [b, c]
        b.alive = False
        assert a.successor is c

    def test_all_dead_falls_back_to_self(self):
        a, b = make_node(1), make_node(2)
        a.successor_list = [b]
        b.alive = False
        assert a.successor is a

    def test_truncated_to_size(self):
        a = make_node(1)
        a.successor_list_size = 2
        for ident in (2, 3, 4):
            a.set_successor(make_node(ident))
        assert len(a.successor_list) == 2

    def test_refresh_copies_successors_chain(self):
        a, b, c, d = (make_node(i) for i in (1, 2, 3, 4))
        a.set_successor(b)
        b.successor_list = [c, d]
        a.refresh_successor_list()
        assert a.successor_list == [b, c, d]

    def test_refresh_stops_at_self(self):
        a, b = make_node(1), make_node(2)
        a.set_successor(b)
        b.successor_list = [a]
        a.refresh_successor_list()
        assert a.successor_list == [b]


class TestOwnership:
    def test_owns_with_predecessor(self):
        space = IdentifierSpace(8)
        node = make_node(100, space)
        node.predecessor = make_node(50, space)
        assert node.owns(100)
        assert node.owns(51)
        assert not node.owns(50)
        assert not node.owns(101)

    def test_owns_wrapping(self):
        space = IdentifierSpace(8)
        node = make_node(5, space)
        node.predecessor = make_node(250, space)
        assert node.owns(0)
        assert node.owns(255)
        assert not node.owns(250)

    def test_no_predecessor_owns_nothing_unless_alone(self):
        node = make_node(100)
        assert node.owns(100)  # alone on the ring (successor is self)
        node.set_successor(make_node(120))
        assert not node.owns(100)


class TestFingers:
    def test_finger_start_doubles(self):
        node = make_node(0)
        assert [node.finger_start(j) for j in range(4)] == [1, 2, 4, 8]

    def test_finger_start_wraps(self):
        node = make_node(200)
        assert node.finger_start(7) == (200 + 128) % 256

    def test_closest_preceding_finger_picks_farthest_in_range(self):
        space = IdentifierSpace(8)
        node = make_node(0, space)
        f1, f2, f3 = make_node(10, space), make_node(60, space), make_node(200, space)
        node.fingers[0] = f1
        node.fingers[5] = f2
        node.fingers[7] = f3
        assert node.closest_preceding_finger(100) is f2
        assert node.closest_preceding_finger(250) is f3
        assert node.closest_preceding_finger(5) is node

    def test_closest_preceding_finger_skips_dead(self):
        space = IdentifierSpace(8)
        node = make_node(0, space)
        best = make_node(90, space)
        dead = make_node(95, space)
        dead.alive = False
        node.fingers[0] = best
        node.fingers[1] = dead
        assert node.closest_preceding_finger(100) is best

    def test_considers_successor_list(self):
        space = IdentifierSpace(8)
        node = make_node(0, space)
        succ = make_node(40, space)
        node.set_successor(succ)
        assert node.closest_preceding_finger(100) is succ


class TestHandlers:
    def test_dispatches_by_type(self):
        node = make_node(1)
        received = []
        node.register_handler("message", lambda n, m: received.append((n, m)))
        message = Message()
        node.deliver(message)
        assert received == [(node, message)]

    def test_missing_handler_raises(self):
        node = make_node(1)
        with pytest.raises(LookupError):
            node.deliver(Message())
