"""Tests for the two-level hash tables (ALQT, VLQT, VLTT, projections)."""

import pytest

from repro.core.tables import (
    AttributeLevelQueryTable,
    ProjectionStore,
    StoredProjection,
    StoredQuery,
    StoredTuple,
    ValueLevelQueryTable,
    ValueLevelTupleTable,
)
from repro.sql.parser import parse_query
from repro.sql.query import LEFT, RIGHT, Subscriber, rewrite
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

R = Relation("R", ("A", "B"))
S = Relation("S", ("D", "E"))
SUB = Subscriber("n", 1, "ip")


def bound_query(sql="SELECT R.A, S.D FROM R, S WHERE R.B = S.E", key="q0", t=0.0):
    return parse_query(sql).with_subscription(key, t, SUB)


def rewritten(key="q0", b=7, a=10, pub=1.0):
    query = bound_query(key=key)
    return rewrite(query, LEFT, DataTuple(R, (a, b), pub))


class TestALQT:
    def test_add_and_lookup_by_index_attribute(self):
        table = AttributeLevelQueryTable()
        stored = StoredQuery(bound_query(), LEFT, routing_ident=5)
        table.add(stored)
        groups = table.groups_for("R", "B")
        assert len(groups) == 1
        assert groups[0].entries == [stored]
        assert table.groups_for("S", "E") == []
        assert len(table) == 1

    def test_groups_by_join_signature(self):
        table = AttributeLevelQueryTable()
        table.add(StoredQuery(bound_query(key="q1"), LEFT, 0))
        table.add(
            StoredQuery(
                bound_query("SELECT R.B, S.D FROM R, S WHERE R.B = S.E", key="q2"),
                LEFT,
                0,
            )
        )
        table.add(
            StoredQuery(
                bound_query("SELECT R.A, S.D FROM R, S WHERE R.A = S.E", key="q3"),
                LEFT,
                0,
            )
        )
        groups_b = table.groups_for("R", "B")
        assert len(groups_b) == 1 and len(groups_b[0]) == 2
        groups_a = table.groups_for("R", "A")
        assert len(groups_a) == 1 and len(groups_a[0]) == 1

    def test_right_side_indexed_under_right_attribute(self):
        table = AttributeLevelQueryTable()
        table.add(StoredQuery(bound_query(), RIGHT, 0))
        assert len(table.groups_for("S", "E")) == 1
        assert table.groups_for("R", "B") == []

    def test_remove_by_key(self):
        table = AttributeLevelQueryTable()
        table.add(StoredQuery(bound_query(key="q1"), LEFT, 0))
        table.add(StoredQuery(bound_query(key="q2"), LEFT, 0))
        assert table.remove("q1") == 1
        assert len(table) == 1
        remaining = table.groups_for("R", "B")[0]
        assert remaining.entries[0].query.key == "q2"

    def test_remove_clears_empty_group(self):
        table = AttributeLevelQueryTable()
        table.add(StoredQuery(bound_query(key="q1"), LEFT, 0))
        table.remove("q1")
        assert table.groups_for("R", "B") == []

    def test_pop_matching_moves_by_routing_ident(self):
        table = AttributeLevelQueryTable()
        keep = StoredQuery(bound_query(key="q1"), LEFT, routing_ident=1)
        move = StoredQuery(bound_query(key="q2"), LEFT, routing_ident=2)
        table.add(keep)
        table.add(move)
        moved = table.pop_matching(lambda ident: ident == 2)
        assert moved == [move]
        assert len(table) == 1

    def test_iteration(self):
        table = AttributeLevelQueryTable()
        table.add(StoredQuery(bound_query(key="q1"), LEFT, 0))
        table.add(StoredQuery(bound_query(key="q2"), RIGHT, 0))
        assert {entry.query.key for entry in table} == {"q1", "q2"}


class TestVLQT:
    def test_add_new(self):
        table = ValueLevelQueryTable()
        entry, is_new = table.add(rewritten(), routing_ident=9)
        assert is_new
        assert entry.latest_trigger_time == 1.0
        assert len(table) == 1

    def test_duplicate_key_refreshes_time(self):
        table = ValueLevelQueryTable()
        table.add(rewritten(pub=1.0), 9)
        entry, is_new = table.add(rewritten(pub=5.0), 9)
        assert not is_new
        assert entry.latest_trigger_time == 5.0
        assert len(table) == 1

    def test_refresh_never_moves_backwards(self):
        table = ValueLevelQueryTable()
        table.add(rewritten(pub=5.0), 9)
        entry, _ = table.add(rewritten(pub=1.0), 9)
        assert entry.latest_trigger_time == 5.0

    def test_candidates_by_attribute_and_value(self):
        table = ValueLevelQueryTable()
        table.add(rewritten(b=7), 0)
        table.add(rewritten(key="q1", b=8), 0)
        assert len(table.candidates("S", "E", 7)) == 1
        assert len(table.candidates("S", "E", 8)) == 1
        assert table.candidates("S", "E", 9) == []
        assert table.candidates("S", "D", 7) == []

    def test_peek(self):
        table = ValueLevelQueryTable()
        rq = rewritten()
        assert table.peek(rq) is None
        table.add(rq, 0)
        assert table.peek(rq) is not None

    def test_evict_older_than(self):
        table = ValueLevelQueryTable()
        table.add(rewritten(key="old", pub=1.0), 0)
        table.add(rewritten(key="new", pub=10.0), 0)
        assert table.evict_older_than(5.0) == 1
        assert len(table) == 1

    def test_pop_matching(self):
        table = ValueLevelQueryTable()
        table.add(rewritten(key="a"), routing_ident=1)
        table.add(rewritten(key="b"), routing_ident=2)
        moved = table.pop_matching(lambda ident: ident == 1)
        assert len(moved) == 1 and len(table) == 1

    def test_insert_entry_preserves_time(self):
        source = ValueLevelQueryTable()
        entry, _ = source.add(rewritten(pub=7.0), 3)
        target = ValueLevelQueryTable()
        target.insert_entry(entry)
        assert target.peek(entry.rewritten).latest_trigger_time == 7.0


class TestVLTT:
    def s_stored(self, e=7, d=1, pub=1.0, ident=0):
        return StoredTuple(DataTuple(S, (d, e), pub), "E", ident)

    def test_add_and_candidates(self):
        table = ValueLevelTupleTable()
        table.add(self.s_stored(e=7))
        assert len(table.candidates("S", "E", 7)) == 1
        assert table.candidates("S", "E", 8) == []
        assert table.candidates("R", "E", 7) == []

    def test_duplicates_kept(self):
        table = ValueLevelTupleTable()
        table.add(self.s_stored())
        table.add(self.s_stored())
        assert len(table) == 2

    def test_evict_older_than(self):
        table = ValueLevelTupleTable()
        table.add(self.s_stored(pub=1.0))
        table.add(self.s_stored(pub=9.0))
        assert table.evict_older_than(5.0) == 1
        assert len(table) == 1

    def test_pop_matching(self):
        table = ValueLevelTupleTable()
        table.add(self.s_stored(ident=1))
        table.add(self.s_stored(ident=2))
        moved = table.pop_matching(lambda ident: ident == 2)
        assert len(moved) == 1 and len(table) == 1

    def test_iteration(self):
        table = ValueLevelTupleTable()
        table.add(self.s_stored(e=1))
        table.add(self.s_stored(e=2))
        assert len(list(table)) == 2


class TestProjectionStore:
    def projection(self, value=7, pub=1.0, a=10):
        tup = DataTuple(R, (a, value), pub)
        return StoredProjection(
            projection=tup.project(("A", "B")),
            group_signature="sig",
            value=value,
            routing_ident=0,
        )

    def test_add_and_candidates(self):
        store = ProjectionStore()
        assert store.add(self.projection())
        assert len(store.candidates("sig", "R", 7)) == 1
        assert store.candidates("sig", "R", 8) == []
        assert store.candidates("other", "R", 7) == []
        assert store.candidates("sig", "S", 7) == []

    def test_identical_content_collapsed(self):
        store = ProjectionStore()
        assert store.add(self.projection(pub=1.0))
        assert not store.add(self.projection(pub=2.0))
        assert len(store) == 1
        # The surviving copy carries the fresher publication time.
        assert store.candidates("sig", "R", 7)[0].projection.pub_time == 2.0

    def test_distinct_content_kept(self):
        store = ProjectionStore()
        store.add(self.projection(a=10))
        store.add(self.projection(a=11))
        assert len(store) == 2

    def test_evict_older_than(self):
        store = ProjectionStore()
        store.add(self.projection(pub=1.0, a=1))
        store.add(self.projection(pub=9.0, a=2))
        assert store.evict_older_than(5.0) == 1
        assert len(store) == 1

    def test_pop_matching(self):
        store = ProjectionStore()
        first = self.projection(a=1)
        second = self.projection(a=2)
        second.routing_ident = 5
        store.add(first)
        store.add(second)
        moved = store.pop_matching(lambda ident: ident == 5)
        assert len(moved) == 1 and len(store) == 1
