"""Engine behaviour under overlay churn (joins, leaves, handoff)."""

import random

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle

SCHEMA = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})
ALGORITHMS = ["sai", "dai-q", "dai-t", "dai-v"]


def churn_workload(algorithm, seed=1, n_events=150, n_nodes=32, churn_every=12):
    rng = random.Random(seed)
    network = ChordNetwork.build(n_nodes)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm=algorithm, index_choice="random", seed=seed)
    )
    oracle = CentralizedOracle()
    R, S = SCHEMA.relation("R"), SCHEMA.relation("S")
    subscriber = network.nodes[0]
    query = engine.subscribe(
        subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", SCHEMA
    )
    oracle.subscribe(query)
    for index in range(n_events):
        engine.clock.advance(1.0)
        origin = network.random_node(rng)
        if rng.random() < 0.5:
            tup = engine.publish(origin, R, {"A": index, "B": rng.randrange(5)})
        else:
            tup = engine.publish(origin, S, {"D": index, "E": rng.randrange(5)})
        oracle.insert(tup)
        if index % churn_every == churn_every - 1:
            if rng.random() < 0.5:
                engine.adopt(network.join(f"late-{index}"))
            else:
                victim = network.random_node(rng)
                if victim is not subscriber:
                    network.leave(victim)
            network.run_stabilization(1, fix_all_fingers=True)
    return engine, oracle, query


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_voluntary_churn_preserves_results(algorithm):
    engine, oracle, query = churn_workload(algorithm)
    assert oracle.rows_for(query.key), "vacuous workload"
    assert engine.delivered_rows(query.key) == oracle.rows_for(query.key)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_heavy_churn(algorithm):
    engine, oracle, query = churn_workload(
        algorithm, seed=2, n_events=120, churn_every=6
    )
    assert engine.delivered_rows(query.key) == oracle.rows_for(query.key)


class TestHandoffMechanics:
    def test_join_takes_over_stored_queries(self, two_relation_schema):
        """A newcomer that owns a rewriter identifier inherits its queries."""
        network = ChordNetwork.build(16)
        engine = ContinuousQueryEngine(
            network, EngineConfig(algorithm="sai", index_choice="left")
        )
        query = engine.subscribe(
            network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        rewriter_ident = network.hash.hash_parts("R", "B")
        rewriter = network.responsible_node(rewriter_ident)
        assert len(engine.state(rewriter).alqt) == 1

        # Join a node exactly at the rewriter identifier: it becomes
        # responsible and must inherit the stored query.
        newcomer = None
        salt = 0
        while newcomer is None:
            candidate_key = f"takeover-{salt}"
            ident = network.hash(candidate_key)
            predecessor = rewriter.predecessor
            if network.space.in_open(ident, predecessor.ident, rewriter.ident):
                newcomer = network.join(candidate_key)
                if not newcomer.owns(rewriter_ident):
                    # Joined in the gap but before the key; query stays.
                    assert len(engine.state(rewriter).alqt) == 1
                    return
            salt += 1
            assert salt < 100_000, "no key found in the gap; widen the search"
        network.run_stabilization(2, fix_all_fingers=True)
        assert len(engine.state(newcomer).alqt) == 1
        assert len(engine.state(rewriter).alqt) == 0

        # The query still works after the takeover.
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        engine.clock.advance(1)
        engine.publish(network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_leave_hands_everything_to_successor(self, two_relation_schema):
        network = ChordNetwork.build(16)
        engine = ContinuousQueryEngine(
            network, EngineConfig(algorithm="sai", index_choice="left")
        )
        query = engine.subscribe(
            network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        rewriter = network.responsible_node(network.hash.hash_parts("R", "B"))
        successor = rewriter.successor
        network.leave(rewriter)
        network.run_stabilization(2, fix_all_fingers=True)
        assert len(engine.state(successor).alqt) == 1

        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        engine.clock.advance(1)
        engine.publish(network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_abrupt_failure_loses_state_best_effort(self, two_relation_schema):
        """Failures lose data (best-effort semantics, Section 3.2) but
        the system keeps running and later pairs still match."""
        network = ChordNetwork.build(16)
        engine = ContinuousQueryEngine(
            network, EngineConfig(algorithm="sai", index_choice="left")
        )
        query = engine.subscribe(
            network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        rewriter = network.responsible_node(network.hash.hash_parts("R", "B"))
        network.fail(rewriter)
        network.run_stabilization(3, fix_all_fingers=True)
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        engine.clock.advance(1)
        engine.publish(network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        # The stored query died with the rewriter: no notification, but
        # no crash either.
        assert engine.delivered_rows(query.key) == set()

    def test_resubscription_after_failure_restores_service(self, two_relation_schema):
        network = ChordNetwork.build(16)
        engine = ContinuousQueryEngine(
            network, EngineConfig(algorithm="sai", index_choice="left")
        )
        subscriber = network.nodes[0]
        query = engine.subscribe(
            subscriber,
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        rewriter = network.responsible_node(network.hash.hash_parts("R", "B"))
        if rewriter is subscriber:
            pytest.skip("rewriter landed on the subscriber in this topology")
        network.fail(rewriter)
        network.run_stabilization(3, fix_all_fingers=True)
        query2 = engine.subscribe(
            subscriber,
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        engine.clock.advance(1)
        engine.publish(network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query2.key) == {("7", (1, 2))}
