"""Tests for the join fingers routing table (LRU cache semantics)."""

import pytest

from repro.chord.idspace import IdentifierSpace
from repro.chord.node import ChordNode
from repro.core.jfrt import JoinFingersRoutingTable


def owner_node(ident=100, pred=50):
    space = IdentifierSpace(8)
    node = ChordNode(f"k{ident}", ident, space)
    node.predecessor = ChordNode(f"k{pred}", pred, space)
    return node


class TestJFRT:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            JoinFingersRoutingTable(0)

    def test_miss_then_hit(self):
        table = JoinFingersRoutingTable(4)
        node = owner_node()
        assert table.lookup(80) is None
        table.learn(80, node)
        assert table.lookup(80) is node
        assert table.hits == 1 and table.misses == 1

    def test_dead_node_invalidated(self):
        table = JoinFingersRoutingTable(4)
        node = owner_node()
        table.learn(80, node)
        node.alive = False
        assert table.lookup(80) is None
        assert table.invalidations == 1
        assert len(table) == 0

    def test_no_longer_responsible_invalidated(self):
        table = JoinFingersRoutingTable(4)
        node = owner_node(ident=100, pred=50)
        table.learn(80, node)
        # A newcomer took over (80 now outside (90, 100]).
        node.predecessor = ChordNode("newcomer", 90, node.space)
        assert table.lookup(80) is None
        assert table.invalidations == 1

    def test_lru_eviction(self):
        table = JoinFingersRoutingTable(2)
        nodes = {i: owner_node(ident=100, pred=50) for i in (60, 70, 80)}
        table.learn(60, nodes[60])
        table.learn(70, nodes[70])
        table.lookup(60)  # refresh 60 so 70 is the LRU entry
        table.learn(80, nodes[80])
        assert len(table) == 2
        assert table.lookup(70) is None
        assert table.lookup(60) is nodes[60]

    def test_hit_ratio(self):
        table = JoinFingersRoutingTable(4)
        node = owner_node()
        table.lookup(80)
        table.learn(80, node)
        table.lookup(80)
        assert table.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert JoinFingersRoutingTable(1).hit_ratio == 0.0

    def test_relearn_updates_entry(self):
        table = JoinFingersRoutingTable(2)
        stale = owner_node()
        fresh = owner_node()
        table.learn(80, stale)
        table.learn(80, fresh)
        assert table.lookup(80) is fresh
        assert len(table) == 1
