"""Integration tests for JFRT and the replication scheme.

The invariants: optimizations never change the delivered answer sets;
JFRT only reduces hops; replication spreads attribute-level filtering
load while multiplying attribute-level storage.
"""

import pytest

from repro.bench.configs import Scale
from repro.bench.harness import run_standard, workload_for

SMOKE = Scale("test", n_nodes=64, n_queries=60, n_tuples=160, domain_size=40)


@pytest.fixture(scope="module")
def shared_workload():
    return workload_for(SMOKE)


class TestJFRTIntegration:
    @pytest.mark.parametrize("algorithm", ["sai", "dai-q", "dai-t", "dai-v"])
    def test_same_answers_fewer_hops(self, algorithm, shared_workload):
        baseline = run_standard(
            algorithm,
            SMOKE,
            config_overrides={"index_choice": "random"},
            workload=shared_workload,
        )
        cached = run_standard(
            algorithm,
            SMOKE,
            config_overrides={"index_choice": "random", "jfrt_capacity": 4096},
            workload=shared_workload,
        )
        baseline_rows = {
            key: baseline.engine.delivered_rows(key)
            for key in baseline.engine.delivered
        }
        cached_rows = {
            key: cached.engine.delivered_rows(key) for key in cached.engine.delivered
        }
        assert baseline_rows == cached_rows
        assert cached.stream_traffic.hops < baseline.stream_traffic.hops

    def test_cache_hits_accumulate(self, shared_workload):
        result = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random", "jfrt_capacity": 4096},
            workload=shared_workload,
        )
        hits = sum(
            state.jfrt.hits
            for node in result.engine.network
            if (state := result.engine.state(node)).jfrt is not None
        )
        assert hits > 0

    def test_join_hops_drop_with_cache(self, shared_workload):
        baseline = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random"},
            workload=shared_workload,
        )
        cached = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random", "jfrt_capacity": 4096},
            workload=shared_workload,
        )
        assert (
            cached.stream_traffic.hops_by_type.get("join", 0)
            < baseline.stream_traffic.hops_by_type.get("join", 0)
        )


class TestReplicationIntegration:
    @pytest.mark.parametrize("factor", [2, 4])
    def test_same_answers(self, factor, shared_workload):
        baseline = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random"},
            workload=shared_workload,
        )
        replicated = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random", "replication_factor": factor},
            workload=shared_workload,
        )
        for key in baseline.engine.delivered:
            assert baseline.engine.delivered_rows(key) == replicated.engine.delivered_rows(
                key
            )

    def test_hottest_rewriter_relieved(self, shared_workload):
        baseline = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random"},
            workload=shared_workload,
        )
        replicated = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random", "replication_factor": 4},
            workload=shared_workload,
        )
        baseline_max = max(baseline.load.attribute_level_filtering.values())
        replicated_max = max(replicated.load.attribute_level_filtering.values())
        assert replicated_max < baseline_max

    def test_attribute_storage_multiplied(self, shared_workload):
        baseline = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random"},
            workload=shared_workload,
        )
        replicated = run_standard(
            "sai",
            SMOKE,
            config_overrides={"index_choice": "random", "replication_factor": 4},
            workload=shared_workload,
        )
        baseline_storage = sum(baseline.load.attribute_level_storage.values())
        replicated_storage = sum(replicated.load.attribute_level_storage.values())
        assert replicated_storage == 4 * baseline_storage


class TestRecursiveMultisendIntegration:
    def test_iterative_mode_same_answers_more_hops(self, shared_workload):
        recursive = run_standard(
            "dai-t",
            SMOKE,
            config_overrides={"index_choice": "random"},
            workload=shared_workload,
        )
        iterative = run_standard(
            "dai-t",
            SMOKE,
            config_overrides={"index_choice": "random", "recursive_multisend": False},
            workload=shared_workload,
        )
        for key in recursive.engine.delivered:
            assert recursive.engine.delivered_rows(key) == iterative.engine.delivered_rows(
                key
            )
        assert recursive.stream_traffic.hops < iterative.stream_traffic.hops
