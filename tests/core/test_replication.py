"""Tests for the attribute-level replication scheme."""

import random

import pytest

from repro.chord.hashing import ConsistentHash, make_key
from repro.core.replication import ReplicationScheme

HASH = ConsistentHash(32)


class TestReplicationScheme:
    def test_factor_one_is_plain_hash(self):
        scheme = ReplicationScheme(1)
        idents = scheme.rewriter_identifiers(HASH, "R", "B")
        assert idents == [HASH(make_key("R", "B"))]

    def test_factor_validates(self):
        with pytest.raises(ValueError):
            ReplicationScheme(0)

    def test_k_distinct_identifiers(self):
        scheme = ReplicationScheme(8)
        idents = scheme.rewriter_identifiers(HASH, "R", "B")
        assert len(idents) == 8
        assert len(set(idents)) == 8

    def test_identifiers_deterministic(self):
        scheme = ReplicationScheme(4)
        assert scheme.rewriter_identifiers(HASH, "R", "B") == scheme.rewriter_identifiers(
            HASH, "R", "B"
        )

    def test_pick_identifier_is_one_of_replicas(self):
        scheme = ReplicationScheme(4)
        replicas = set(scheme.rewriter_identifiers(HASH, "R", "B"))
        rng = random.Random(0)
        picks = {scheme.pick_identifier(HASH, "R", "B", rng) for _ in range(100)}
        assert picks <= replicas
        # All replicas should be used over enough draws.
        assert picks == replicas

    def test_pick_identifier_factor_one_deterministic(self):
        scheme = ReplicationScheme(1)
        rng = random.Random(0)
        assert scheme.pick_identifier(HASH, "R", "B", rng) == HASH(make_key("R", "B"))

    def test_probe_identifier_is_first_replica(self):
        scheme = ReplicationScheme(4)
        assert (
            scheme.probe_identifier(HASH, "R", "B")
            == scheme.rewriter_identifiers(HASH, "R", "B")[0]
        )

    def test_attributes_do_not_share_replicas(self):
        scheme = ReplicationScheme(2)
        b_replicas = set(scheme.rewriter_identifiers(HASH, "R", "B"))
        a_replicas = set(scheme.rewriter_identifiers(HASH, "R", "A"))
        assert b_replicas.isdisjoint(a_replicas)
