"""Tests for load snapshots and the metric split by indexing level."""

import pytest

from repro.core.metrics import snapshot


def fire_small_workload(engine, schema):
    R, S = schema.relation("R"), schema.relation("S")
    engine.subscribe(
        engine.network.nodes[0],
        "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
        schema,
    )
    for index in range(5):
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": index, "B": index % 2, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": index, "E": index % 2, "F": 0})


class TestSnapshot:
    def test_covers_all_nodes(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        fire_small_workload(engine, two_relation_schema)
        load = snapshot(engine)
        assert set(load.filtering) == {node.ident for node in engine.network}

    def test_levels_sum_to_total(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        fire_small_workload(engine, two_relation_schema)
        load = snapshot(engine)
        for ident in load.filtering:
            assert (
                load.filtering[ident]
                == load.attribute_level_filtering[ident]
                + load.value_level_filtering[ident]
            )
            assert (
                load.storage[ident]
                == load.attribute_level_storage[ident]
                + load.value_level_storage[ident]
                + load.parked_notifications[ident]
            )

    def test_totals(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        fire_small_workload(engine, two_relation_schema)
        load = snapshot(engine)
        assert load.total_filtering == sum(load.filtering.values())
        assert load.total_storage == sum(load.storage.values())
        assert load.total_evaluator_filtering == sum(
            load.value_level_filtering.values()
        )

    def test_storage_reflects_algorithm(self, engine_factory, two_relation_schema):
        """DAI-Q stores no rewritten queries; DAI-T stores no tuples.

        Every tuple has 3 attributes, so SAI/DAI-Q store 3 value-level
        copies per tuple; DAI-T's value level holds rewritten queries
        only.
        """
        sai = engine_factory(algorithm="sai")
        fire_small_workload(sai, two_relation_schema)
        dai_q = engine_factory(algorithm="dai-q")
        fire_small_workload(dai_q, two_relation_schema)
        dai_t = engine_factory(algorithm="dai-t")
        fire_small_workload(dai_t, two_relation_schema)

        tuples_stored = 10 * 3  # 10 tuples x 3 attributes
        assert snapshot(dai_q).total_evaluator_storage == tuples_stored
        assert snapshot(sai).total_evaluator_storage > tuples_stored  # + rewritten
        dai_t_load = snapshot(dai_t)
        # DAI-T stores only rewritten queries at the value level.
        vltt_total = sum(
            len(dai_t.state(node).vltt) for node in dai_t.network
        )
        assert vltt_total == 0
        assert dai_t_load.total_evaluator_storage > 0

    def test_notifications_created_counted(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        fire_small_workload(engine, two_relation_schema)
        load = snapshot(engine)
        assert sum(load.notifications_created.values()) > 0

    def test_diff_subtracts_counters(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        fire_small_workload(engine, two_relation_schema)
        first = snapshot(engine)
        fire_small_workload(engine, two_relation_schema)
        second = snapshot(engine)
        delta = second.diff(first)
        assert delta.total_filtering == second.total_filtering - first.total_filtering
        # Storage stays a gauge (absolute), not a delta.
        assert delta.total_storage == second.total_storage

    def test_distribution_helpers(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        fire_small_workload(engine, two_relation_schema)
        load = snapshot(engine)
        assert 0.0 <= load.filtering_gini() < 1.0
        assert 0.0 < load.filtering_top_share(0.1) <= 1.0
        assert 0.0 < load.filtering_participation() <= 1.0
        sorted_loads = load.sorted_filtering()
        assert list(sorted_loads) == sorted(sorted_loads, reverse=True)

    def test_idle_network_all_zero(self, engine_factory):
        engine = engine_factory(algorithm="sai")
        load = snapshot(engine)
        assert load.total_filtering == 0
        assert load.total_storage == 0
        assert load.filtering_participation() == 0.0
