"""JFRT behaviour under churn: stale cache entries never corrupt results."""

import random

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle

SCHEMA = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})


def run_with_churn(algorithm, jfrt_capacity, seed=13, n_events=160):
    rng = random.Random(seed)
    network = ChordNetwork.build(32)
    engine = ContinuousQueryEngine(
        network,
        EngineConfig(
            algorithm=algorithm,
            index_choice="random",
            jfrt_capacity=jfrt_capacity,
            seed=seed,
        ),
    )
    oracle = CentralizedOracle()
    R, S = SCHEMA.relation("R"), SCHEMA.relation("S")
    subscriber = network.nodes[0]
    query = engine.subscribe(
        subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", SCHEMA
    )
    oracle.subscribe(query)
    for index in range(n_events):
        engine.clock.advance(1.0)
        origin = network.random_node(rng)
        if rng.random() < 0.5:
            tup = engine.publish(origin, R, {"A": index, "B": rng.randrange(4)})
        else:
            tup = engine.publish(origin, S, {"D": index, "E": rng.randrange(4)})
        oracle.insert(tup)
        if index % 20 == 19:
            # Churn invalidates cached evaluator addresses.
            if rng.random() < 0.5:
                engine.adopt(network.join(f"late-{index}"))
            else:
                victim = network.random_node(rng)
                if victim is not subscriber:
                    network.leave(victim)
            network.run_stabilization(2, fix_all_fingers=True)
    return engine, oracle, query


@pytest.mark.parametrize("algorithm", ["sai", "dai-q", "dai-t", "dai-v"])
def test_jfrt_with_churn_matches_oracle(algorithm):
    engine, oracle, query = run_with_churn(algorithm, jfrt_capacity=256)
    assert oracle.rows_for(query.key), "vacuous workload"
    assert engine.delivered_rows(query.key) == oracle.rows_for(query.key)


def test_stale_entries_are_invalidated_not_used():
    engine, _, _ = run_with_churn("sai", jfrt_capacity=256)
    invalidations = sum(
        state.jfrt.invalidations
        for node in engine.network
        if (state := engine.state(node)).jfrt is not None
    )
    hits = sum(
        state.jfrt.hits
        for node in engine.network
        if (state := engine.state(node)).jfrt is not None
    )
    # The cache was exercised; churn produced at least some stale entries.
    assert hits > 0
    assert invalidations >= 0  # never negative; usually > 0 under churn


def test_jfrt_equals_no_jfrt_under_churn():
    with_cache = run_with_churn("dai-t", jfrt_capacity=256)[0]
    without_cache = run_with_churn("dai-t", jfrt_capacity=0)[0]
    for key in with_cache.delivered:
        assert with_cache.delivered_rows(key) == without_cache.delivered_rows(key)
