"""Sliding-window semantics: matching, eviction, DAI-T resend mode."""

import pytest

ALGORITHMS = ["sai", "dai-q", "dai-t", "dai-v"]


def setup(engine, schema):
    subscriber = engine.network.nodes[0]
    query = engine.subscribe(
        subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", schema
    )
    return schema.relation("R"), schema.relation("S"), query


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestWindowMatching:
    def test_pair_within_window_matches(self, algorithm, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm=algorithm, window=10.0)
        R, S, query = setup(engine, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(5)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_pair_outside_window_silent(self, algorithm, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm=algorithm, window=10.0)
        R, S, query = setup(engine, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(11)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == set()

    def test_boundary_is_inclusive(self, algorithm, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm=algorithm, window=10.0)
        R, S, query = setup(engine, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(10)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_fresh_tuple_revives_old_row(self, algorithm, engine_factory, two_relation_schema):
        """An expired pairing recurs when a fresh tuple re-creates it."""
        engine = engine_factory(algorithm=algorithm, window=5.0)
        R, S, query = setup(engine, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(20)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}


class TestEviction:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_evict_expired_prunes_storage(self, algorithm, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm=algorithm, window=5.0)
        R, S, _query = setup(engine, two_relation_schema)
        for index in range(6):
            engine.clock.advance(1)
            engine.publish(engine.network.nodes[1], R, {"A": index, "B": 7, "C": 0})
            engine.publish(engine.network.nodes[2], S, {"D": index, "E": 8, "F": 0})
        before = engine.load_snapshot().total_evaluator_storage
        engine.clock.advance(50)
        evicted = engine.evict_expired()
        after = engine.load_snapshot().total_evaluator_storage
        assert evicted > 0
        assert after < before
        assert after == 0

    def test_unbounded_window_evicts_nothing(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        R, S, _query = setup(engine, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1000)
        assert engine.evict_expired() == 0


class TestDAITResendUnderWindows:
    def test_unbounded_window_never_resends(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="dai-t", index_choice="left")
        R, S, query = setup(engine, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        first = engine.traffic.messages_by_type.get("join", 0)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 1})
        second = engine.traffic.messages_by_type.get("join", 0)
        assert first > 0
        assert second == first  # identical rewritten key: not resent

    def test_windowed_mode_resends_to_refresh_times(
        self, engine_factory, two_relation_schema
    ):
        engine = engine_factory(algorithm="dai-t", index_choice="left", window=5.0)
        R, S, query = setup(engine, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        first = engine.traffic.messages_by_type.get("join", 0)
        engine.clock.advance(4)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 1})
        second = engine.traffic.messages_by_type.get("join", 0)
        assert second > first  # resent so the evaluator's clock advances

        # Correctness payoff: the S tuple pairs with the *second* R
        # tuple (9 - 5 = 4 <= window) even though the first expired.
        engine.clock.advance(4)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}
