"""Differential testing: every algorithm vs. the centralized oracle.

The strongest correctness statement in the suite: for randomized
workloads of queries and tuples (with filters, windows, and skewed
values), the set of answer rows delivered by each distributed algorithm
equals the ground truth computed by a centralized nested-loop engine.
"""

import random

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle

ALGORITHMS = ["sai", "dai-q", "dai-t", "dai-v"]

SCHEMA = Schema.from_dict({"R": ["A", "B", "C"], "S": ["D", "E", "F"]})


def run_random_workload(
    algorithm,
    seed,
    *,
    window=None,
    n_events=200,
    n_nodes=48,
    domain=6,
    filter_probability=0.3,
    t2=False,
    config_extra=None,
):
    rng = random.Random(seed)
    network = ChordNetwork.build(n_nodes)
    config_kwargs = {"algorithm": algorithm, "index_choice": "random",
                     "window": window, "seed": seed}
    config_kwargs.update(config_extra or {})
    engine = ContinuousQueryEngine(network, EngineConfig(**config_kwargs))
    oracle = CentralizedOracle(window=window)
    R, S = SCHEMA.relation("R"), SCHEMA.relation("S")
    keys = []
    for _ in range(n_events):
        engine.clock.advance(1.0)
        origin = network.random_node(rng)
        roll = rng.random()
        if roll < 0.06 or not keys:
            if t2 and rng.random() < 0.5:
                sql = (
                    f"SELECT R.A, S.D FROM R, S "
                    f"WHERE R.{rng.choice('ABC')} + R.{rng.choice('ABC')} "
                    f"= S.{rng.choice('DEF')} + {rng.randrange(3)}"
                )
            else:
                sql = (
                    f"SELECT R.A, S.D FROM R, S "
                    f"WHERE R.{rng.choice('ABC')} = S.{rng.choice('DEF')}"
                )
            if rng.random() < filter_probability:
                sql += f" AND S.F = {rng.randrange(3)}"
            query = engine.subscribe(origin, sql, SCHEMA)
            oracle.subscribe(query)
            keys.append(query.key)
        elif roll < 0.53:
            tup = engine.publish(
                origin, R, {k: rng.randrange(domain) for k in R.attributes}
            )
            oracle.insert(tup)
        else:
            tup = engine.publish(
                origin, S, {k: rng.randrange(domain) for k in S.attributes}
            )
            oracle.insert(tup)
    return engine, oracle, keys


def assert_matches_oracle(engine, oracle, keys):
    for key in keys:
        got = engine.delivered_rows(key)
        want = oracle.rows_for(key)
        assert got == want, (
            f"query {key}: missing={want - got} extra={got - want}"
        )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", [1, 2])
def test_unbounded_window_matches_oracle(algorithm, seed):
    engine, oracle, keys = run_random_workload(algorithm, seed)
    assert oracle.total_rows > 0, "workload produced no answers; test is vacuous"
    assert_matches_oracle(engine, oracle, keys)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("window", [4.0, 30.0])
def test_sliding_window_matches_oracle(algorithm, window):
    engine, oracle, keys = run_random_workload(algorithm, seed=3, window=window)
    assert oracle.total_rows > 0
    assert_matches_oracle(engine, oracle, keys)


@pytest.mark.parametrize("seed", [4, 5])
def test_daiv_t2_matches_oracle(seed):
    engine, oracle, keys = run_random_workload("dai-v", seed, t2=True)
    assert oracle.total_rows > 0
    assert_matches_oracle(engine, oracle, keys)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_with_jfrt_matches_oracle(algorithm):
    engine, oracle, keys = run_random_workload(
        algorithm, seed=6, config_extra={"jfrt_capacity": 64}
    )
    assert_matches_oracle(engine, oracle, keys)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_with_replication_matches_oracle(algorithm):
    engine, oracle, keys = run_random_workload(
        algorithm, seed=7, config_extra={"replication_factor": 3}
    )
    assert oracle.total_rows > 0
    assert_matches_oracle(engine, oracle, keys)


def test_daiv_keyed_matches_oracle():
    engine, oracle, keys = run_random_workload(
        "dai-v", seed=8, config_extra={"daiv_keyed": True}, n_events=120
    )
    assert_matches_oracle(engine, oracle, keys)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_min_rate_strategy_matches_oracle(algorithm):
    engine, oracle, keys = run_random_workload(
        algorithm, seed=9, config_extra={"index_choice": "min-rate"}
    )
    assert_matches_oracle(engine, oracle, keys)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_window_with_replication_and_jfrt(algorithm):
    """All options on at once."""
    engine, oracle, keys = run_random_workload(
        algorithm,
        seed=10,
        window=10.0,
        config_extra={"replication_factor": 2, "jfrt_capacity": 32},
    )
    assert_matches_oracle(engine, oracle, keys)
