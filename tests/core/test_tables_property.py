"""Hypothesis property tests on the two-level hash tables.

Random operation sequences against simple reference models: the tables
must agree with a flat list implementation on membership, counts,
eviction and handoff filtering.
"""

from hypothesis import given, settings, strategies as st

from repro.core.tables import (
    StoredTuple,
    ValueLevelQueryTable,
    ValueLevelTupleTable,
)
from repro.sql.parser import parse_query
from repro.sql.query import LEFT, Subscriber, rewrite
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

R = Relation("R", ("A", "B"))
S = Relation("S", ("D", "E"))
SUB = Subscriber("n", 1, "ip")
BASE_QUERY = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E")


def make_rewritten(key_index, a, b, pub):
    query = BASE_QUERY.with_subscription(f"q{key_index}", 0.0, SUB)
    return rewrite(query, LEFT, DataTuple(R, (a, b), pub))


value = st.integers(min_value=0, max_value=3)


class TestVLTTProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(value, value, st.floats(min_value=0, max_value=100)),
            max_size=30,
        ),
        st.floats(min_value=0, max_value=100),
    )
    def test_matches_flat_model(self, tuples, cutoff):
        table = ValueLevelTupleTable()
        model = []
        for d, e, pub in tuples:
            stored = StoredTuple(DataTuple(S, (d, e), pub), "E", routing_ident=d)
            table.add(stored)
            model.append(stored)
        assert len(table) == len(model)

        # Candidate lookups agree with a linear scan.
        for probe in range(4):
            got = {id(s) for s in table.candidates("S", "E", probe)}
            want = {
                id(s) for s in model if s.tuple.value("E") == probe
            }
            assert got == want

        # Eviction agrees with the model.
        evicted = table.evict_older_than(cutoff)
        survivors = [s for s in model if s.tuple.pub_time >= cutoff]
        assert evicted == len(model) - len(survivors)
        assert len(table) == len(survivors)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(value, value), min_size=1, max_size=20),
        value,
    )
    def test_pop_matching_partitions(self, tuples, moved_ident):
        table = ValueLevelTupleTable()
        for d, e in tuples:
            table.add(StoredTuple(DataTuple(S, (d, e), 0.0), "E", routing_ident=d))
        total = len(table)
        moved = table.pop_matching(lambda ident: ident == moved_ident)
        assert len(moved) + len(table) == total
        assert all(s.routing_ident == moved_ident for s in moved)
        assert all(s.routing_ident != moved_ident for s in table)


class TestVLQTProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # query id
                value,  # A (bound select value)
                value,  # B (join value)
                st.floats(min_value=0, max_value=50),  # trigger time
            ),
            max_size=25,
        )
    )
    def test_key_collapsing_matches_model(self, inserts):
        table = ValueLevelQueryTable()
        model = {}
        for query_index, a, b, pub in inserts:
            rewritten = make_rewritten(query_index, a, b, pub)
            table.add(rewritten, routing_ident=0)
            previous = model.get(rewritten.key, -1.0)
            model[rewritten.key] = max(previous, pub)
        assert len(table) == len(model)
        for entry in table:
            assert entry.latest_trigger_time == model[entry.rewritten.key]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), value, value, st.floats(0, 50)),
            max_size=25,
        ),
        st.floats(min_value=0, max_value=50),
    )
    def test_eviction_by_latest_trigger(self, inserts, cutoff):
        table = ValueLevelQueryTable()
        model = {}
        for query_index, a, b, pub in inserts:
            rewritten = make_rewritten(query_index, a, b, pub)
            table.add(rewritten, 0)
            model[rewritten.key] = max(model.get(rewritten.key, -1.0), pub)
        table.evict_older_than(cutoff)
        survivors = {k for k, t in model.items() if t >= cutoff}
        assert {e.rewritten.key for e in table} == survivors
