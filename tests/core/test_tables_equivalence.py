"""Property-based equivalence: heap-evicting tables vs. naive scans.

The optimized tables in :mod:`repro.core.tables` replace full-bucket
eviction scans with lazy min-heaps.  Each test here drives the real
table and a deliberately naive reference model (a flat store whose
eviction rescans everything — the seed implementation's semantics)
through the same random add/evict/pop/candidates sequences and asserts
the observable state never diverges: same resident entries, same
trigger times, same eviction counts, same candidate sets, same handoff
results.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tables import (
    ProjectionStore,
    StoredProjection,
    StoredTuple,
    ValueLevelQueryTable,
    ValueLevelTupleTable,
)
from repro.sql.query import RewrittenQuery, Subscriber
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple, ProjectedTuple

SUB = Subscriber("prop", 1, "10.0.0.1")
R = Relation("R", ("A", "B"))

# Small pools keep collisions (duplicate keys, shared values) frequent.
times = st.integers(min_value=0, max_value=50).map(float)
keys = st.integers(min_value=0, max_value=9)
values = st.integers(min_value=0, max_value=4)
idents = st.integers(min_value=0, max_value=3)


def _rewritten(key_index: int, value: int, trigger_time: float) -> RewrittenQuery:
    return RewrittenQuery(
        key=f"q{key_index}+{value}",
        original_key=f"q{key_index}",
        group_signature="sig",
        subscriber=SUB,
        insertion_time=0.0,
        relation="R",
        expr=None,
        required_value=value,
        dis_attribute="A",
        dis_value=value,
        filters=(),
        select=(),
        trigger_pub_time=trigger_time,
    )


# ----------------------------------------------------------------------
# VLQT
# ----------------------------------------------------------------------

vlqt_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), keys, values, times, idents),
        st.tuples(st.just("evict"), times),
        st.tuples(st.just("pop"), idents),
        st.tuples(st.just("candidates"), values),
    ),
    max_size=60,
)


class NaiveVLQT:
    """Reference model: one flat dict, eviction rescans every entry."""

    def __init__(self):
        self.entries: dict[str, list] = {}  # key -> [ident, latest_time, value]

    def add(self, rewritten: RewrittenQuery, ident: int) -> None:
        entry = self.entries.get(rewritten.key)
        if entry is not None:
            if rewritten.trigger_pub_time > entry[1]:
                entry[1] = rewritten.trigger_pub_time
            return
        self.entries[rewritten.key] = [ident, rewritten.trigger_pub_time, rewritten.dis_value]

    def evict_older_than(self, cutoff: float) -> int:
        dead = [key for key, entry in self.entries.items() if entry[1] < cutoff]
        for key in dead:
            del self.entries[key]
        return len(dead)

    def pop_matching(self, should_move) -> list[str]:
        moved = [key for key, entry in self.entries.items() if should_move(entry[0])]
        for key in moved:
            del self.entries[key]
        return sorted(moved)

    def candidates(self, value: int) -> list[str]:
        return sorted(key for key, entry in self.entries.items() if entry[2] == value)

    def state(self) -> dict:
        return {key: (entry[0], entry[1]) for key, entry in self.entries.items()}


@settings(max_examples=80, deadline=None)
@given(vlqt_ops)
def test_vlqt_matches_naive_reference(ops):
    table = ValueLevelQueryTable()
    naive = NaiveVLQT()
    for op in ops:
        if op[0] == "add":
            _, key_index, value, time, ident = op
            rewritten = _rewritten(key_index, value, time)
            table.add(rewritten, ident)
            naive.add(rewritten, ident)
        elif op[0] == "evict":
            assert table.evict_older_than(op[1]) == naive.evict_older_than(op[1])
        elif op[0] == "pop":
            threshold = op[1]
            moved = table.pop_matching(lambda ident: ident <= threshold)
            assert sorted(e.rewritten.key for e in moved) == naive.pop_matching(
                lambda ident: ident <= threshold
            )
        else:
            got = table.candidates("R", "A", op[1])
            assert sorted(e.rewritten.key for e in got) == naive.candidates(op[1])
        assert len(table) == len(naive.entries)
        assert {
            e.rewritten.key: (e.routing_ident, e.latest_trigger_time) for e in table
        } == naive.state()


# ----------------------------------------------------------------------
# VLTT
# ----------------------------------------------------------------------

vltt_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), values, values, times, idents),
        st.tuples(st.just("evict"), times),
        st.tuples(st.just("pop"), idents),
        st.tuples(st.just("candidates"), values),
    ),
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(vltt_ops)
def test_vltt_matches_naive_reference(ops):
    table = ValueLevelTupleTable()
    naive: list[StoredTuple] = []  # reference: flat list, full-scan evict
    for op in ops:
        if op[0] == "add":
            _, a, b, time, ident = op
            stored = StoredTuple(DataTuple(R, (a, b), time), "A", ident)
            table.add(stored)
            naive.append(stored)
        elif op[0] == "evict":
            cutoff = op[1]
            expected = sum(1 for s in naive if s.tuple.pub_time < cutoff)
            naive = [s for s in naive if s.tuple.pub_time >= cutoff]
            assert table.evict_older_than(cutoff) == expected
        elif op[0] == "pop":
            threshold = op[1]
            moved = table.pop_matching(lambda ident: ident <= threshold)
            expected_moved = [s for s in naive if s.routing_ident <= threshold]
            naive = [s for s in naive if s.routing_ident > threshold]
            assert sorted(id(s) for s in moved) == sorted(id(s) for s in expected_moved)
        else:
            got = table.candidates("R", "A", op[1])
            expected = [s for s in naive if s.tuple.value("A") == op[1]]
            assert sorted(id(s) for s in got) == sorted(id(s) for s in expected)
        assert len(table) == len(naive)
        assert sorted(id(s) for s in table) == sorted(id(s) for s in naive)


# ----------------------------------------------------------------------
# ProjectionStore
# ----------------------------------------------------------------------

projection_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), values, values, times, idents),
        st.tuples(st.just("evict"), times),
        st.tuples(st.just("candidates"), values),
    ),
    max_size=60,
)


class NaiveProjections:
    """Reference: flat list, duplicate items collapse to the newer copy."""

    def __init__(self):
        self.entries: list[StoredProjection] = []

    def add(self, stored: StoredProjection) -> bool:
        for existing in self.entries:
            if (
                existing.group_signature == stored.group_signature
                and existing.projection.relation_name == stored.projection.relation_name
                and existing.value == stored.value
                and existing.projection.items == stored.projection.items
            ):
                if stored.projection.pub_time > existing.projection.pub_time:
                    existing.projection = stored.projection
                return False
        self.entries.append(stored)
        return True

    def evict_older_than(self, cutoff: float) -> int:
        dead = [s for s in self.entries if s.projection.pub_time < cutoff]
        self.entries = [s for s in self.entries if s.projection.pub_time >= cutoff]
        return len(dead)

    def candidates(self, value: int) -> list:
        return [s for s in self.entries if s.value == value]

    def state(self) -> list:
        return sorted(
            (s.value, s.projection.items, s.projection.pub_time) for s in self.entries
        )


@settings(max_examples=80, deadline=None)
@given(projection_ops)
def test_projection_store_matches_naive_reference(ops):
    store = ProjectionStore()
    naive = NaiveProjections()
    for op in ops:
        if op[0] == "add":
            _, a, value, time, ident = op
            projection = ProjectedTuple("R", (("A", a),), time)

            def make(p=projection, v=value, i=ident):
                return StoredProjection(
                    projection=p, group_signature="sig", value=v, routing_ident=i
                )

            # Separate instances: the store may mutate its own copy on a
            # duplicate with a newer pub_time.
            assert store.add(make()) == naive.add(make())
        elif op[0] == "evict":
            assert store.evict_older_than(op[1]) == naive.evict_older_than(op[1])
        else:
            got = store.candidates("sig", "R", op[1])
            expected = naive.candidates(op[1])
            assert sorted(
                (s.value, s.projection.items, s.projection.pub_time) for s in got
            ) == sorted(
                (s.value, s.projection.items, s.projection.pub_time) for s in expected
            )
        assert len(store) == len(naive.entries)
        assert (
            sorted((s.value, s.projection.items, s.projection.pub_time) for s in store)
            == naive.state()
        )
