"""Miscellaneous engine behaviour: adoption, accounting, config."""

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig
from repro.errors import QueryError
from repro.core.engine import make_algorithm


class TestConfig:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(QueryError):
            make_algorithm("turbo-join")

    def test_all_registered_algorithms_instantiate(self):
        from repro.core.engine import ALGORITHMS

        for name in ALGORITHMS:
            assert make_algorithm(name).name == name

    def test_unknown_strategy_rejected(self, small_network):
        with pytest.raises(QueryError):
            ContinuousQueryEngine(
                small_network, EngineConfig(index_choice="clairvoyant")
            )


class TestAdoption:
    def test_adopt_idempotent(self, engine_factory):
        engine = engine_factory()
        node = engine.network.nodes[0]
        state = engine.state(node)
        assert engine.adopt(node) is state
        assert engine.state(node) is state

    def test_all_nodes_adopted_at_construction(self, engine_factory):
        engine = engine_factory()
        for node in engine.network:
            assert node.app is not None

    def test_late_joiner_adopted_lazily(self, engine_factory):
        engine = engine_factory()
        newcomer = engine.network.join("latecomer")
        # The join handoff already attached state via the transfer hook.
        assert engine.state(newcomer) is newcomer.app


class TestTrafficAccounting:
    def test_message_types_attributed(
        self, engine_factory, two_relation_schema, simple_join_sql
    ):
        engine = engine_factory(algorithm="sai", index_choice="left")
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        engine.subscribe(engine.network.nodes[0], simple_join_sql, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        by_type = engine.traffic.messages_by_type
        assert by_type["query"] == 1
        # 2 tuples x 3 attributes, at both levels.
        assert by_type["al-index"] == 6
        assert by_type["vl-index"] == 6
        assert by_type["join"] >= 1
        assert by_type["notification"] == 1

    def test_daiv_skips_value_level_tuple_indexing(
        self, engine_factory, two_relation_schema
    ):
        engine = engine_factory(algorithm="dai-v")
        R = two_relation_schema.relation("R")
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        assert engine.traffic.messages_by_type.get("vl-index", 0) == 0
        assert engine.traffic.messages_by_type["al-index"] == 3

    def test_traffic_property_is_network_stats(self, engine_factory):
        engine = engine_factory()
        assert engine.traffic is engine.network.stats


class TestDeliveredBookkeeping:
    def test_delivered_rows_empty_for_unknown_query(self, engine_factory):
        engine = engine_factory()
        assert engine.delivered_rows("nope") == set()

    def test_listener_fires_once_per_identity(
        self, engine_factory, two_relation_schema, simple_join_sql
    ):
        engine = engine_factory(algorithm="sai", index_choice="left")
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        query = engine.subscribe(
            engine.network.nodes[0], simple_join_sql, two_relation_schema
        )
        seen = []
        engine.add_notification_listener(query.key, lambda n: seen.append(n.row))
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        engine.clock.advance(1)
        # An identical S tuple: same row identity, listener must not refire.
        engine.publish(engine.network.nodes[3], S, {"D": 2, "E": 7, "F": 0})
        assert seen == [(1, 2)]

    def test_notifications_carry_query_key(
        self, engine_factory, two_relation_schema, simple_join_sql
    ):
        engine = engine_factory(algorithm="dai-t")
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        query = engine.subscribe(
            engine.network.nodes[0], simple_join_sql, two_relation_schema
        )
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert all(
            n.query_key == query.key for n in engine.delivered[query.key]
        )


class TestMixedAlgorithmIsolation:
    def test_two_engines_on_separate_networks_do_not_interact(
        self, two_relation_schema, simple_join_sql
    ):
        first = ContinuousQueryEngine(
            ChordNetwork.build(16), EngineConfig(algorithm="sai", index_choice="left")
        )
        second = ContinuousQueryEngine(
            ChordNetwork.build(16), EngineConfig(algorithm="dai-t", index_choice="left")
        )
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        query = first.subscribe(
            first.network.nodes[0], simple_join_sql, two_relation_schema
        )
        first.clock.advance(1)
        second.clock.advance(1)
        second.publish(second.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        second.publish(second.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert first.delivered_rows(query.key) == set()
