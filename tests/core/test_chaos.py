"""The headline chaos guarantee: exact convergence under faults.

For every algorithm (SAI, DAI-Q, DAI-T, DAI-V), a workload run under
>= 5% message loss, injected delivery delays and at least three abrupt
node crashes — with soft-state lease recovery — delivers *exactly* the
answer set a centralized oracle computes, with zero duplicate
notifications.  Runs are deterministic in ``(workload seed, plan
seed)``.
"""

import random

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle
from repro.faults import ChaosHarness, DelaySpec, FaultInjector, FaultPlan

ALGORITHMS = ["sai", "dai-q", "dai-t", "dai-v"]

SCHEMA = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})

CHAOS_PLAN = FaultPlan(
    loss_probability=0.05,
    delay=DelaySpec(probability=0.2, minimum=0.5, maximum=4.0),
    seed=17,
)


def run_chaos_workload(
    algorithm,
    seed,
    *,
    plan=CHAOS_PLAN,
    n_events=160,
    n_nodes=48,
    domain=6,
    crash_every=40,
):
    """One seeded chaos run; returns (engine, oracle, harness, queries)."""
    injector = FaultInjector(plan)
    network = ChordNetwork.build(n_nodes, injector=injector)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm=algorithm, index_choice="random", seed=seed)
    )
    oracle = CentralizedOracle()
    rng = random.Random(seed)
    harness = ChaosHarness(engine, injector)

    subscribers = [network.nodes[1], network.nodes[2]]
    queries = []
    for subscriber in subscribers:
        harness.protect(subscriber)
        query = engine.subscribe(
            subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", SCHEMA
        )
        oracle.subscribe(query)
        queries.append(query)

    R, S = SCHEMA.relation("R"), SCHEMA.relation("S")
    for index in range(n_events):
        engine.clock.advance(1.0)
        origin = network.random_node(rng)
        if rng.random() < 0.5:
            tup = engine.publish(
                origin, R, {"A": index, "B": rng.randrange(domain)}
            )
        else:
            tup = engine.publish(
                origin, S, {"D": index, "E": rng.randrange(domain)}
            )
        oracle.insert(tup)
        if index % crash_every == crash_every - 1:
            harness.crash()

    harness.settle()
    return engine, oracle, harness, queries


class TestChaosConvergence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_exact_oracle_equivalence_under_faults(self, algorithm):
        engine, oracle, harness, queries = run_chaos_workload(algorithm, seed=42)
        assert harness.injector.crashes >= 3
        stats = engine.traffic.snapshot()
        assert stats.messages_dropped > 0  # the plan really did bite
        assert stats.messages_delayed > 0
        for query in queries:
            got = engine.delivered_rows(query.key)
            want = oracle.rows_for(query.key)
            assert got == want, (
                f"{algorithm}: delivered {len(got)} rows, oracle has "
                f"{len(want)} (missing={len(want - got)}, extra={len(got - want)})"
            )
        assert engine.duplicate_deliveries == 0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_subscriber_inboxes_have_no_duplicates(self, algorithm):
        engine, _, _, queries = run_chaos_workload(algorithm, seed=43)
        for query in queries:
            subscriber = engine.network.node_at(query.subscriber.ident)
            inbox = engine.notifications(subscriber)
            identities = [n.identity for n in inbox if n.query_key == query.key]
            assert len(identities) == len(set(identities))


class TestChaosMetrics:
    def test_fault_metrics_surface_in_snapshots(self):
        engine, _, harness, queries = run_chaos_workload("dai-t", seed=44)
        traffic = engine.traffic.snapshot()
        assert traffic.messages_dropped > 0
        assert traffic.retries > 0
        assert harness.injector.backoff_total > 0.0
        # Crash every rewriter holding the first query's attribute-level
        # copies; the next lease refresh must restore them — and count it.
        key = queries[0].key
        holders = [
            node
            for node in engine.network.nodes
            if any(stored.query.key == key for stored in engine.state(node).alqt)
        ]
        assert holders
        for holder in holders:
            harness.crash(holder)
        harness.settle()
        load = engine.load_snapshot()
        assert load.total_lease_reinstalls >= 1
        assert sum(load.lease_reinstalls.values()) == load.total_lease_reinstalls

    def test_windowed_chaos_converges_too(self):
        plan = FaultPlan(
            loss_probability=0.06,
            delay=DelaySpec(probability=0.15, minimum=0.5, maximum=3.0),
            seed=23,
        )
        engine, oracle, harness, queries = run_chaos_workload(
            "sai", seed=45, plan=plan
        )
        assert harness.injector.crashes >= 3
        for query in queries:
            assert engine.delivered_rows(query.key) == oracle.rows_for(query.key)


class TestChaosDeterminism:
    def test_identical_seeds_identical_outcome(self):
        first_engine, _, _, first_queries = run_chaos_workload("dai-q", seed=46)
        second_engine, _, _, second_queries = run_chaos_workload("dai-q", seed=46)
        for fq, sq in zip(first_queries, second_queries):
            assert first_engine.delivered_rows(fq.key) == second_engine.delivered_rows(
                sq.key
            )
        first = first_engine.traffic.snapshot()
        second = second_engine.traffic.snapshot()
        assert first.hops == second.hops
        assert first.messages == second.messages
        assert first.messages_dropped == second.messages_dropped
        assert first.messages_delayed == second.messages_delayed

    def test_different_plan_seed_changes_fault_pattern(self):
        base = run_chaos_workload("dai-q", seed=46)[0].traffic.snapshot()
        other_plan = FaultPlan(
            loss_probability=0.05,
            delay=DelaySpec(probability=0.2, minimum=0.5, maximum=4.0),
            seed=99,
        )
        other = run_chaos_workload("dai-q", seed=46, plan=other_plan)[0]
        assert other.traffic.snapshot().messages_dropped != base.messages_dropped
