"""Tests for notification records and batching."""

from repro.core.notifications import Notification, group_by_subscriber


def make_notification(key="q", subscriber=1, row=(1, 2), value="7"):
    return Notification(
        query_key=key,
        subscriber_ident=subscriber,
        row=row,
        join_value_repr=value,
        trigger_pub_time=1.0,
        match_pub_time=2.0,
        created_at=3.0,
    )


class TestNotification:
    def test_identity_collapses_equal_rows(self):
        assert make_notification().identity == make_notification().identity

    def test_identity_distinguishes_rows(self):
        assert make_notification(row=(1, 2)).identity != make_notification(row=(1, 3)).identity

    def test_identity_distinguishes_join_values(self):
        assert make_notification(value="7").identity != make_notification(value="8").identity

    def test_identity_distinguishes_queries(self):
        assert make_notification(key="a").identity != make_notification(key="b").identity

    def test_identity_ignores_times(self):
        late = Notification(
            query_key="q",
            subscriber_ident=1,
            row=(1, 2),
            join_value_repr="7",
            trigger_pub_time=9.0,
            match_pub_time=9.0,
            created_at=9.0,
        )
        assert late.identity == make_notification().identity

    def test_frozen(self):
        notification = make_notification()
        try:
            notification.row = (9, 9)
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestGrouping:
    def test_groups_by_subscriber(self):
        batch = [
            make_notification(subscriber=1),
            make_notification(subscriber=2),
            make_notification(subscriber=1, row=(5, 6)),
        ]
        grouped = group_by_subscriber(batch)
        assert set(grouped) == {1, 2}
        assert len(grouped[1]) == 2
        assert len(grouped[2]) == 1

    def test_empty(self):
        assert group_by_subscriber([]) == {}

    def test_preserves_order(self):
        first = make_notification(row=(1, 1))
        second = make_notification(row=(2, 2))
        grouped = group_by_subscriber([first, second])
        assert grouped[1] == [first, second]
