"""Tests for SAI index-attribute selection strategies."""

import pytest

from repro.core.index_choice import ArrivalStats, make_strategy
from repro.errors import QueryError
from repro.sql.query import LEFT, RIGHT


class TestArrivalStats:
    def test_record_counts(self):
        stats = ArrivalStats()
        for value in (1, 1, 2):
            stats.record(value)
        assert stats.count == 3
        assert stats.distinct_values == 2
        assert stats.values[1] == 2

    def test_entropy_uniform_is_one(self):
        stats = ArrivalStats()
        for value in range(10):
            stats.record(value)
        assert stats.normalized_entropy() == pytest.approx(1.0)

    def test_entropy_skewed_is_low(self):
        stats = ArrivalStats()
        for _ in range(99):
            stats.record(0)
        stats.record(1)
        assert stats.normalized_entropy() < 0.1

    def test_entropy_empty_or_single(self):
        stats = ArrivalStats()
        assert stats.normalized_entropy() == 0.0
        stats.record(5)
        assert stats.normalized_entropy() == 0.0


class TestStrategyRegistry:
    def test_known_names(self):
        for name in ("left", "random", "min-rate", "max-rate", "uniformity"):
            assert make_strategy(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            make_strategy("psychic")


class TestStrategiesOnEngine:
    def _warmed_engine(self, engine_factory, schema, r_count, s_count):
        """An engine whose rewriters have seen r_count R and s_count S tuples."""
        engine = engine_factory(algorithm="sai")
        R, S = schema.relation("R"), schema.relation("S")
        for index in range(r_count):
            engine.publish(
                engine.network.nodes[1], R, {"A": index, "B": index % 3, "C": 0}
            )
        for index in range(s_count):
            engine.publish(
                engine.network.nodes[2], S, {"D": index, "E": index % 3, "F": 0}
            )
        return engine

    def test_left_strategy(self, engine_factory, two_relation_schema):
        engine = self._warmed_engine(engine_factory, two_relation_schema, 1, 1)
        query = engine.subscribe(
            engine.network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        strategy = make_strategy("left")
        assert strategy.choose(engine, engine.network.nodes[0], query) == LEFT

    def test_min_rate_prefers_slow_relation(
        self, engine_factory, two_relation_schema, simple_join_sql
    ):
        engine = self._warmed_engine(engine_factory, two_relation_schema, 50, 5)
        from repro.sql.parser import parse_query

        query = parse_query(simple_join_sql, two_relation_schema)
        strategy = make_strategy("min-rate")
        # S (right) saw far fewer tuples: index there.
        assert strategy.choose(engine, engine.network.nodes[0], query) == RIGHT

    def test_max_rate_prefers_fast_relation(
        self, engine_factory, two_relation_schema, simple_join_sql
    ):
        engine = self._warmed_engine(engine_factory, two_relation_schema, 50, 5)
        from repro.sql.parser import parse_query

        query = parse_query(simple_join_sql, two_relation_schema)
        strategy = make_strategy("max-rate")
        assert strategy.choose(engine, engine.network.nodes[0], query) == LEFT

    def test_uniformity_prefers_less_skewed_attribute(
        self, engine_factory, two_relation_schema
    ):
        engine = engine_factory(algorithm="sai")
        R, S = two_relation_schema.relation("R"), two_relation_schema.relation("S")
        # R.B takes many distinct values; S.E is constant.
        for index in range(30):
            engine.publish(engine.network.nodes[1], R, {"A": 0, "B": index, "C": 0})
            engine.publish(engine.network.nodes[2], S, {"D": 0, "E": 7, "F": 0})
        from repro.sql.parser import parse_query

        query = parse_query(
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", two_relation_schema
        )
        strategy = make_strategy("uniformity")
        assert strategy.choose(engine, engine.network.nodes[0], query) == LEFT

    def test_probe_traffic_accounted(
        self, engine_factory, two_relation_schema, simple_join_sql
    ):
        engine = engine_factory(algorithm="sai", index_choice="min-rate")
        engine.subscribe(
            engine.network.nodes[0], simple_join_sql, two_relation_schema
        )
        assert "rate-probe" in engine.traffic.hops_by_type

    def test_min_rate_cuts_traffic_on_imbalanced_streams(
        self, engine_factory, two_relation_schema, simple_join_sql
    ):
        """The paper's claim behind Figure 5.4, on a micro workload."""

        def run(strategy):
            engine = engine_factory(algorithm="sai", index_choice=strategy, seed=3)
            R = two_relation_schema.relation("R")
            S = two_relation_schema.relation("S")
            # Warm-up so the probes see the imbalance.
            for index in range(40):
                engine.publish(engine.network.nodes[1], R, {"A": index, "B": index % 4, "C": 0})
            for index in range(4):
                engine.publish(engine.network.nodes[2], S, {"D": index, "E": index % 4, "F": 0})
            engine.clock.advance(1)
            for index in range(10):
                engine.subscribe(
                    engine.network.nodes[index], simple_join_sql, two_relation_schema
                )
            start = engine.traffic.hops
            for index in range(80):
                engine.clock.advance(1)
                engine.publish(engine.network.nodes[1], R, {"A": index, "B": index % 4, "C": 0})
            for index in range(8):
                engine.clock.advance(1)
                engine.publish(engine.network.nodes[2], S, {"D": index, "E": index % 4, "F": 0})
            return engine.traffic.hops - start

        assert run("min-rate") < run("max-rate")
