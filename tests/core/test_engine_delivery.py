"""Notification delivery: direct, offline parking, reconnection handoff."""

import pytest

ALGORITHMS = ["sai", "dai-q", "dai-t", "dai-v"]


def setup_join(engine, schema, sql="SELECT R.A, S.D FROM R, S WHERE R.B = S.E"):
    subscriber = engine.network.nodes[0]
    query = engine.subscribe(subscriber, sql, schema)
    return subscriber, query


def fire_pair(engine, schema, b=7, a=1, d=2):
    R, S = schema.relation("R"), schema.relation("S")
    engine.clock.advance(1)
    engine.publish(engine.network.nodes[1], R, {"A": a, "B": b, "C": 0})
    engine.clock.advance(1)
    engine.publish(engine.network.nodes[2], S, {"D": d, "E": b, "F": 0})


@pytest.fixture(params=ALGORITHMS)
def engine(request, engine_factory):
    return engine_factory(algorithm=request.param)


class TestOnlineDelivery:
    def test_notification_lands_in_inbox(self, engine, two_relation_schema):
        subscriber, query = setup_join(engine, two_relation_schema)
        fire_pair(engine, two_relation_schema)
        inbox = engine.notifications(subscriber)
        assert len(inbox) == 1
        assert inbox[0].row == (1, 2)
        assert inbox[0].query_key == query.key

    def test_notification_times_recorded(self, engine, two_relation_schema):
        subscriber, _ = setup_join(engine, two_relation_schema)
        fire_pair(engine, two_relation_schema)
        notification = engine.notifications(subscriber)[0]
        assert notification.match_pub_time >= 0
        assert notification.created_at == engine.clock.now

    def test_direct_delivery_is_one_hop(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="sai")
        subscriber, _ = setup_join(engine, two_relation_schema)
        fire_pair(engine, two_relation_schema)
        hops = engine.traffic.hops_by_type.get("notification", None)
        messages = engine.traffic.messages_by_type.get("notification", 0)
        assert messages >= 1
        assert hops is not None and hops <= messages  # <= 1 hop each


class TestOfflinePresence:
    def test_offline_subscriber_notifications_parked(self, engine, two_relation_schema):
        subscriber, query = setup_join(engine, two_relation_schema)
        engine.go_offline(subscriber)
        fire_pair(engine, two_relation_schema)
        assert engine.notifications(subscriber) == []
        assert engine.delivered_rows(query.key) == set()
        # The notification is parked at Successor(Id(n)) — the node
        # itself, since it never left the ring.
        assert engine.state(subscriber).parked.get(subscriber.ident)

    def test_come_online_flushes_parked(self, engine, two_relation_schema):
        subscriber, query = setup_join(engine, two_relation_schema)
        engine.go_offline(subscriber)
        fire_pair(engine, two_relation_schema)
        recovered = engine.come_online(subscriber)
        assert len(recovered) == 1
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}
        assert engine.notifications(subscriber)[0].row == (1, 2)

    def test_notifications_after_return_delivered_directly(
        self, engine, two_relation_schema
    ):
        subscriber, query = setup_join(engine, two_relation_schema)
        engine.go_offline(subscriber)
        engine.come_online(subscriber)
        fire_pair(engine, two_relation_schema)
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}


class TestDisconnectReconnect:
    def test_missed_notifications_recovered_on_rejoin(
        self, engine, two_relation_schema
    ):
        subscriber, query = setup_join(engine, two_relation_schema)
        key = subscriber.key
        engine.disconnect(subscriber)
        engine.network.run_stabilization(2, fix_all_fingers=True)
        fire_pair(engine, two_relation_schema)
        rejoined = engine.reconnect(key)
        assert rejoined.ident == subscriber.ident
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}
        assert [n.row for n in engine.notifications(rejoined)] == [(1, 2)]

    def test_rejoined_node_receives_future_notifications(
        self, engine, two_relation_schema
    ):
        subscriber, query = setup_join(engine, two_relation_schema)
        key = subscriber.key
        engine.disconnect(subscriber)
        engine.network.run_stabilization(2, fix_all_fingers=True)
        rejoined = engine.reconnect(key)
        engine.network.run_stabilization(2, fix_all_fingers=True)
        fire_pair(engine, two_relation_schema)
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}


class TestBatching:
    def test_multiple_rows_one_event_grouped(self, engine_factory, two_relation_schema):
        """Several notifications to one receiver travel in one message."""
        engine = engine_factory(algorithm="sai", index_choice="left")
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        subscriber, query = setup_join(engine, two_relation_schema)
        for a in range(4):
            engine.clock.advance(1)
            engine.publish(engine.network.nodes[1], R, {"A": a, "B": 7, "C": 0})
        before = engine.traffic.messages_by_type.get("notification", 0)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 9, "E": 7, "F": 0})
        after = engine.traffic.messages_by_type.get("notification", 0)
        assert len(engine.delivered_rows(query.key)) == 4
        assert after - before == 1  # one batched message, four rows
