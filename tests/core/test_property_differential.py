"""Hypothesis-driven differential tests on small workloads.

Hypothesis generates arbitrary interleavings of subscriptions and tuple
insertions over a tiny value domain (to force collisions); each
algorithm must deliver exactly the oracle's answer sets, and shrinking
produces minimal counterexamples when something breaks.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle

SCHEMA = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})

# Workload step strategies ------------------------------------------------
value = st.integers(min_value=0, max_value=3)

subscribe_step = st.tuples(
    st.just("query"),
    st.sampled_from(["A", "B"]),
    st.sampled_from(["D", "E"]),
    st.one_of(st.none(), value),  # optional S-side filter on E
)
r_tuple_step = st.tuples(st.just("R"), value, value)
s_tuple_step = st.tuples(st.just("S"), value, value)

workload = st.lists(
    st.one_of(subscribe_step, r_tuple_step, s_tuple_step),
    min_size=1,
    max_size=40,
)


def replay(algorithm, steps, window=None):
    network = ChordNetwork.build(16)
    engine = ContinuousQueryEngine(
        network,
        EngineConfig(algorithm=algorithm, index_choice="random", window=window, seed=0),
    )
    oracle = CentralizedOracle(window=window)
    R, S = SCHEMA.relation("R"), SCHEMA.relation("S")
    keys = []
    for index, step in enumerate(steps):
        engine.clock.advance(1.0)
        origin = network.nodes[index % len(network)]
        if step[0] == "query":
            _, left_attr, right_attr, filter_value = step
            sql = f"SELECT R.A, S.D FROM R, S WHERE R.{left_attr} = S.{right_attr}"
            if filter_value is not None:
                sql += f" AND S.E = {filter_value}"
            query = engine.subscribe(origin, sql, SCHEMA)
            oracle.subscribe(query)
            keys.append(query.key)
        elif step[0] == "R":
            tup = engine.publish(origin, R, {"A": step[1], "B": step[2]})
            oracle.insert(tup)
        else:
            tup = engine.publish(origin, S, {"D": step[1], "E": step[2]})
            oracle.insert(tup)
    return engine, oracle, keys


COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("algorithm", ["sai", "dai-q", "dai-t", "dai-v"])
class TestPropertyDifferential:
    @COMMON_SETTINGS
    @given(steps=workload)
    def test_matches_oracle_unbounded(self, algorithm, steps):
        engine, oracle, keys = replay(algorithm, steps)
        for key in keys:
            assert engine.delivered_rows(key) == oracle.rows_for(key)

    @COMMON_SETTINGS
    @given(steps=workload, window=st.sampled_from([2.0, 5.0, 15.0]))
    def test_matches_oracle_windowed(self, algorithm, steps, window):
        engine, oracle, keys = replay(algorithm, steps, window=window)
        for key in keys:
            assert engine.delivered_rows(key) == oracle.rows_for(key)
