"""End-to-end behaviour of the engine under each algorithm."""

import pytest

from repro.errors import QueryError

ALGORITHMS = ["sai", "dai-q", "dai-t", "dai-v"]


@pytest.fixture(params=ALGORITHMS)
def engine(request, engine_factory):
    return engine_factory(algorithm=request.param)


def relations(engine, schema):
    return schema.relation("R"), schema.relation("S")


class TestSingleJoin:
    def test_basic_notification(self, engine, two_relation_schema, simple_join_sql):
        R, S = relations(engine, two_relation_schema)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_order_independence(self, engine, two_relation_schema, simple_join_sql):
        """S-then-R insertion produces the same answer as R-then-S."""
        R, S = relations(engine, two_relation_schema)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_non_matching_values_silent(self, engine, two_relation_schema, simple_join_sql):
        R, S = relations(engine, two_relation_schema)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 8, "F": 0})
        assert engine.delivered_rows(query.key) == set()

    def test_tuples_before_subscription_ignored(
        self, engine, two_relation_schema, simple_join_sql
    ):
        """pubT(t) >= insT(q): older tuples never trigger (Section 3.2)."""
        R, S = relations(engine, two_relation_schema)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == set()

    def test_tuple_at_subscription_instant_triggers(
        self, engine, two_relation_schema, simple_join_sql
    ):
        R, S = relations(engine, two_relation_schema)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        # Same logical instant: pubT == insT satisfies >=.
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {("7", (1, 2))}

    def test_many_matches(self, engine, two_relation_schema, simple_join_sql):
        R, S = relations(engine, two_relation_schema)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        for a in range(3):
            engine.clock.advance(1)
            engine.publish(engine.network.nodes[1], R, {"A": a, "B": 7, "C": 0})
        for d in range(2):
            engine.clock.advance(1)
            engine.publish(engine.network.nodes[2], S, {"D": d, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == {
            ("7", (a, d)) for a in range(3) for d in range(2)
        }

    def test_local_filter_enforced(self, engine, two_relation_schema):
        R, S = relations(engine, two_relation_schema)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(
            subscriber,
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 1",
            two_relation_schema,
        )
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[3], S, {"D": 3, "E": 7, "F": 1})
        assert engine.delivered_rows(query.key) == {("7", (1, 3))}

    def test_multiple_queries_same_condition(self, engine, two_relation_schema):
        """Grouped queries are all answered."""
        R, S = relations(engine, two_relation_schema)
        first = engine.subscribe(
            engine.network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        second = engine.subscribe(
            engine.network.nodes[1],
            "SELECT R.C, S.F FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], R, {"A": 1, "B": 7, "C": 5})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[3], S, {"D": 2, "E": 7, "F": 6})
        assert engine.delivered_rows(first.key) == {("7", (1, 2))}
        assert engine.delivered_rows(second.key) == {("7", (5, 6))}

    def test_two_queries_different_conditions(self, engine, two_relation_schema):
        R, S = relations(engine, two_relation_schema)
        on_b = engine.subscribe(
            engine.network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
            two_relation_schema,
        )
        on_c = engine.subscribe(
            engine.network.nodes[1],
            "SELECT R.A, S.D FROM R, S WHERE R.C = S.F",
            two_relation_schema,
        )
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], R, {"A": 1, "B": 7, "C": 9})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[3], S, {"D": 2, "E": 7, "F": 8})
        assert engine.delivered_rows(on_b.key) == {("7", (1, 2))}
        assert engine.delivered_rows(on_c.key) == set()


class TestQueryTypeSupport:
    def test_t2_only_on_daiv(self, engine_factory, two_relation_schema):
        sql = "SELECT R.A, S.D FROM R, S WHERE R.B + R.C = S.E"
        for algorithm in ("sai", "dai-q", "dai-t"):
            engine = engine_factory(algorithm=algorithm)
            with pytest.raises(QueryError):
                engine.subscribe(engine.network.nodes[0], sql, two_relation_schema)

    def test_daiv_evaluates_t2(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="dai-v")
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        query = engine.subscribe(
            engine.network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE 4 * R.B + R.C + 8 = 5 * S.E + S.D - S.F",
            two_relation_schema,
        )
        engine.clock.advance(1)
        # Left value: 4*4 + 9 + 8 = 33.
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 4, "C": 9})
        engine.clock.advance(1)
        # Right value: 5*6 + 5 - 2 = 33 — matches.
        engine.publish(engine.network.nodes[2], S, {"D": 5, "E": 6, "F": 2})
        engine.clock.advance(1)
        # Right value: 5*6 + 5 - 3 = 32 — no match.
        engine.publish(engine.network.nodes[3], S, {"D": 5, "E": 6, "F": 3})
        assert engine.delivered_rows(query.key) == {("33", (1, 5))}

    def test_daiv_t2_reverse_order(self, engine_factory, two_relation_schema):
        engine = engine_factory(algorithm="dai-v")
        R = two_relation_schema.relation("R")
        S = two_relation_schema.relation("S")
        query = engine.subscribe(
            engine.network.nodes[0],
            "SELECT R.A, S.D FROM R, S WHERE R.B + R.C = S.E + S.F",
            two_relation_schema,
        )
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 5, "E": 6, "F": 4})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 4, "C": 6})
        assert engine.delivered_rows(query.key) == {("10", (1, 5))}


class TestUnsubscribe:
    def test_no_notifications_after_unsubscribe(
        self, engine, two_relation_schema, simple_join_sql
    ):
        R, S = relations(engine, two_relation_schema)
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        engine.clock.advance(1)
        engine.unsubscribe(subscriber, query)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(query.key) == set()

    def test_unknown_query_rejected(self, engine, two_relation_schema, simple_join_sql):
        subscriber = engine.network.nodes[0]
        query = engine.subscribe(subscriber, simple_join_sql, two_relation_schema)
        engine.unsubscribe(subscriber, query)
        with pytest.raises(QueryError):
            engine.unsubscribe(subscriber, query)

    def test_other_queries_unaffected(self, engine, two_relation_schema, simple_join_sql):
        R, S = relations(engine, two_relation_schema)
        keep = engine.subscribe(
            engine.network.nodes[0], simple_join_sql, two_relation_schema
        )
        drop = engine.subscribe(
            engine.network.nodes[1], simple_join_sql, two_relation_schema
        )
        engine.unsubscribe(engine.network.nodes[1], drop)
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[2], R, {"A": 1, "B": 7, "C": 0})
        engine.clock.advance(1)
        engine.publish(engine.network.nodes[3], S, {"D": 2, "E": 7, "F": 0})
        assert engine.delivered_rows(keep.key) == {("7", (1, 2))}
        assert engine.delivered_rows(drop.key) == set()


class TestQueryKeys:
    def test_keys_unique_and_prefixed_by_node_key(
        self, engine, two_relation_schema, simple_join_sql
    ):
        node = engine.network.nodes[0]
        first = engine.subscribe(node, simple_join_sql, two_relation_schema)
        second = engine.subscribe(node, simple_join_sql, two_relation_schema)
        assert first.key != second.key
        assert first.key.startswith(node.key)

    def test_subscriber_identity_recorded(
        self, engine, two_relation_schema, simple_join_sql
    ):
        node = engine.network.nodes[3]
        query = engine.subscribe(node, simple_join_sql, two_relation_schema)
        assert query.subscriber.ident == node.ident
        assert query.subscriber.ip == node.ip
