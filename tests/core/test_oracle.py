"""Tests for the centralized oracle itself (against hand-computed joins)."""

import pytest

from repro.core.oracle import CentralizedOracle
from repro.errors import QueryError
from repro.sql.parser import parse_query
from repro.sql.query import Subscriber
from repro.sql.schema import Relation
from repro.sql.tuples import DataTuple

R = Relation("R", ("A", "B"))
S = Relation("S", ("D", "E"))
SUB = Subscriber("n", 1, "ip")


def bound(sql, key="q", t=0.0):
    return parse_query(sql).with_subscription(key, t, SUB)


def r(a, b, pub):
    return DataTuple(R, (a, b), pub)


def s(d, e, pub):
    return DataTuple(S, (d, e), pub)


class TestOracle:
    def test_requires_bound_queries(self):
        oracle = CentralizedOracle()
        with pytest.raises(QueryError):
            oracle.subscribe(parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.E"))

    def test_simple_join(self):
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E"))
        oracle.insert(r(1, 7, 1.0))
        oracle.insert(s(2, 7, 2.0))
        assert oracle.rows_for("q") == {("7", (1, 2))}

    def test_order_independent(self):
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E"))
        oracle.insert(s(2, 7, 1.0))
        oracle.insert(r(1, 7, 2.0))
        assert oracle.rows_for("q") == {("7", (1, 2))}

    def test_time_semantics(self):
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", t=5.0))
        oracle.insert(r(1, 7, 4.0))  # too old
        oracle.insert(s(2, 7, 6.0))
        assert oracle.rows_for("q") == set()

    def test_window(self):
        oracle = CentralizedOracle(window=3.0)
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E"))
        oracle.insert(r(1, 7, 1.0))
        oracle.insert(s(2, 7, 10.0))  # 9 apart > 3
        oracle.insert(s(3, 7, 3.5))  # 2.5 apart
        assert oracle.rows_for("q") == {("7", (1, 3))}

    def test_filters(self):
        oracle = CentralizedOracle()
        oracle.subscribe(
            bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.D = 2")
        )
        oracle.insert(r(1, 7, 1.0))
        oracle.insert(s(2, 7, 2.0))
        oracle.insert(s(3, 7, 3.0))
        assert oracle.rows_for("q") == {("7", (1, 2))}

    def test_row_collapsing(self):
        """Identical projected rows for the same join value collapse."""
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E"))
        oracle.insert(r(1, 7, 1.0))
        oracle.insert(r(1, 7, 2.0))  # same projection
        oracle.insert(s(2, 7, 3.0))
        assert oracle.rows_for("q") == {("7", (1, 2))}

    def test_same_row_different_value_kept(self):
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E"))
        oracle.insert(r(1, 7, 1.0))
        oracle.insert(r(1, 8, 1.5))
        oracle.insert(s(2, 7, 2.0))
        oracle.insert(s(2, 8, 2.5))
        assert oracle.rows_for("q") == {("7", (1, 2)), ("8", (1, 2))}

    def test_t2_expression(self):
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE 2 * R.B = S.E + 1"))
        oracle.insert(r(1, 4, 1.0))  # left value 8
        oracle.insert(s(2, 7, 2.0))  # right value 8 — match
        oracle.insert(s(3, 6, 3.0))  # right value 7 — no match
        assert oracle.rows_for("q") == {("8", (1, 2))}

    def test_multiple_queries_tracked_separately(self):
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E", key="q1"))
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.A = S.D", key="q2"))
        oracle.insert(r(2, 7, 1.0))
        oracle.insert(s(2, 7, 2.0))
        assert oracle.rows_for("q1") == {("7", (2, 2))}
        assert oracle.rows_for("q2") == {("2", (2, 2))}

    def test_total_rows(self):
        oracle = CentralizedOracle()
        oracle.subscribe(bound("SELECT R.A, S.D FROM R, S WHERE R.B = S.E"))
        assert oracle.total_rows == 0
        oracle.insert(r(1, 7, 1.0))
        oracle.insert(s(2, 7, 2.0))
        assert oracle.total_rows == 1
