"""Tests for the multiway-join pipeline (extension, DESIGN.md)."""

import random

import pytest

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.multiway import brute_force_rows, subscribe_multiway
from repro.errors import QueryError
from repro.sql.multiway import parse_multiway_query

SCHEMA = Schema.from_dict(
    {
        "R": ["A", "B"],
        "S": ["E", "F"],
        "T": ["Y", "Z"],
        "U": ["P", "Q"],
    }
)

THREE_WAY = "SELECT R.A, S.F, T.Z FROM R, S, T WHERE R.B = S.E AND S.F = T.Y"


def make_engine(algorithm="dai-t", n_nodes=48, **kwargs):
    network = ChordNetwork.build(n_nodes)
    return ContinuousQueryEngine(
        network, EngineConfig(algorithm=algorithm, index_choice="random", **kwargs)
    )


def publish_all(engine, specs):
    """Publish (relation_name, values) pairs, advancing the clock."""
    published = []
    for name, values in specs:
        engine.clock.advance(1)
        relation = SCHEMA.relation(name)
        published.append(
            engine.publish(engine.network.nodes[1], relation, values)
        )
    return published


class TestMultiwayQueryModel:
    def test_chain_ordering_from_shuffled_from(self):
        query = parse_multiway_query(
            "SELECT R.A, T.Z FROM S, T, R WHERE S.F = T.Y AND R.B = S.E", SCHEMA
        )
        assert query.relations in (("R", "S", "T"), ("T", "S", "R"))

    def test_four_way_chain(self):
        query = parse_multiway_query(
            "SELECT R.A, U.Q FROM R, S, T, U "
            "WHERE R.B = S.E AND S.F = T.Y AND T.Z = U.P",
            SCHEMA,
        )
        assert len(query.relations) == 4
        assert len(query.conditions) == 3

    def test_star_graph_rejected(self):
        with pytest.raises(QueryError):
            parse_multiway_query(
                "SELECT R.A, U.Q FROM R, S, T, U "
                "WHERE R.B = S.E AND R.B = T.Y AND R.A = U.P",
                SCHEMA,
            )

    def test_disconnected_graph_rejected(self):
        with pytest.raises(QueryError):
            parse_multiway_query(
                "SELECT R.A, U.Q FROM R, S, T, U "
                "WHERE R.B = S.E AND T.Z = U.P AND R.B = S.F",
                SCHEMA,
            )

    def test_wrong_condition_count_rejected(self):
        with pytest.raises(QueryError):
            parse_multiway_query(
                "SELECT R.A, T.Z FROM R, S, T WHERE R.B = S.E", SCHEMA
            )

    def test_expression_conditions_rejected(self):
        with pytest.raises(QueryError):
            parse_multiway_query(
                "SELECT R.A, T.Z FROM R, S, T "
                "WHERE R.B + 1 = S.E AND S.F = T.Y",
                SCHEMA,
            )

    def test_filters_attached_to_relations(self):
        query = parse_multiway_query(THREE_WAY + " AND T.Z = 5", SCHEMA)
        assert query.filters_for("T")[0].value == 5
        assert query.filters_for("R") == ()


class TestBruteForceOracle:
    def test_hand_computed_three_way(self):
        query = parse_multiway_query(THREE_WAY, SCHEMA)
        R, S, T = (SCHEMA.relation(n) for n in "RST")
        from repro.sql.tuples import DataTuple

        tuples = [
            DataTuple(R, (1, 7), 1.0),
            DataTuple(S, (7, 3), 2.0),
            DataTuple(T, (3, 9), 3.0),
            DataTuple(T, (4, 8), 4.0),  # no S.F = 4
        ]
        assert brute_force_rows(query, tuples) == {(1, 3, 9)}

    def test_respects_insertion_time(self):
        query = parse_multiway_query(THREE_WAY, SCHEMA)
        from repro.sql.tuples import DataTuple

        R, S, T = (SCHEMA.relation(n) for n in "RST")
        tuples = [
            DataTuple(R, (1, 7), 1.0),  # before insT
            DataTuple(S, (7, 3), 6.0),
            DataTuple(T, (3, 9), 7.0),
        ]
        assert brute_force_rows(query, tuples, insertion_time=5.0) == set()


@pytest.mark.parametrize("algorithm", ["sai", "dai-q", "dai-t", "dai-v"])
class TestPipelineEndToEnd:
    def test_three_way_join(self, algorithm):
        engine = make_engine(algorithm)
        subscription = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        publish_all(
            engine,
            [
                ("R", {"A": 1, "B": 7}),
                ("S", {"E": 7, "F": 3}),
                ("T", {"Y": 3, "Z": 9}),
                ("T", {"Y": 4, "Z": 8}),  # dead end
            ],
        )
        assert subscription.results == {(1, 3, 9)}

    def test_arrival_order_irrelevant(self, algorithm):
        engine = make_engine(algorithm)
        subscription = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        publish_all(
            engine,
            [
                ("T", {"Y": 3, "Z": 9}),
                ("S", {"E": 7, "F": 3}),
                ("R", {"A": 1, "B": 7}),
            ],
        )
        assert subscription.results == {(1, 3, 9)}

    def test_four_way_join(self, algorithm):
        engine = make_engine(algorithm)
        subscription = subscribe_multiway(
            engine,
            engine.network.nodes[0],
            "SELECT R.A, U.Q FROM R, S, T, U "
            "WHERE R.B = S.E AND S.F = T.Y AND T.Z = U.P",
            SCHEMA,
        )
        publish_all(
            engine,
            [
                ("U", {"P": 9, "Q": 100}),
                ("R", {"A": 1, "B": 7}),
                ("S", {"E": 7, "F": 3}),
                ("T", {"Y": 3, "Z": 9}),
            ],
        )
        assert subscription.results == {(1, 100)}

    def test_filters_enforced(self, algorithm):
        engine = make_engine(algorithm)
        subscription = subscribe_multiway(
            engine,
            engine.network.nodes[0],
            THREE_WAY + " AND T.Z = 9",
            SCHEMA,
        )
        publish_all(
            engine,
            [
                ("R", {"A": 1, "B": 7}),
                ("S", {"E": 7, "F": 3}),
                ("T", {"Y": 3, "Z": 9}),
                ("T", {"Y": 3, "Z": 8}),  # fails the filter
            ],
        )
        assert subscription.results == {(1, 3, 9)}

    def test_tuples_before_subscription_ignored(self, algorithm):
        engine = make_engine(algorithm)
        R = SCHEMA.relation("R")
        engine.publish(engine.network.nodes[1], R, {"A": 1, "B": 7})
        engine.clock.advance(1)
        subscription = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        publish_all(
            engine,
            [("S", {"E": 7, "F": 3}), ("T", {"Y": 3, "Z": 9})],
        )
        assert subscription.results == set()

    def test_randomized_against_brute_force(self, algorithm):
        rng = random.Random(5)
        engine = make_engine(algorithm)
        subscription = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        query = parse_multiway_query(THREE_WAY, SCHEMA)
        inserted = []
        for _ in range(60):
            engine.clock.advance(1)
            name = rng.choice(["R", "S", "T"])
            relation = SCHEMA.relation(name)
            values = {attr: rng.randrange(4) for attr in relation.attributes}
            inserted.append(
                engine.publish(engine.network.random_node(rng), relation, values)
            )
        expected = brute_force_rows(query, inserted, insertion_time=0.0)
        assert subscription.results == expected
        assert expected, "vacuous workload"


class TestPipelineMechanics:
    def test_two_way_degenerates_to_single_stage(self):
        engine = make_engine("sai")
        subscription = subscribe_multiway(
            engine,
            engine.network.nodes[0],
            "SELECT R.A, S.F FROM R, S WHERE R.B = S.E",
            SCHEMA,
        )
        assert len(subscription.stage_queries) == 1
        assert subscription.intermediate_relations == []
        publish_all(engine, [("R", {"A": 1, "B": 7}), ("S", {"E": 7, "F": 3})])
        assert subscription.results == {(1, 3)}

    def test_intermediates_republished(self):
        engine = make_engine("dai-t")
        subscription = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        publish_all(
            engine,
            [
                ("R", {"A": 1, "B": 7}),
                ("S", {"E": 7, "F": 3}),
                ("T", {"Y": 3, "Z": 9}),
            ],
        )
        assert subscription.republished == [1]

    def test_duplicate_rows_republished_once(self):
        engine = make_engine("dai-t")
        subscription = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        publish_all(
            engine,
            [
                ("R", {"A": 1, "B": 7}),
                ("S", {"E": 7, "F": 3}),
                ("S", {"E": 7, "F": 3}),  # identical S tuple
                ("T", {"Y": 3, "Z": 9}),
            ],
        )
        assert subscription.republished == [1]
        assert subscription.results == {(1, 3, 9)}

    def test_concurrent_pipelines_do_not_interfere(self):
        engine = make_engine("sai")
        first = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        second = subscribe_multiway(
            engine,
            engine.network.nodes[2],
            "SELECT R.A, T.Z FROM R, S, T WHERE R.B = S.E AND S.F = T.Y",
            SCHEMA,
        )
        publish_all(
            engine,
            [
                ("R", {"A": 1, "B": 7}),
                ("S", {"E": 7, "F": 3}),
                ("T", {"Y": 3, "Z": 9}),
            ],
        )
        assert first.results == {(1, 3, 9)}
        assert second.results == {(1, 9)}

    def test_window_rejected(self):
        engine = make_engine("sai", window=10.0)
        with pytest.raises(QueryError):
            subscribe_multiway(
                engine, engine.network.nodes[0], THREE_WAY, SCHEMA
            )

    def test_cancel_stops_answers(self):
        engine = make_engine("sai")
        subscription = subscribe_multiway(
            engine, engine.network.nodes[0], THREE_WAY, SCHEMA
        )
        subscription.cancel()
        publish_all(
            engine,
            [
                ("R", {"A": 1, "B": 7}),
                ("S", {"E": 7, "F": 3}),
                ("T", {"Y": 3, "Z": 9}),
            ],
        )
        assert subscription.results == set()
