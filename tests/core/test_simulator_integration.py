"""Integration: engine + discrete-event simulator + scheduled churn."""

import random

import pytest

from repro import (
    ChordNetwork,
    ContinuousQueryEngine,
    EngineConfig,
    Schema,
    Simulator,
)
from repro.core.oracle import CentralizedOracle
from repro.sim.simulator import schedule_stabilization

SCHEMA = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})


@pytest.fixture
def stack():
    network = ChordNetwork.build(32)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm="dai-t", index_choice="random")
    )
    simulator = Simulator(network, engine.clock)
    return network, engine, simulator


class TestScheduledWorkloads:
    def test_scheduled_publishes_share_the_clock(self, stack):
        network, engine, simulator = stack
        R = SCHEMA.relation("R")
        times = []
        for t in (1.0, 2.5, 4.0):
            simulator.at(
                t,
                lambda: times.append(
                    engine.publish(network.nodes[1], R, {"A": 0, "B": 0}).pub_time
                ),
            )
        simulator.run()
        assert times == [1.0, 2.5, 4.0]

    def test_full_scenario_with_periodic_stabilization(self, stack):
        network, engine, simulator = stack
        rng = random.Random(8)
        oracle = CentralizedOracle()
        R, S = SCHEMA.relation("R"), SCHEMA.relation("S")

        query = engine.subscribe(
            network.nodes[0], "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", SCHEMA
        )
        oracle.subscribe(query)

        def publish_random():
            origin = network.random_node(rng)
            if rng.random() < 0.5:
                tup = engine.publish(origin, R, {"A": rng.randrange(9), "B": rng.randrange(4)})
            else:
                tup = engine.publish(origin, S, {"D": rng.randrange(9), "E": rng.randrange(4)})
            oracle.insert(tup)

        for index in range(120):
            simulator.at(1.0 + index, publish_random)
        # Churn happens while the stream runs; stabilization is periodic.
        simulator.at(30.0, lambda: engine.adopt(network.join("mid-joiner-1")))
        simulator.at(
            60.0, lambda: network.leave(network.nodes[len(network) // 2])
        )
        simulator.at(90.0, lambda: engine.adopt(network.join("mid-joiner-2")))
        schedule_stabilization(simulator, period=5.0, until=125.0)

        simulator.run()
        assert engine.delivered_rows(query.key) == oracle.rows_for(query.key)
        assert oracle.rows_for(query.key), "vacuous scenario"

    def test_windowed_scenario_with_scheduled_eviction(self, stack):
        network, engine, simulator = stack
        engine.config.window = 10.0
        oracle = CentralizedOracle(window=10.0)
        R, S = SCHEMA.relation("R"), SCHEMA.relation("S")
        query = engine.subscribe(
            network.nodes[0], "SELECT R.A, S.D FROM R, S WHERE R.B = S.E", SCHEMA
        )
        oracle.subscribe(query)
        rng = random.Random(9)

        def publish_random():
            origin = network.random_node(rng)
            if rng.random() < 0.5:
                tup = engine.publish(origin, R, {"A": rng.randrange(5), "B": rng.randrange(3)})
            else:
                tup = engine.publish(origin, S, {"D": rng.randrange(5), "E": rng.randrange(3)})
            oracle.insert(tup)

        for index in range(80):
            simulator.at(1.0 + index, publish_random)
        simulator.every(7.0, engine.evict_expired, until=90.0)
        simulator.run()
        engine.evict_expired()
        assert engine.delivered_rows(query.key) == oracle.rows_for(query.key)
        # Storage is bounded by the window after the final eviction.
        load = engine.load_snapshot()
        assert load.total_evaluator_storage < 200
