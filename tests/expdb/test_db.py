"""The claim protocol and row lifecycle of the experiment database."""

import csv
import json

import pytest

from repro.expdb.db import (
    EXPORT_COLUMNS,
    ExperimentDB,
    canonical_fault_plan,
    decode_params,
    normalize_params,
)
from repro.expdb.grid import GridSpec

POINT = {
    "algorithm": "sai",
    "n_nodes": 16,
    "n_queries": 12,
    "n_tuples": 30,
    "domain_size": 12,
}

METRICS = {
    "row_version": 1,
    "kind": "run",
    "install_traffic": {"hops": 10, "messages": 5, "hops_by_type": {}, "messages_by_type": {}},
    "stream_traffic": {"hops": 30, "messages": 20, "hops_by_type": {"x": 30}, "messages_by_type": {"x": 20}},
    "notifications_delivered": 7,
    "notification_digest": "cafe" * 10,
    "evictions": 2,
}


def point(**overrides):
    return {**POINT, **overrides}


@pytest.fixture
def db(tmp_path):
    with ExperimentDB(str(tmp_path / "exp.sqlite")) as handle:
        yield handle


class TestNormalize:
    def test_round_trips_through_decode(self):
        params = normalize_params(
            point(window=240, fault_plan={"loss_probability": 0.1}, seed=9)
        )
        decoded = decode_params(params)
        assert decoded["window"] == 240.0
        assert decoded["fault_plan"] == {"loss_probability": 0.1}
        assert normalize_params(decoded) == params

    def test_none_window_and_plan_encode_without_null(self):
        params = normalize_params(point())
        assert params["window"] == 0.0
        assert params["fault_plan"] == ""
        decoded = decode_params(params)
        assert decoded["window"] is None
        assert decoded["fault_plan"] is None

    def test_fault_plan_is_key_order_independent(self):
        a = canonical_fault_plan({"loss_probability": 0.1, "seed": 3})
        b = canonical_fault_plan({"seed": 3, "loss_probability": 0.1})
        assert a == b

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment parameters"):
            normalize_params(point(n_nodez=16))

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            normalize_params({"algorithm": "sai"})

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            normalize_params(point(transport="pigeon"))


class TestFill:
    def test_fill_is_idempotent(self, db):
        grid = GridSpec(algorithms=("sai", "dai-v"), seeds=(1, 2))
        assert db.fill(grid.expand()) == (4, 0)
        assert db.fill(grid.expand()) == (0, 4)
        assert db.status_counts()["open"] == 4

    def test_refill_never_touches_finished_rows(self, db):
        db.fill([point()])
        claim = db.claim("w1")
        db.finish(claim.id, "w1", METRICS)
        assert db.fill([point()]) == (0, 1)
        assert db.get(claim.id)["status"] == "done"

    def test_equivalent_encodings_are_one_row(self, db):
        db.fill([point(window=None)])
        added, existing = db.fill([point(window=0)])
        assert (added, existing) == (0, 1)


class TestClaim:
    def test_claims_lowest_id_first(self, db):
        db.fill(GridSpec(algorithms=("sai", "dai-q")).expand())
        claim = db.claim("w1")
        assert claim.id == 1
        assert claim.params["algorithm"] == "sai"
        assert claim.attempts == 1
        assert not claim.reclaimed
        assert db.get(1)["status"] == "running"
        assert db.get(1)["worker"] == "w1"

    def test_claimed_rows_are_not_reclaimed_while_fresh(self, db):
        db.fill([point()])
        assert db.claim("w1") is not None
        assert db.claim("w2") is None

    def test_stale_running_row_is_reclaimed(self, db):
        db.fill([point()])
        first = db.claim("w1")
        db._conn.execute(
            "UPDATE experiments SET heartbeat = heartbeat - 100 WHERE id = ?",
            (first.id,),
        )
        second = db.claim("w2", stale_after=50)
        assert second is not None
        assert second.id == first.id
        assert second.reclaimed
        assert second.attempts == 2
        assert db.get(first.id)["worker"] == "w2"

    def test_heartbeat_refreshes_only_own_claim(self, db):
        db.fill([point()])
        claim = db.claim("w1")
        assert db.heartbeat(claim.id, "w1")
        assert not db.heartbeat(claim.id, "w2")


class TestFinishAndFail:
    def test_finish_denormalizes_metrics(self, db):
        db.fill([point()])
        claim = db.claim("w1")
        assert db.finish(claim.id, "w1", METRICS, {"wall_seconds": 1.5, "shards": 3})
        row = db.get(claim.id)
        assert row["status"] == "done"
        assert row["hops"] == 40
        assert row["messages"] == 25
        assert row["notifications_delivered"] == 7
        assert row["evictions"] == 2
        assert row["wall_seconds"] == 1.5
        assert json.loads(row["metrics_json"]) == METRICS
        assert json.loads(row["resources_json"]) == {"shards": 3}

    def test_stale_loser_cannot_clobber_new_owner(self, db):
        db.fill([point()])
        first = db.claim("w1")
        db._conn.execute("UPDATE experiments SET heartbeat = heartbeat - 100")
        db.claim("w2", stale_after=50)
        assert not db.finish(first.id, "w1", METRICS)
        assert not db.fail(first.id, "w1", "boom")
        assert db.get(first.id)["status"] == "running"
        assert db.finish(first.id, "w2", METRICS)

    def test_fail_records_traceback(self, db):
        db.fill([point()])
        claim = db.claim("w1")
        assert db.fail(claim.id, "w1", "Traceback: ValueError: boom")
        row = db.get(claim.id)
        assert row["status"] == "error"
        assert "ValueError: boom" in row["error"]

    def test_release_reopens_untouched(self, db):
        db.fill([point()])
        claim = db.claim("w1")
        assert db.release(claim.id, "w1")
        row = db.get(claim.id)
        assert row["status"] == "open"
        assert row["worker"] is None
        assert db.claim("w2").id == claim.id


class TestReset:
    def test_reset_errors_reopens_and_keeps_attempts(self, db):
        db.fill([point()])
        claim = db.claim("w1")
        db.fail(claim.id, "w1", "boom")
        assert db.reset(errors=True) == 1
        row = db.get(claim.id)
        assert row["status"] == "open"
        assert row["error"] is None
        assert row["attempts"] == 1
        again = db.claim("w1")
        assert again.attempts == 2

    def test_reset_stale_only_touches_expired_heartbeats(self, db):
        db.fill(GridSpec(algorithms=("sai", "dai-q")).expand())
        stale = db.claim("w1")
        db._conn.execute(
            "UPDATE experiments SET heartbeat = heartbeat - 100 WHERE id = ?",
            (stale.id,),
        )
        db.claim("w2")
        assert db.reset(stale=True, stale_after=50) == 1
        assert db.get(stale.id)["status"] == "open"

    def test_reset_clears_previous_results(self, db):
        db.fill([point()])
        claim = db.claim("w1")
        db.finish(claim.id, "w1", METRICS)
        db._conn.execute("UPDATE experiments SET status = 'error'")
        db.reset(errors=True)
        row = db.get(claim.id)
        assert row["hops"] is None
        assert row["metrics_json"] is None

    def test_reset_without_selection_is_a_no_op(self, db):
        assert db.reset() == 0


class TestQueriesAndExport:
    def fill_mixed(self, db):
        db.fill(GridSpec(algorithms=("sai", "dai-q", "dai-t")).expand())
        done = db.claim("w1")
        db.finish(done.id, "w1", METRICS, {"wall_seconds": 0.5})
        failed = db.claim("w1")
        db.fail(failed.id, "w1", "boom")

    def test_status_counts_cover_all_statuses(self, db):
        self.fill_mixed(db)
        assert db.status_counts() == {"open": 1, "running": 0, "done": 1, "error": 1}

    def test_claimable_count(self, db):
        self.fill_mixed(db)
        assert db.claimable_count() == 1

    def test_rows_filters_validate(self, db):
        with pytest.raises(ValueError, match="unknown status"):
            db.rows(status="finished")
        with pytest.raises(ValueError, match="unknown transport"):
            db.rows(transport="pigeon")

    def test_export_csv_round_trips(self, db, tmp_path):
        self.fill_mixed(db)
        path = tmp_path / "out.csv"
        assert db.export_csv(str(path)) == 3
        with open(path, newline="") as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == 3
        assert list(parsed[0]) == list(EXPORT_COLUMNS)
        done = next(row for row in parsed if row["status"] == "done")
        assert int(done["hops"]) == 40
        assert json.loads(done["metrics_json"]) == METRICS

    def test_export_json_matches_rows(self, db, tmp_path):
        self.fill_mixed(db)
        path = tmp_path / "out.json"
        assert db.export_json(str(path), status="done") == 1
        with open(path) as handle:
            assert json.load(handle) == db.rows(status="done")


class TestImportDone:
    def test_import_creates_a_finished_row(self, db):
        assert db.import_done(point(), METRICS, {"wall_seconds": 2.0})
        row = db.rows(status="done")[0]
        assert row["worker"] == "import"
        assert row["hops"] == 40
        assert row["wall_seconds"] == 2.0

    def test_import_never_overwrites_existing_history(self, db):
        db.import_done(point(), METRICS)
        tampered = {**METRICS, "notifications_delivered": 999}
        assert not db.import_done(point(), tampered)
        assert db.rows()[0]["notifications_delivered"] == 7

    def test_import_accepts_summary_form_metrics(self, db):
        # Committed baselines carry top-level hops/messages instead of
        # traffic snapshots; the projection must pass them through.
        summary = {
            "hops": 123,
            "messages": 45,
            "notifications_delivered": 6,
            "notification_digest": "beef" * 10,
        }
        assert db.import_done(point(seed=2), summary)
        row = db.rows(status="done")[0]
        assert row["hops"] == 123
        assert row["messages"] == 45
