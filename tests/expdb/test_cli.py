"""The management CLI, driven through ``main`` with a fast runner."""

import csv
import json
from pathlib import Path

import pytest

from repro.expdb.cli import main
from repro.expdb.db import ExperimentDB
from repro.expdb.runner import ExperimentOutcome

METRICS = {
    "notifications_delivered": 5,
    "notification_digest": "dead" * 10,
}

REPO_ROOT = Path(__file__).resolve().parents[2]


def baseline(name):
    return str(REPO_ROOT / name)


@pytest.fixture
def fast_runner(monkeypatch):
    def runner(params, *, shards=None):
        return ExperimentOutcome(
            metrics=dict(METRICS), resources={"wall_seconds": 0.01}
        )

    import repro.expdb.worker as worker_module

    monkeypatch.setattr(worker_module, "run_experiment", runner)
    return runner


def run(db_path, *argv):
    return main(["--db", str(db_path)] + list(argv))


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "exp.sqlite"


def fill_tiny(db_path):
    assert (
        run(
            db_path,
            "fill",
            "--algorithms",
            "sai,dai-v",
            "--nodes",
            "16",
            "--queries",
            "12",
            "--tuples",
            "30",
            "--domains",
            "12",
            "--seeds",
            "1,2",
        )
        == 0
    )


class TestFill:
    def test_fill_reports_added_and_existing(self, db_path, capsys):
        fill_tiny(db_path)
        assert "4 added, 0 already present" in capsys.readouterr().out
        fill_tiny(db_path)
        assert "0 added, 4 already present" in capsys.readouterr().out

    def test_fill_from_grid_file(self, db_path, tmp_path, capsys):
        spec = tmp_path / "grid.json"
        spec.write_text(json.dumps({"algorithms": ["sai"], "seeds": [1, 2, 3]}))
        assert run(db_path, "fill", "--grid", str(spec)) == 0
        assert "3 added" in capsys.readouterr().out

    def test_flags_override_grid_file(self, db_path, tmp_path, capsys):
        spec = tmp_path / "grid.json"
        spec.write_text(json.dumps({"algorithms": ["sai"], "seeds": [1, 2, 3]}))
        assert run(db_path, "fill", "--grid", str(spec), "--seeds", "7") == 0
        assert "1 added" in capsys.readouterr().out

    def test_missing_grid_file_exits_nonzero(self, db_path, capsys):
        assert run(db_path, "fill", "--grid", "no/such/grid.json") != 0
        assert "error:" in capsys.readouterr().err

    def test_unknown_algorithm_exits_nonzero(self, db_path, capsys):
        assert run(db_path, "fill", "--algorithms", "dai-x") != 0
        assert "unknown algorithm" in capsys.readouterr().err


class TestWorkerCommand:
    def test_drains_and_reports(self, db_path, fast_runner, capsys):
        fill_tiny(db_path)
        assert run(db_path, "worker", "--drain") == 0
        captured = capsys.readouterr()
        assert "4 done, 0 error" in captured.out
        assert "claimed #1" in captured.err

    def test_missing_database_exits_nonzero(self, db_path, capsys):
        assert run(db_path, "worker", "--drain") != 0
        assert "run 'fill' first" in capsys.readouterr().err

    def test_worker_failures_exit_nonzero(self, db_path, monkeypatch, capsys):
        fill_tiny(db_path)

        def exploding(params, *, shards=None):
            raise RuntimeError("boom")

        import repro.expdb.worker as worker_module

        monkeypatch.setattr(worker_module, "run_experiment", exploding)
        assert run(db_path, "worker", "--drain") == 2
        assert "4 error" in capsys.readouterr().out


class TestStatusAndReset:
    def test_assert_done_gates(self, db_path, fast_runner, capsys):
        fill_tiny(db_path)
        assert run(db_path, "status", "--assert-done") != 0
        assert "not done" in capsys.readouterr().err
        assert run(db_path, "worker", "--drain") == 0
        assert run(db_path, "status", "--assert-done") == 0
        assert "4 done" in capsys.readouterr().out

    def test_assert_done_on_empty_database_fails(self, db_path, capsys):
        run(db_path, "fill", "--algorithms", "sai", "--seeds", "1")
        with ExperimentDB(str(db_path)) as db:
            db._conn.execute("DELETE FROM experiments")
        assert run(db_path, "status", "--assert-done") != 0
        assert "no experiments" in capsys.readouterr().err

    def test_status_lists_running_claims(self, db_path, capsys):
        fill_tiny(db_path)
        with ExperimentDB(str(db_path)) as db:
            db.claim("w-hung")
        assert run(db_path, "status") == 0
        out = capsys.readouterr().out
        assert "w-hung" in out
        assert "heartbeat_age_s" in out

    def test_reset_requires_a_selection(self, db_path, capsys):
        fill_tiny(db_path)
        assert run(db_path, "reset") != 0
        assert "nothing selected" in capsys.readouterr().err

    def test_reset_errors_reopens(self, db_path, capsys):
        fill_tiny(db_path)
        with ExperimentDB(str(db_path)) as db:
            claim = db.claim("w1")
            db.fail(claim.id, "w1", "boom")
        assert run(db_path, "reset", "--errors") == 0
        assert "reset 1 experiments" in capsys.readouterr().out


class TestExportAndReport:
    def test_export_requires_a_target(self, db_path, capsys):
        fill_tiny(db_path)
        assert run(db_path, "export") != 0
        assert "--csv" in capsys.readouterr().err

    def test_export_unknown_status_exits_nonzero(self, db_path, capsys):
        fill_tiny(db_path)
        assert run(db_path, "export", "--csv", "x.csv", "--status", "finished") != 0
        assert "unknown status" in capsys.readouterr().err

    def test_export_csv_and_json(self, db_path, tmp_path, fast_runner, capsys):
        fill_tiny(db_path)
        run(db_path, "worker", "--drain")
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        assert (
            run(db_path, "export", "--csv", str(csv_path), "--json", str(json_path))
            == 0
        )
        with open(csv_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert {row["status"] for row in rows} == {"done"}
        with open(json_path) as handle:
            assert len(json.load(handle)) == 4

    def test_report_renders_rows(self, db_path, fast_runner, capsys):
        fill_tiny(db_path)
        run(db_path, "worker", "--drain")
        assert run(db_path, "report") == 0
        out = capsys.readouterr().out
        assert "dai-v" in out
        assert "digest" in out

    def test_report_group_by_aggregates(self, db_path, fast_runner, capsys):
        fill_tiny(db_path)
        run(db_path, "worker", "--drain")
        assert run(db_path, "report", "--group-by", "algorithm") == 0
        out = capsys.readouterr().out
        assert "mean_notifications_delivered" in out
        assert "sai" in out

    def test_report_unknown_group_axis_exits_nonzero(self, db_path, capsys):
        fill_tiny(db_path)
        assert run(db_path, "report", "--group-by", "vibes") != 0
        assert "cannot group by" in capsys.readouterr().err

    def test_report_empty_database(self, db_path, capsys):
        run(db_path, "fill", "--algorithms", "sai", "--seeds", "1")
        assert run(db_path, "report", "--status", "done") == 0
        assert "no experiments match" in capsys.readouterr().out


class TestImportJson:
    def test_backfills_all_committed_baselines(self, db_path, capsys):
        assert (
            run(
                db_path,
                "import-json",
                baseline("BENCH_seed.json"),
                baseline("BENCH_sim_scale.json"),
                baseline("BENCH_net_seed.json"),
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "imported 13 experiments total" in out
        with ExperimentDB(str(db_path)) as db:
            rows = db.rows(status="done")
            assert len(rows) == 13
            transports = {row["transport"] for row in rows}
        assert transports == {"sim", "shard", "live"}

    def test_import_is_idempotent(self, db_path, capsys):
        run(db_path, "import-json", baseline("BENCH_seed.json"))
        capsys.readouterr()
        assert run(db_path, "import-json", baseline("BENCH_seed.json")) == 0
        assert "imported 0 experiments" in capsys.readouterr().out

    def test_imported_macro_rows_keep_baseline_metrics(self, db_path):
        run(db_path, "import-json", baseline("BENCH_seed.json"))
        with open(baseline("BENCH_seed.json")) as handle:
            committed = json.load(handle)
        with ExperimentDB(str(db_path)) as db:
            rows = {row["algorithm"]: row for row in db.rows(status="done")}
        for algorithm, metrics in committed["metrics"].items():
            assert rows[algorithm]["hops"] == metrics["hops"]
            assert (
                rows[algorithm]["notification_digest"]
                == metrics["notification_digest"]
            )

    def test_unknown_baseline_exits_nonzero(self, db_path, tmp_path, capsys):
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text(json.dumps({"name": "mystery-benchmark"}))
        assert run(db_path, "import-json", str(bogus)) != 0
        assert "unknown baseline name" in capsys.readouterr().err

    def test_unreadable_file_exits_nonzero(self, db_path, capsys):
        assert run(db_path, "import-json", "no/such/file.json") != 0
        assert "error:" in capsys.readouterr().err
