"""Grid expansion: declarative axes to normalized parameter rows."""

import json

import pytest

from repro.expdb.grid import ALGORITHMS, AXES, GridSpec, parse_axis


class TestGridSpec:
    def test_default_grid_is_one_point_per_algorithm(self):
        grid = GridSpec()
        rows = list(grid.expand())
        assert grid.size() == len(rows) == len(ALGORITHMS)
        assert [row["algorithm"] for row in rows] == list(ALGORITHMS)

    def test_size_matches_expansion(self):
        grid = GridSpec(
            algorithms=("sai", "dai-v"), n_nodes=(16, 32, 64), seeds=(1, 2)
        )
        assert grid.size() == 2 * 3 * 2
        assert len(list(grid.expand())) == grid.size()

    def test_seeds_iterate_innermost(self):
        grid = GridSpec(algorithms=("sai",), n_nodes=(16, 32), seeds=(1, 2))
        rows = list(grid.expand())
        assert [(row["n_nodes"], row["seed"]) for row in rows] == [
            (16, 1),
            (16, 2),
            (32, 1),
            (32, 2),
        ]

    def test_expansion_is_normalized(self):
        row = next(
            GridSpec(windows=(240,), fault_plans=({"loss_probability": 0.1},)).expand()
        )
        assert row["window"] == 240.0
        assert row["fault_plan"] == '{"loss_probability":0.1}'

    def test_expansion_order_is_stable(self):
        grid = GridSpec(algorithms=("dai-t", "sai"), seeds=(3, 1, 2))
        assert list(grid.expand()) == list(grid.expand())

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            GridSpec(transports=("carrier-pigeon",))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            GridSpec(algorithms=("sai", "dai-x"))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            GridSpec(seeds=())


class TestGridSpecJSON:
    def test_round_trip(self):
        grid = GridSpec(
            transports=("sim", "shard"),
            n_nodes=(16, 64),
            windows=(None, 240.0),
            seeds=(1, 2, 3),
        )
        assert GridSpec.from_dict(grid.to_dict()) == grid

    def test_scalars_promoted_to_axes(self):
        grid = GridSpec.from_dict({"algorithms": "sai", "n_nodes": 32})
        assert grid.algorithms == ("sai",)
        assert grid.n_nodes == (32,)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown grid axes"):
            GridSpec.from_dict({"n_node": [16]})

    def test_from_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"algorithms": ["dai-v"], "seeds": [4, 5]}))
        grid = GridSpec.from_file(str(path))
        assert grid.algorithms == ("dai-v",)
        assert grid.seeds == (4, 5)

    def test_axes_cover_all_dataclass_fields(self):
        from dataclasses import fields

        assert {attr for attr, _ in AXES} == {f.name for f in fields(GridSpec)}


class TestParseAxis:
    def test_none_passthrough(self):
        assert parse_axis(None) is None

    def test_converts_each_item(self):
        assert parse_axis("16, 32,64", convert=int) == (16, 32, 64)

    def test_literal_none_items(self):
        assert parse_axis("none,240", convert=float) == (None, 240.0)

    def test_empty_flag_rejected(self):
        with pytest.raises(ValueError, match="names no values"):
            parse_axis(" , ")
