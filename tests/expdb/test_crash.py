"""Crash consistency and resumability, proven on real worker processes.

``REPRO_EXPDB_RUN_DELAY`` (a test hook in the runner) holds an
experiment between claim and execution, giving a deterministic window
in which to SIGKILL the worker — the hardest crash there is: no
signal handler, no cleanup, the heartbeat just stops.  The database
must treat the orphaned row as claimable once its heartbeat expires,
and a restarted worker must complete the sweep with no row finishing
twice.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.expdb.db import ExperimentDB
from repro.expdb.grid import GridSpec
from repro.expdb.runner import ExperimentOutcome
from repro.expdb.worker import WorkerConfig, run_worker

REPO_ROOT = Path(__file__).resolve().parents[2]

TINY = dict(
    algorithms=("sai",),
    n_nodes=(16,),
    n_queries=(12,),
    n_tuples=(30,),
    domain_sizes=(12,),
)


def spawn_worker(db_path, worker_id, *, run_delay=None, stale_after=1.0):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    if run_delay is not None:
        env["REPRO_EXPDB_RUN_DELAY"] = str(run_delay)
    else:
        env.pop("REPRO_EXPDB_RUN_DELAY", None)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.expdb",
            "--db",
            str(db_path),
            "worker",
            "--drain",
            "--worker-id",
            worker_id,
            "--heartbeat-every",
            "0.1",
            "--stale-after",
            str(stale_after),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_for_running_claim(db_path, worker_id, timeout=30.0):
    """Block until ``worker_id`` holds a running claim; returns its id."""
    deadline = time.monotonic() + timeout
    with ExperimentDB(str(db_path)) as db:
        while time.monotonic() < deadline:
            for row in db.rows(status="running"):
                if row["worker"] == worker_id:
                    return row["id"]
            time.sleep(0.05)
    raise AssertionError(f"worker {worker_id} never claimed a row")


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "exp.sqlite"


class TestSigkillMidRun:
    def test_killed_worker_leaves_row_claimable(self, db_path):
        with ExperimentDB(str(db_path)) as db:
            db.fill(GridSpec(**TINY).expand())

        victim = spawn_worker(db_path, "victim", run_delay=60)
        try:
            orphan_id = wait_for_running_claim(db_path, "victim")
        finally:
            victim.kill()
        victim.wait(timeout=30)

        # SIGKILL gave the worker no chance to clean up: the row is
        # still 'running' under the dead worker's id...
        with ExperimentDB(str(db_path)) as db:
            row = db.get(orphan_id)
            assert row["status"] == "running"
            assert row["worker"] == "victim"

            # ... and stays protected until the heartbeat expires ...
            assert db.claim("rescuer", stale_after=60) is None

            # ... after which it is reclaimed like any abandoned row.
            time.sleep(1.1)
            claim = db.claim("rescuer", stale_after=1.0)
            assert claim is not None
            assert claim.id == orphan_id
            assert claim.reclaimed
            assert claim.attempts == 2

    def test_restarted_worker_completes_the_row(self, db_path):
        with ExperimentDB(str(db_path)) as db:
            db.fill(GridSpec(**TINY).expand())

        victim = spawn_worker(db_path, "victim", run_delay=60)
        try:
            wait_for_running_claim(db_path, "victim")
        finally:
            victim.kill()
        victim.wait(timeout=30)

        time.sleep(1.1)  # let the orphan's heartbeat expire
        stats = run_worker(
            WorkerConfig(
                db_path=str(db_path),
                worker_id="rescuer",
                drain=True,
                heartbeat_every=0.1,
                stale_after=1.0,
            )
        )
        assert stats.completed == 1
        with ExperimentDB(str(db_path)) as db:
            row = db.rows(status="done")[0]
        assert row["worker"] == "rescuer"
        assert row["attempts"] == 2
        assert row["notifications_delivered"] > 0


class TestResumableSweep:
    def test_kill_one_of_two_workers_and_resume(self, db_path, tmp_path):
        """The ISSUE's resumability proof, end to end.

        An 8-row grid, two concurrent worker processes; one is
        SIGKILLed mid-run and a replacement started.  Every row must
        reach ``done``, no row may finish twice (attempts: exactly one
        row needed a second claim), and the export must round-trip.
        """
        grid = GridSpec(
            **{**TINY, "algorithms": ("sai", "dai-v"), "seeds": (1, 2, 3, 4)}
        )
        with ExperimentDB(str(db_path)) as db:
            db.fill(grid.expand())
            assert db.status_counts()["open"] == 8

        victim = spawn_worker(db_path, "victim", run_delay=60)
        survivor = spawn_worker(db_path, "survivor")
        try:
            wait_for_running_claim(db_path, "victim")
        finally:
            victim.kill()
        victim.wait(timeout=30)
        assert survivor.wait(timeout=120) == 0

        # The survivor drained what it could; the orphan may still be
        # parked under the dead worker.  Restarting a worker — the
        # whole resume story — must finish the sweep.
        time.sleep(1.1)
        replacement = spawn_worker(db_path, "replacement")
        assert replacement.wait(timeout=120) == 0

        with ExperimentDB(str(db_path)) as db:
            counts = db.status_counts()
            rows = db.rows()
        assert counts == {"open": 0, "running": 0, "done": 8, "error": 0}
        # Exactly one row (the orphan) was claimed twice; had any row
        # *finished* twice the guarded UPDATE would have dropped the
        # duplicate, and a double execution would show as attempts > 1
        # on more rows.
        assert sorted(row["attempts"] for row in rows) == [1] * 7 + [2]
        assert all(row["worker"] in ("survivor", "replacement") for row in rows)
        assert all(row["metrics_json"] for row in rows)

        # Export round-trips through CSV.
        import csv

        out = tmp_path / "sweep.csv"
        with ExperimentDB(str(db_path)) as db:
            assert db.export_csv(str(out)) == 8
        with open(out, newline="") as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == 8
        assert {row["status"] for row in parsed} == {"done"}
        assert sorted(int(row["attempts"]) for row in parsed) == [1] * 7 + [2]
