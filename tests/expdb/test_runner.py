"""Transport dispatch: database rows through the real harnesses.

The determinism assertions here back the database's core promise: the
metric columns are machine-independent, so re-running a row (on any
worker, any day) reproduces byte-identical metrics.
"""

import json

import pytest

from repro.expdb.db import normalize_params
from repro.expdb.runner import (
    engine_overrides,
    fault_plan_from_dict,
    run_experiment,
    scale_for,
)
from repro.faults import DelaySpec

TINY_SIM = {
    "transport": "sim",
    "algorithm": "dai-t",
    "n_nodes": 16,
    "n_queries": 12,
    "n_tuples": 30,
    "domain_size": 12,
    "seed": 3,
}


def params(**overrides):
    return normalize_params({**TINY_SIM, **overrides})


def decoded(**overrides):
    from repro.expdb.db import decode_params

    return decode_params(params(**overrides))


class TestSimTransport:
    def test_metrics_are_byte_identical_across_runs(self):
        first = run_experiment(decoded())
        second = run_experiment(decoded())
        canonical = lambda metrics: json.dumps(metrics, sort_keys=True)
        assert canonical(first.metrics) == canonical(second.metrics)
        assert first.metrics["notifications_delivered"] > 0
        assert first.metrics["kind"] == "run"

    def test_resources_ride_along(self):
        outcome = run_experiment(decoded())
        assert outcome.resources["wall_seconds"] > 0
        assert outcome.resources["peak_rss_kb"] > 0
        assert outcome.resources["events_per_sec"] > 0

    def test_feature_columns_change_the_run(self):
        plain = run_experiment(decoded())
        windowed = run_experiment(decoded(window=5.0, jfrt_capacity=8))
        assert plain.metrics != windowed.metrics

    def test_fault_plan_perturbs_traffic_deterministically(self):
        faulted = decoded(fault_plan={"loss_probability": 0.05})
        first = run_experiment(faulted)
        second = run_experiment(faulted)
        assert first.metrics == second.metrics
        assert first.metrics["stream_traffic"]["messages_dropped"] > 0

    def test_different_seeds_differ(self):
        assert (
            run_experiment(decoded(seed=1)).metrics
            != run_experiment(decoded(seed=2)).metrics
        )


class TestShardTransport:
    def test_shard_run_carries_the_stable_row(self):
        outcome = run_experiment(
            decoded(transport="shard", n_nodes=48, algorithm="sai"), shards=1
        )
        assert outcome.metrics["kind"] == "shard"
        assert outcome.metrics["notifications_delivered"] > 0
        assert outcome.resources["shards"] == 1
        assert outcome.resources["wall_seconds"] > 0

    def test_fault_plans_are_refused(self):
        with pytest.raises(ValueError, match="refuses perturbing fault plans"):
            run_experiment(
                decoded(transport="shard", fault_plan={"loss_probability": 0.1}),
                shards=1,
            )


class TestLiveTransport:
    def test_live_run_reports_answer_set_metrics(self):
        outcome = run_experiment(
            decoded(
                transport="live",
                algorithm="sai",
                n_nodes=5,
                n_queries=6,
                n_tuples=20,
                domain_size=10,
            )
        )
        assert outcome.metrics["kind"] == "live"
        assert outcome.metrics["notifications_delivered"] > 0
        assert len(outcome.metrics["notification_digest"]) == 40
        assert outcome.resources["events_per_sec"] > 0
        assert "latency_ms" in outcome.resources

    def test_fault_plans_are_refused(self):
        with pytest.raises(ValueError, match="live"):
            run_experiment(
                decoded(transport="live", fault_plan={"loss_probability": 0.1})
            )


class TestDispatchHelpers:
    def test_unknown_transport_rejected(self):
        bad = decoded()
        bad["transport"] = "pigeon"
        with pytest.raises(ValueError, match="unknown transport"):
            run_experiment(bad)

    def test_scale_for_maps_workload_columns(self):
        scale = scale_for(decoded())
        assert scale.n_nodes == 16
        assert scale.n_queries == 12
        assert scale.n_tuples == 30
        assert scale.domain_size == 12
        assert scale.zipf_s == 0.9

    def test_engine_overrides_only_lift_non_defaults(self):
        assert engine_overrides(decoded()) == {"index_choice": "random"}
        lifted = engine_overrides(
            decoded(window=240, replication_factor=2, jfrt_capacity=64)
        )
        assert lifted == {
            "index_choice": "random",
            "window": 240.0,
            "replication_factor": 2,
            "jfrt_capacity": 64,
        }

    def test_fault_plan_from_dict_builds_delay_spec(self):
        plan = fault_plan_from_dict(
            {
                "loss_probability": 0.1,
                "delay": {"probability": 0.2, "minimum": 1.0, "maximum": 3.0},
            }
        )
        assert plan.loss_probability == 0.1
        assert plan.delay == DelaySpec(probability=0.2, minimum=1.0, maximum=3.0)

    def test_net_fault_specs_are_live_only(self):
        with pytest.raises(ValueError, match="live-cluster only"):
            fault_plan_from_dict({"net": {"disconnect_rate": 0.1}})
