"""The pull-based worker loop, with an injected (fast) runner."""

import threading

import pytest

from repro.expdb.db import ExperimentDB
from repro.expdb.grid import GridSpec
from repro.expdb.runner import ExperimentOutcome
from repro.expdb.worker import WorkerConfig, default_worker_id, run_worker

METRICS = {
    "notifications_delivered": 3,
    "notification_digest": "f00d" * 10,
}


def fake_runner(params, *, shards=None):
    return ExperimentOutcome(
        metrics={**METRICS, "seed": params["seed"]},
        resources={"wall_seconds": 0.01},
    )


def config(db_path, **overrides):
    defaults = dict(
        db_path=str(db_path),
        worker_id="w-test",
        drain=True,
        poll_interval=0.01,
        heartbeat_every=0.05,
    )
    defaults.update(overrides)
    return WorkerConfig(**defaults)


@pytest.fixture
def db_path(tmp_path):
    path = tmp_path / "exp.sqlite"
    with ExperimentDB(str(path)) as db:
        db.fill(GridSpec(algorithms=("sai", "dai-v"), seeds=(1, 2)).expand())
    return path


class TestWorkerLoop:
    def test_drains_every_open_row(self, db_path):
        stats = run_worker(config(db_path), runner=fake_runner)
        assert stats.completed == 4
        assert stats.failed == 0
        with ExperimentDB(str(db_path)) as db:
            assert db.status_counts()["done"] == 4
            rows = db.rows(status="done")
        assert all(row["worker"] == "w-test" for row in rows)
        assert all(row["wall_seconds"] == 0.01 for row in rows)

    def test_max_runs_caps_the_loop(self, db_path):
        stats = run_worker(config(db_path, max_runs=2), runner=fake_runner)
        assert stats.executed == 2
        with ExperimentDB(str(db_path)) as db:
            assert db.status_counts()["open"] == 2

    def test_failures_are_recorded_and_the_loop_continues(self, db_path):
        def flaky(params, *, shards=None):
            if params["algorithm"] == "sai":
                raise RuntimeError("injected failure")
            return fake_runner(params)

        events = []
        stats = run_worker(config(db_path), runner=flaky, on_event=events.append)
        assert stats.completed == 2
        assert stats.failed == 2
        with ExperimentDB(str(db_path)) as db:
            errors = db.rows(status="error")
        assert len(errors) == 2
        assert all("injected failure" in row["error"] for row in errors)
        assert any("error on" in line for line in events)

    def test_keyboard_interrupt_releases_the_claim(self, db_path):
        def interrupted(params, *, shards=None):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_worker(config(db_path), runner=interrupted)
        with ExperimentDB(str(db_path)) as db:
            counts = db.status_counts()
        assert counts == {"open": 4, "running": 0, "done": 0, "error": 0}

    def test_default_worker_id_is_host_and_pid(self):
        import os
        import socket

        assert default_worker_id() == f"{socket.gethostname()}:{os.getpid()}"


class TestDeterminism:
    def test_same_grid_and_seeds_give_byte_identical_metric_rows(self, tmp_path):
        """The database's perf-history promise: parameters + seed fully
        determine the metric columns, bit for bit, run after run."""
        grid = GridSpec(
            algorithms=("sai", "dai-t"),
            n_nodes=(16,),
            n_queries=(12,),
            n_tuples=(30,),
            domain_sizes=(12,),
            seeds=(1, 2),
        )

        def sweep(label):
            path = tmp_path / f"{label}.sqlite"
            with ExperimentDB(str(path)) as db:
                db.fill(grid.expand())
            run_worker(config(path, worker_id=label))
            with ExperimentDB(str(path)) as db:
                return {
                    tuple(row[name] for name in ("algorithm", "seed")): row[
                        "metrics_json"
                    ]
                    for row in db.rows(status="done")
                }

        first = sweep("first")
        second = sweep("second")
        assert len(first) == 4
        assert first == second


class TestConcurrentWorkers:
    def test_no_row_is_executed_twice(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        with ExperimentDB(str(path)) as db:
            db.fill(GridSpec(n_nodes=(16, 32, 64), seeds=(1, 2)).expand())
            total = db.status_counts()["open"]
        assert total == 24

        lock = threading.Lock()
        executed = []

        def recording_runner(params, *, shards=None):
            with lock:
                executed.append(tuple(sorted(params.items())))
            return fake_runner(params)

        def worker(worker_id):
            run_worker(
                config(path, worker_id=worker_id, heartbeat_every=0.02),
                runner=recording_runner,
            )

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert len(executed) == total
        assert len(set(executed)) == total, "a parameter row ran twice"
        with ExperimentDB(str(path)) as db:
            counts = db.status_counts()
            rows = db.rows(status="done")
        assert counts["done"] == total
        assert all(row["attempts"] == 1 for row in rows)
