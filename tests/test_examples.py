"""Smoke tests: every shipped example runs to completion.

Examples are part of the public surface; a refactor that breaks one
should fail the suite, not a user.  Heavy examples are shrunk via their
module-level constants before ``main()`` runs.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "new Smith paper" in output
        assert "overlay traffic" in output

    def test_elearning_monitor(self, capsys):
        load_example("elearning_monitor").main()
        output = capsys.readouterr().out
        assert "reconnects under the same key" in output
        assert "missed notifications recovered on rejoin: 2" in output

    def test_stream_join_monitor(self, capsys):
        load_example("stream_join_monitor").main()
        output = capsys.readouterr().out
        assert "alerts over" in output
        assert "window keeps it bounded" in output

    def test_churn_tolerance(self, capsys):
        load_example("churn_tolerance").main()
        output = capsys.readouterr().out
        assert "result sets match exactly despite churn" in output

    def test_chaos_crash_recovery(self, capsys):
        load_example("chaos_crash_recovery").main()
        output = capsys.readouterr().out
        assert "crashed" in output
        assert "duplicate notifications: 0" in output
        assert "exact convergence despite loss, delay and crashes" in output

    def test_algorithm_faceoff_shrunk(self, capsys):
        module = load_example("algorithm_faceoff")
        from repro.bench.configs import Scale

        module.SCALE = Scale(
            "test-faceoff", n_nodes=48, n_queries=40, n_tuples=120, domain_size=40
        )
        module.main()
        output = capsys.readouterr().out
        assert output.count("yes") >= 4  # all four deliver the same rows
        assert "dai-v" in output

    def test_multiway_pipeline(self, capsys):
        load_example("multiway_pipeline").main()
        output = capsys.readouterr().out
        assert "pipeline installed" in output
        assert "stage 2" in output
        assert "assignments found" in output

    def test_expdb_sweep_shrunk(self, capsys):
        module = load_example("expdb_sweep")
        from repro.expdb import GridSpec

        module.GRID = GridSpec(
            algorithms=("sai", "dai-v"),
            n_nodes=(16,),
            zipf_s=(0.6, 1.2),
            n_queries=(12,),
            n_tuples=(30,),
            domain_sizes=(12,),
            seeds=(1,),
        )
        module.main()
        output = capsys.readouterr().out
        assert "filled 4 experiments" in output
        assert "both workers drained" in output
        assert "mean_hops" in output

    def test_live_cluster_shrunk(self, capsys):
        module = load_example("live_cluster")
        module.N_NODES = 4
        module.N_QUERIES = 5
        module.N_TUPLES = 20
        module.main()
        output = capsys.readouterr().out
        assert "on the wire" in output
        assert "delivered identical notification sets" in output
