#!/usr/bin/env python3
"""A three-axis sweep study through the experiment database.

Declares a grid (algorithm × ring size × Zipf skew, two seeds per
point), fills it into a SQLite experiment database, drains it with two
concurrent worker processes pulling rows through the standard serial
harness, and renders the resulting perf history — the workflow
EXPERIMENTS.md documents under "Sweep studies", shrunk to run in
seconds.

Everything here also works split across terminals (or machines sharing
the file): ``fill`` once, start as many ``python -m repro.expdb
worker`` processes as you like, and re-start them after any crash —
the claim protocol guarantees every row runs to ``done`` exactly once.

Run with::

    python examples/expdb_sweep.py
"""

import os
import subprocess
import sys
import tempfile

from repro.expdb import ExperimentDB, GridSpec

GRID = GridSpec(
    algorithms=("sai", "dai-t", "dai-v"),
    n_nodes=(32, 64),
    zipf_s=(0.6, 0.9, 1.2),
    n_queries=(40,),
    n_tuples=(120,),
    domain_sizes=(40,),
    seeds=(1, 2),
)


def spawn_worker(db_path: str, worker_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.expdb",
            "--db",
            db_path,
            "worker",
            "--drain",
            "--worker-id",
            worker_id,
        ],
        stderr=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
    )


def main() -> None:
    db_path = os.path.join(tempfile.mkdtemp(prefix="expdb-sweep-"), "sweep.sqlite")

    with ExperimentDB(db_path) as db:
        added, _ = db.fill(GRID.expand())
    print(f"filled {added} experiments ({GRID.size()} grid points) into {db_path}")

    workers = [spawn_worker(db_path, f"worker-{i}") for i in (1, 2)]
    for worker in workers:
        worker.wait()
    print("both workers drained\n")

    with ExperimentDB(db_path) as db:
        counts = db.status_counts()
        rows = db.rows(status="done")
    assert counts["done"] == GRID.size(), counts

    # Aggregate the history over the skew axis: mean hops per
    # algorithm × zipf_s, seeds and ring sizes averaged out.
    groups: dict = {}
    for row in rows:
        groups.setdefault((row["algorithm"], row["zipf_s"]), []).append(row["hops"])

    from repro.bench.report import render_table

    table = [
        {
            "algorithm": algorithm,
            "zipf_s": zipf_s,
            "runs": len(hops),
            "mean_hops": round(sum(hops) / len(hops), 1),
        }
        for (algorithm, zipf_s), hops in sorted(groups.items())
    ]
    print(render_table(["algorithm", "zipf_s", "runs", "mean_hops"], table))
    print(
        "\nper-seed digests agree per point; rerun this script and the "
        "metric columns will be byte-identical."
    )


if __name__ == "__main__":
    main()
