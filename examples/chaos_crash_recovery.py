#!/usr/bin/env python3
"""Continuous queries surviving message loss, delays and node crashes.

A chaos-engineering take on the paper's setting: while an order/stock
stream runs, every routed delivery can be dropped (retried with backoff
by the router) or delayed (landing later, possibly out of order), and
nodes crash abruptly — losing their installed queries and value-level
state.  Recovery is pure soft state: subscribers re-install their
queries as leases and publishers republish windowed tuples; receivers
deduplicate, so the delivered answer set still converges to exactly the
centralized oracle's ground truth, with zero duplicate notifications.

Run with::

    python examples/chaos_crash_recovery.py
"""

import random

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle
from repro.faults import ChaosHarness, DelaySpec, FaultInjector, FaultPlan

N_EVENTS = 300
CRASH_EVERY = 60
ALGORITHM = "dai-t"


def main() -> None:
    schema = Schema.from_dict(
        {"Orders": ["OrderId", "Item"], "Stock": ["Item", "Depot"]}
    )
    plan = FaultPlan(
        loss_probability=0.08,
        delay=DelaySpec(probability=0.15, minimum=0.5, maximum=3.0),
        seed=7,
    )
    injector = FaultInjector(plan)
    network = ChordNetwork.build(128, injector=injector)
    engine = ContinuousQueryEngine(network, EngineConfig(algorithm=ALGORITHM))
    oracle = CentralizedOracle()
    rng = random.Random(3)

    subscriber = network.nodes[0]
    query = engine.subscribe(
        subscriber,
        "SELECT O.OrderId, S.Depot FROM Orders AS O, Stock AS S "
        "WHERE O.Item = S.Item",
        schema,
    )
    oracle.subscribe(query)
    harness = ChaosHarness(engine, injector)
    harness.protect(subscriber)
    print(f"monitoring order/stock matches ({query.key}) under chaos\n")

    orders = schema.relation("Orders")
    stock = schema.relation("Stock")
    for index in range(N_EVENTS):
        engine.clock.advance(1.0)
        origin = network.random_node(rng)
        if rng.random() < 0.5:
            tup = engine.publish(
                origin, orders, {"OrderId": index, "Item": rng.randrange(20)}
            )
        else:
            tup = engine.publish(
                origin, stock, {"Item": rng.randrange(20), "Depot": rng.randrange(5)}
            )
        oracle.insert(tup)

        if index % CRASH_EVERY == CRASH_EVERY - 1:
            victim = harness.crash()
            if victim is not None:
                print(f"  t={engine.clock.now:6.1f}  node {victim.key} crashed")

    harness.settle()

    stats = network.stats
    got = engine.delivered_rows(query.key)
    want = oracle.rows_for(query.key)
    print(
        f"\nchaos: {injector.crashes} crashes, "
        f"{stats.snapshot().messages_dropped} drops, "
        f"{stats.snapshot().retries} retries, "
        f"{stats.snapshot().messages_delayed} delayed deliveries"
    )
    print(f"rows delivered: {len(got)}; oracle ground truth: {len(want)}")
    print(f"duplicate notifications: {engine.duplicate_deliveries}")
    if got == want and engine.duplicate_deliveries == 0:
        print("exact convergence despite loss, delay and crashes ✔")
    else:
        print(f"divergence! missing={len(want - got)} extra={len(got - want)}")


if __name__ == "__main__":
    main()
