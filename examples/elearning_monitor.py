#!/usr/bin/env python3
"""E-learning network monitor with offline subscribers (paper Section 4.6).

Several users subscribe to author alerts over the EDUTELLA-style schema
of the paper.  One subscriber disconnects from the overlay; the
notifications produced while it is away are parked at the successor of
its identifier and handed back — via Chord's key transfer — when the
node rejoins under the same key.

Run with::

    python examples/elearning_monitor.py
"""

import random

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig
from repro.sql.schema import example_elearning_schema

AUTHORS = [
    (1, "Grace", "Hopper"),
    (2, "Edgar", "Codd"),
    (3, "Barbara", "Liskov"),
]

PAPERS = [
    ("Relational completeness", "ICDE", 2),
    ("Flow-matic continuous queries", "VLDB", 1),
    ("Abstraction mechanisms", "SIGMOD", 3),
    ("A relational model of data", "ICDE", 2),
    ("Nanosecond routing tables", "SIGCOMM", 1),
]


def main() -> None:
    schema = example_elearning_schema()
    network = ChordNetwork.build(256)
    engine = ContinuousQueryEngine(network, EngineConfig(algorithm="sai", index_choice="random"))
    rng = random.Random(7)

    # Three subscribers, one alert each.
    subscribers = {}
    for surname in ("Hopper", "Codd", "Liskov"):
        node = network.random_node(rng)
        query = engine.subscribe(
            node,
            "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A "
            f"WHERE D.AuthorId = A.Id AND A.Surname = '{surname}'",
            schema,
        )
        subscribers[surname] = (node, query)
        print(f"{node.key} watches for new {surname} papers ({query.key})")

    authors = schema.relation("Authors")
    documents = schema.relation("Document")
    for author_id, name, surname in AUTHORS:
        engine.clock.advance(1)
        engine.publish(
            network.random_node(rng),
            authors,
            {"Id": author_id, "Name": name, "Surname": surname},
        )

    # The Codd watcher goes offline — and leaves the overlay entirely.
    codd_node, codd_query = subscribers["Codd"]
    codd_key = codd_node.key
    print(f"\n{codd_key} disconnects from the overlay...")
    engine.disconnect(codd_node)
    network.run_stabilization(2, fix_all_fingers=True)

    for index, (title, conference, author_id) in enumerate(PAPERS):
        engine.clock.advance(1)
        engine.publish(
            network.random_node(rng),
            documents,
            {"Id": 100 + index, "Title": title, "Conference": conference, "AuthorId": author_id},
        )

    for surname in ("Hopper", "Liskov"):
        node, _ = subscribers[surname]
        rows = [n.row for n in engine.notifications(node)]
        print(f"\n{surname} watcher (online the whole time) received {len(rows)} alerts:")
        for title, conference in rows:
            print(f"  {title!r} at {conference}")

    print(f"\n{codd_key} reconnects under the same key...")
    rejoined = engine.reconnect(codd_key)
    network.run_stabilization(2, fix_all_fingers=True)
    missed = engine.notifications(rejoined)
    print(f"missed notifications recovered on rejoin: {len(missed)}")
    for notification in missed:
        title, conference = notification.row
        print(f"  {title!r} at {conference}")


if __name__ == "__main__":
    main()
