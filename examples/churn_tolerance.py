#!/usr/bin/env python3
"""Continuous query processing under churn (joins and voluntary leaves).

While a tuple stream is running, nodes keep joining and leaving the
overlay.  Voluntary leaves hand their keys — installed queries,
value-level state, parked notifications — to their successor, and
stabilization repairs the ring, so delivered results stay identical to
the centralized oracle's ground truth.

Run with::

    python examples/churn_tolerance.py
"""

import random

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.oracle import CentralizedOracle

N_EVENTS = 400
CHURN_EVERY = 20


def main() -> None:
    schema = Schema.from_dict({"Orders": ["OrderId", "Item"], "Stock": ["Item", "Depot"]})
    network = ChordNetwork.build(128)
    engine = ContinuousQueryEngine(network, EngineConfig(algorithm="dai-q"))
    oracle = CentralizedOracle()
    rng = random.Random(3)

    subscriber = network.nodes[0]
    query = engine.subscribe(
        subscriber,
        "SELECT O.OrderId, S.Depot FROM Orders AS O, Stock AS S "
        "WHERE O.Item = S.Item",
        schema,
    )
    oracle.subscribe(query)
    print(f"monitoring order/stock matches ({query.key})\n")

    orders = schema.relation("Orders")
    stock = schema.relation("Stock")
    joined = 0
    left = 0
    for index in range(N_EVENTS):
        engine.clock.advance(1.0)
        origin = network.random_node(rng)
        if rng.random() < 0.5:
            tup = engine.publish(
                origin, orders, {"OrderId": index, "Item": rng.randrange(20)}
            )
        else:
            tup = engine.publish(
                origin, stock, {"Item": rng.randrange(20), "Depot": rng.randrange(5)}
            )
        oracle.insert(tup)

        if index % CHURN_EVERY == CHURN_EVERY - 1:
            if rng.random() < 0.5:
                new_node = network.join(f"late-{index}")
                engine.adopt(new_node)
                joined += 1
            else:
                victim = network.random_node(rng)
                if victim is not subscriber:
                    network.leave(victim)
                    left += 1
            network.run_stabilization(1, fix_all_fingers=True)

    got = engine.delivered_rows(query.key)
    want = oracle.rows_for(query.key)
    print(f"churn: {joined} nodes joined, {left} left; final size {len(network)}")
    print(f"rows delivered: {len(got)}; oracle ground truth: {len(want)}")
    if got == want:
        print("result sets match exactly despite churn ✔")
    else:
        print(f"divergence! missing={len(want - got)} extra={len(got - want)}")


if __name__ == "__main__":
    main()
