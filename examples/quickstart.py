#!/usr/bin/env python3
"""Quickstart: one continuous join query over a simulated Chord overlay.

Builds a 128-node network, installs the paper's running example query
("notify me whenever author Smith publishes a new paper", Section 3.2),
publishes a few tuples from random nodes, and prints the notifications
the subscriber receives.

Run with::

    python examples/quickstart.py
"""

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig
from repro.sql.schema import example_elearning_schema


def main() -> None:
    schema = example_elearning_schema()
    network = ChordNetwork.build(128)
    engine = ContinuousQueryEngine(network, EngineConfig(algorithm="dai-t"))

    subscriber = network.nodes[0]
    query = engine.subscribe(
        subscriber,
        "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A "
        "WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'",
        schema,
    )
    print(f"installed continuous query {query.key}:")
    print(f"  {query}\n")

    documents = schema.relation("Document")
    authors = schema.relation("Authors")

    # Tuples arrive asynchronously from different nodes of the overlay.
    engine.clock.advance(1)
    engine.publish(network.nodes[10], authors, {"Id": 42, "Name": "John", "Surname": "Smith"})
    engine.clock.advance(1)
    engine.publish(network.nodes[20], authors, {"Id": 7, "Name": "Ada", "Surname": "Jones"})
    engine.clock.advance(1)
    engine.publish(
        network.nodes[30],
        documents,
        {"Id": 1, "Title": "Continuous joins over DHTs", "Conference": "ICDE", "AuthorId": 42},
    )
    engine.clock.advance(1)
    engine.publish(
        network.nodes[40],
        documents,
        {"Id": 2, "Title": "Unrelated paper", "Conference": "VLDB", "AuthorId": 7},
    )
    engine.clock.advance(1)
    engine.publish(
        network.nodes[50],
        documents,
        {"Id": 3, "Title": "Two-level indexing", "Conference": "SIGMOD", "AuthorId": 42},
    )

    print("notifications delivered to the subscriber:")
    for notification in engine.notifications(subscriber):
        title, conference = notification.row
        print(f"  new Smith paper: {title!r} at {conference}")

    stats = engine.traffic
    print(
        f"\noverlay traffic: {stats.messages} messages, {stats.hops} hops "
        f"({stats.hops / max(1, stats.messages):.1f} hops/message)"
    )

    from repro.perf import PERF

    if PERF.enabled:  # REPRO_PERF=1: show what the hot paths recorded
        print("\nperf counters:")
        for name, value in PERF.snapshot()["counters"].items():
            print(f"  {name}: {value}")


if __name__ == "__main__":
    main()
