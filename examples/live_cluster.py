#!/usr/bin/env python3
"""Quickstart for the live transport: a real TCP ring on localhost.

Boots an 8-node cluster of asyncio peers (one TCP server per overlay
node), bootstraps their address books over the wire, replays a seeded
workload through the DAI-V algorithm with every message travelling as a
length-prefixed binary frame over real sockets, and finally replays the
identical workload in the in-process simulator to show that both
deliver exactly the same notification set.

Run with::

    python examples/live_cluster.py

Change ``ALGORITHM`` to ``"sai"``, ``"dai-q"`` or ``"dai-t"`` to watch
the other algorithms — the digest must match the simulator for all of
them.  The ``python -m repro.net.cluster`` command exposes the same
flow with command-line flags.
"""

import asyncio

from repro.net.cluster import ClusterConfig, run_live, simulate_reference
from repro.workload.generator import WorkloadParams, build_workload

ALGORITHM = "dai-v"
N_NODES = 8
N_QUERIES = 12
N_TUPLES = 60
SEED = 11


def main() -> None:
    workload = build_workload(
        WorkloadParams(
            n_queries=N_QUERIES,
            n_tuples=N_TUPLES,
            domain_size=24,
            seed=SEED,
        )
    )

    print(
        f"booting a live {N_NODES}-node ring on localhost "
        f"({ALGORITHM}, {N_QUERIES} queries, {N_TUPLES} tuples)..."
    )
    report = asyncio.run(
        run_live(
            workload,
            ClusterConfig(algorithm=ALGORITHM, n_nodes=N_NODES, seed=SEED),
        )
    )
    print(report.summary())

    sim_digest, sim_delivered = simulate_reference(
        workload, algorithm=ALGORITHM, n_nodes=N_NODES, seed=SEED
    )
    print(
        f"simulator oracle: {sim_delivered} notifications, "
        f"digest {sim_digest[:12]}"
    )
    if report.notification_digest == sim_digest:
        print("live cluster and simulator delivered identical notification sets")
    else:  # pragma: no cover - would mean a transport bug
        raise SystemExit("MISMATCH: live run diverged from the simulator")


if __name__ == "__main__":
    main()
