#!/usr/bin/env python3
"""Run the same workload under all four algorithms and compare them.

A miniature of the paper's Chapter 5: identical network, queries and
tuple stream for SAI, DAI-Q, DAI-T and DAI-V; the table contrasts
traffic, load totals and load distribution, reproducing the headline
tradeoffs (DAI-T cheapest traffic after warm-up, DAI-V cheapest overall
but worst distribution, SAI the middle ground).

Run with::

    python examples/algorithm_faceoff.py
"""

from repro.bench import run_standard, workload_for
from repro.bench.configs import Scale
from repro.bench.report import render_table

SCALE = Scale("faceoff", n_nodes=256, n_queries=400, n_tuples=600, domain_size=150)


def main() -> None:
    workload = workload_for(SCALE)
    print(
        f"workload: {SCALE.n_nodes} nodes, {workload.n_queries} queries, "
        f"{workload.n_tuples} tuples, Zipf values over a domain of "
        f"{SCALE.domain_size}\n"
    )
    rows = []
    reference_rows = None
    for algorithm in ("sai", "dai-q", "dai-t", "dai-v"):
        result = run_standard(
            algorithm,
            SCALE,
            config_overrides={"index_choice": "random"},
            workload=workload,
        )
        delivered = {
            key: result.engine.delivered_rows(key) for key in result.engine.delivered
        }
        total_rows = sum(len(rows_) for rows_ in delivered.values())
        if reference_rows is None:
            reference_rows = total_rows
        load = result.load
        rows.append(
            {
                "algorithm": algorithm,
                "hops/tuple": round(result.hops_per_tuple, 1),
                "TF": load.total_filtering,
                "TS": load.total_storage,
                "gini(F)": round(load.filtering_gini(), 3),
                "participation": round(load.filtering_participation(), 2),
                "rows": total_rows,
                "same result": "yes" if total_rows == reference_rows else "NO",
            }
        )
    columns = [
        "algorithm",
        "hops/tuple",
        "TF",
        "TS",
        "gini(F)",
        "participation",
        "rows",
        "same result",
    ]
    print(render_table(columns, rows))
    print(
        "\nAll four algorithms deliver the same answer rows; they differ in "
        "where the work happens and how much the overlay talks."
    )


if __name__ == "__main__":
    main()
