#!/usr/bin/env python3
"""Continuous 4-way chain join via the pipeline extension.

The paper evaluates two-way joins and leaves multi-way joins as future
work; this example runs the extension of ``repro.core.multiway``: a
4-way supply-chain monitor decomposed into a pipeline of ordinary
two-way continuous queries whose intermediate results are re-published
into the overlay.

Query: alert when an *order* for an *item* that is in *stock* at a
*depot* can be assigned to a carrier serving that depot::

    SELECT O.OrderId, C.Carrier
    FROM Orders O, Items I, Stock S, Routes C
    WHERE O.Item = I.ItemId AND I.ItemId = S.Item AND S.Depot = C.Depot

Run with::

    python examples/multiway_pipeline.py
"""

import random

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema
from repro.core.multiway import subscribe_multiway

SCHEMA = Schema.from_dict(
    {
        "Orders": ["OrderId", "Item"],
        "Items": ["ItemId", "Category"],
        "Stock": ["Item", "Depot"],
        "Routes": ["Depot", "Carrier"],
    }
)

QUERY = (
    "SELECT O.OrderId, C.Carrier "
    "FROM Orders AS O, Items AS I, Stock AS S, Routes AS C "
    "WHERE O.Item = I.ItemId AND I.ItemId = S.Item AND S.Depot = C.Depot"
)


def main() -> None:
    network = ChordNetwork.build(256)
    engine = ContinuousQueryEngine(network, EngineConfig(algorithm="dai-t"))
    rng = random.Random(21)

    control = network.nodes[0]
    subscription = subscribe_multiway(engine, control, QUERY, SCHEMA)
    print("pipeline installed:")
    for index, stage in enumerate(subscription.stage_queries):
        print(f"  stage {index}: {stage}")
    print()

    relations = {name: SCHEMA.relation(name) for name in SCHEMA.names}
    for step in range(300):
        engine.clock.advance(1)
        origin = network.random_node(rng)
        roll = rng.random()
        if roll < 0.35:
            engine.publish(
                origin,
                relations["Orders"],
                {"OrderId": step, "Item": rng.randrange(12)},
            )
        elif roll < 0.55:
            engine.publish(
                origin,
                relations["Items"],
                {"ItemId": rng.randrange(12), "Category": rng.randrange(3)},
            )
        elif roll < 0.8:
            engine.publish(
                origin,
                relations["Stock"],
                {"Item": rng.randrange(12), "Depot": rng.randrange(5)},
            )
        else:
            engine.publish(
                origin,
                relations["Routes"],
                {"Depot": rng.randrange(5), "Carrier": rng.randrange(4)},
            )

    print(f"{len(subscription.results)} distinct (order, carrier) assignments found")
    sample = sorted(subscription.results)[:8]
    for order_id, carrier in sample:
        print(f"  order {order_id} -> carrier {carrier}")
    print(
        f"\nintermediate tuples re-published per stage: "
        f"{subscription.republished}; overlay traffic {engine.traffic.hops} hops"
    )


if __name__ == "__main__":
    main()
