#!/usr/bin/env python3
"""Windowed stream-join monitoring driven by the event simulator.

Two sensor streams — ``Temp(SensorId, RoomId, Celsius)`` and
``Smoke(DetectorId, RoomId, Level)`` — are joined on ``RoomId`` with a
sliding window: an alert fires only when a hot reading and a smoke
reading from the *same room* occur within the window.  DAI-T is used so
that, after warm-up, each new reading produces alerts with no traffic
beyond its own indexing (the paper's headline optimization).

Run with::

    python examples/stream_join_monitor.py
"""

import random

from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema, Simulator

WINDOW = 20.0
N_ROOMS = 8
N_READINGS = 300


def main() -> None:
    schema = Schema.from_dict(
        {
            "Temp": ["SensorId", "RoomId", "Celsius"],
            "Smoke": ["DetectorId", "RoomId", "Level"],
        }
    )
    network = ChordNetwork.build(256)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm="dai-t", window=WINDOW)
    )
    simulator = Simulator(network, engine.clock)
    rng = random.Random(11)

    control_room = network.nodes[0]
    query = engine.subscribe(
        control_room,
        "SELECT T.RoomId, S.Level FROM Temp AS T, Smoke AS S "
        "WHERE T.RoomId = S.RoomId",
        schema,
    )
    print(f"alert query installed ({query.key}), window = {WINDOW} time units\n")

    temp = schema.relation("Temp")
    smoke = schema.relation("Smoke")

    def publish_reading() -> None:
        origin = network.random_node(rng)
        room = rng.randrange(N_ROOMS)
        if rng.random() < 0.7:
            engine.publish(
                origin,
                temp,
                {"SensorId": rng.randrange(100), "RoomId": room, "Celsius": 20 + rng.randrange(60)},
            )
        else:
            engine.publish(
                origin,
                smoke,
                {"DetectorId": rng.randrange(100), "RoomId": room, "Level": rng.randrange(10)},
            )

    for index in range(N_READINGS):
        simulator.at(float(index), publish_reading)
    # Periodic window eviction keeps evaluator state bounded.
    simulator.every(10.0, engine.evict_expired, until=float(N_READINGS))

    simulator.run()
    engine.evict_expired()

    alerts = engine.notifications(control_room)
    by_room: dict[int, int] = {}
    for alert in alerts:
        room, _level = alert.row
        by_room[room] = by_room.get(room, 0) + 1
    print(f"{len(alerts)} alerts over {N_READINGS} readings:")
    for room in sorted(by_room):
        print(f"  room {room}: {by_room[room]} correlated temp/smoke alerts")

    load = engine.load_snapshot()
    print(
        f"\nevaluator state after final eviction: "
        f"{load.total_evaluator_storage} items "
        f"(window keeps it bounded); "
        f"traffic: {engine.traffic.hops} hops total"
    )


if __name__ == "__main__":
    main()
