#!/usr/bin/env python3
"""Chaos over TCP: a live ring surviving injected wire faults.

Boots a 6-node cluster of real asyncio TCP peers, then replays a seeded
workload while a :class:`~repro.net.chaos.LiveChaos` layer attacks the
transport with the acceptance preset: 5% of connection attempts refused,
5% of frame writes faulted (reset / truncated / garbled), one asymmetric
network partition mid-run, and two live crash/restart cycles — each
crash kills a node's server and event loop tasks for real, each restart
rejoins on a fresh port and recovers its state through the soft-state
lease protocol.

The heartbeat failure detector suspects unresponsive peers (routing
falls back to ring successors), jittered exponential backoff absorbs
the wire faults, and the bounded in-flight credit ledger keeps the
driver from out-running recovery.  At the end the delivered
notification set is compared against a fault-free in-process simulator
run of the identical workload: the digests must match, with zero
duplicate deliveries.

Run with::

    python examples/live_chaos.py

The same flow is exposed as a command line::

    python -m repro.net.cluster --chaos default --compare-sim

where ``--chaos frame=0.1,crashes=3,seed=42`` overrides individual
knobs (see ``parse_chaos_spec``).
"""

import asyncio

from repro.faults.plan import FaultPlan, NetFaultSpec
from repro.net.chaos import SoakSettings, run_chaos_soak, soak_reference
from repro.net.cluster import ClusterConfig
from repro.net.health import HealthConfig
from repro.net.peer import NetConfig
from repro.workload.generator import WorkloadParams, build_workload

ALGORITHM = "dai-v"
N_NODES = 6
N_QUERIES = 10
N_TUPLES = 50
SEED = 11

PLAN = FaultPlan(
    seed=17,
    max_attempts=4,
    backoff_base=0.02,
    backoff_jitter=0.5,
    net=NetFaultSpec(
        connect_refusal_probability=0.05,
        frame_fault_probability=0.05,
    ),
)

SETTINGS = SoakSettings(crashes=2, partition=True, asymmetric=True)


def main() -> None:
    workload = build_workload(
        WorkloadParams(
            n_queries=N_QUERIES,
            n_tuples=N_TUPLES,
            domain_size=24,
            seed=SEED,
        )
    )

    print(
        f"booting a live {N_NODES}-node ring and unleashing chaos "
        f"({ALGORITHM}, {N_QUERIES} queries, {N_TUPLES} tuples, "
        f"{SETTINGS.crashes} crash/restart cycles)..."
    )
    config = ClusterConfig(
        algorithm=ALGORITHM,
        n_nodes=N_NODES,
        seed=SEED,
        net=NetConfig.from_fault_plan(PLAN),
        health=HealthConfig(),
    )
    report = asyncio.run(
        run_chaos_soak(workload, config=config, plan=PLAN, settings=SETTINGS)
    )

    reference_digest, reference_delivered = soak_reference(
        workload,
        algorithm=ALGORITHM,
        n_nodes=N_NODES,
        seed=SEED,
        subscribers=SETTINGS.subscribers,
    )
    report.reference_digest = reference_digest
    report.matches_reference = reference_digest == report.notification_digest
    print(report.summary())
    print(
        f"fault-free simulator oracle: {reference_delivered} notifications, "
        f"digest {reference_digest[:12]}"
    )

    if report.duplicate_deliveries:
        raise SystemExit(
            f"FAIL: {report.duplicate_deliveries} duplicate deliveries"
        )
    if not report.within_budget:
        raise SystemExit(
            f"FAIL: peak in-flight {report.peak_in_flight} exceeded "
            f"budget {report.credit_budget}"
        )
    if not report.matches_reference:
        raise SystemExit("MISMATCH: chaos run diverged from the simulator")
    print(
        "survived the storm: exactly-once delivery, digest identical to "
        "the fault-free run"
    )


if __name__ == "__main__":
    main()
