"""Relational data model, expressions, queries, and the SQL parser."""

from .expr import AttrRef, BinaryOp, Const, Expression, Negate, evaluate, substitute
from .multiway import ChainCondition, MultiwayQuery, parse_multiway_query
from .parser import parse_query
from .query import (
    LEFT,
    RIGHT,
    BoundValue,
    JoinQuery,
    LocalFilter,
    PendingAttr,
    QuerySide,
    RewrittenQuery,
    Subscriber,
    rewrite,
)
from .schema import Relation, Schema, example_elearning_schema
from .tuples import DataTuple, ProjectedTuple

__all__ = [
    "AttrRef",
    "ChainCondition",
    "MultiwayQuery",
    "parse_multiway_query",
    "BinaryOp",
    "BoundValue",
    "Const",
    "DataTuple",
    "Expression",
    "JoinQuery",
    "LEFT",
    "LocalFilter",
    "Negate",
    "PendingAttr",
    "ProjectedTuple",
    "QuerySide",
    "Relation",
    "RewrittenQuery",
    "RIGHT",
    "Schema",
    "Subscriber",
    "evaluate",
    "example_elearning_schema",
    "parse_query",
    "rewrite",
    "substitute",
]
