"""Expression ASTs for join conditions (Section 3.2).

A two-way equi-join ``Where α = β`` allows each side to be an arbitrary
expression (arithmetic, string) over a *single* relation's attributes
plus constants.  Queries whose sides are single attributes are type
``T1``; sides involving several attributes make the query type ``T2``
(handled only by DAI-V, Section 4.5).

AST nodes are frozen dataclasses, so they are hashable and can appear
inside message payloads and rewritten-query keys.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Union

from ..errors import QueryError

Expression = Union["Const", "AttrRef", "BinaryOp", "Negate"]

_OPERATORS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


@dataclass(frozen=True, slots=True)
class Const:
    """A literal constant (number or string)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True, slots=True)
class AttrRef:
    """A qualified attribute reference ``R.A``."""

    relation: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute}"


@dataclass(frozen=True, slots=True)
class BinaryOp:
    """An arithmetic/string operation ``left op right``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in _OPERATORS:
            raise QueryError(f"unsupported operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class Negate:
    """Unary minus."""

    operand: Expression

    def __str__(self) -> str:
        return f"(-{self.operand})"


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------

def attributes_of(expr: Expression) -> set[AttrRef]:
    """All attribute references appearing in ``expr``."""
    if isinstance(expr, AttrRef):
        return {expr}
    if isinstance(expr, Const):
        return set()
    if isinstance(expr, Negate):
        return attributes_of(expr.operand)
    if isinstance(expr, BinaryOp):
        return attributes_of(expr.left) | attributes_of(expr.right)
    raise QueryError(f"not an expression: {expr!r}")


def relations_of(expr: Expression) -> set[str]:
    """Names of the relations referenced by ``expr``."""
    return {ref.relation for ref in attributes_of(expr)}


def is_single_attribute(expr: Expression) -> bool:
    """True when the expression is exactly one attribute reference.

    This is the structural half of the type-T1 criterion: both sides of
    the join condition are single attributes, so ``α = β`` has a unique
    solution over the attribute domains.
    """
    return isinstance(expr, AttrRef)


# ----------------------------------------------------------------------
# Evaluation / substitution
# ----------------------------------------------------------------------

def evaluate(expr: Expression, tuple_like) -> Any:
    """Evaluate ``expr`` against a tuple of its (single) relation.

    ``tuple_like`` must expose ``value(attribute)``; both
    :class:`~repro.sql.tuples.DataTuple` and
    :class:`~repro.sql.tuples.ProjectedTuple` do.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, AttrRef):
        return tuple_like.value(expr.attribute)
    if isinstance(expr, Negate):
        return -evaluate(expr.operand, tuple_like)
    if isinstance(expr, BinaryOp):
        left = evaluate(expr.left, tuple_like)
        right = evaluate(expr.right, tuple_like)
        try:
            return _OPERATORS[expr.op](left, right)
        except TypeError as exc:
            raise QueryError(f"cannot evaluate {expr}: {exc}") from exc
    raise QueryError(f"not an expression: {expr!r}")


def substitute(expr: Expression, relation: str, tuple_like) -> Expression:
    """Replace ``relation``'s attributes in ``expr`` by tuple values.

    This is the rewriting step of Section 4.3.2: "each attribute of
    IndexR(q) in the Select and Where clause of q is replaced by its
    corresponding value in t".  Sub-expressions that become constant are
    folded.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, AttrRef):
        if expr.relation == relation:
            return Const(tuple_like.value(expr.attribute))
        return expr
    if isinstance(expr, Negate):
        inner = substitute(expr.operand, relation, tuple_like)
        if isinstance(inner, Const):
            return Const(-inner.value)
        return Negate(inner)
    if isinstance(expr, BinaryOp):
        left = substitute(expr.left, relation, tuple_like)
        right = substitute(expr.right, relation, tuple_like)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(_OPERATORS[expr.op](left.value, right.value))
        return BinaryOp(expr.op, left, right)
    raise QueryError(f"not an expression: {expr!r}")


def linear_form(expr: Expression):
    """Decompose ``expr`` as ``a * X + b`` over a single attribute ``X``.

    Returns ``(attr_ref, a, b)`` when the expression is linear in
    exactly one attribute with ``a != 0`` — the shape for which the
    equality ``expr = v`` has the unique solution ``X = (v - b) / a``.
    Returns ``None`` for constants, multi-attribute or non-linear
    expressions (which only DAI-V can evaluate).

    This implements the paper's full type-T1 criterion: "α and β
    involve a single attribute of R and S ... and equality α = β has a
    unique solution over dom(A_i) × dom(B_j)" (Section 3.2).
    """
    decomposed = _linear_terms(expr)
    if decomposed is None:
        return None
    attr, a, b = decomposed
    if attr is None or a == 0:
        return None
    return attr, a, b


def _linear_terms(expr: Expression):
    """``(attr | None, a, b)`` such that expr == a * attr + b, or None."""
    if isinstance(expr, Const):
        if isinstance(expr.value, (int, float)) and not isinstance(expr.value, bool):
            return None, 0, expr.value
        return None  # strings and other constants are not linear terms
    if isinstance(expr, AttrRef):
        return expr, 1, 0
    if isinstance(expr, Negate):
        inner = _linear_terms(expr.operand)
        if inner is None:
            return None
        attr, a, b = inner
        return attr, -a, -b
    if isinstance(expr, BinaryOp):
        left = _linear_terms(expr.left)
        right = _linear_terms(expr.right)
        if left is None or right is None:
            return None
        l_attr, l_a, l_b = left
        r_attr, r_a, r_b = right
        if expr.op in ("+", "-"):
            sign = 1 if expr.op == "+" else -1
            if l_attr is not None and r_attr is not None and l_attr != r_attr:
                return None  # two different attributes: not single-attribute
            attr = l_attr if l_attr is not None else r_attr
            return attr, l_a + sign * r_a, l_b + sign * r_b
        if expr.op == "*":
            if l_attr is not None and r_attr is not None:
                return None  # attr * attr: quadratic
            if l_attr is None:
                return r_attr, l_b * r_a, l_b * r_b
            return l_attr, l_a * r_b, l_b * r_b
        if expr.op == "/":
            if r_attr is not None or r_b == 0:
                return None  # dividing by an attribute or by zero
            return l_attr, l_a / r_b, l_b / r_b
    return None


def canonical_text(expr: Expression) -> str:
    """Deterministic textual form, used in grouping signatures and keys."""
    return str(expr)


def canonical_value(value: Any) -> Any:
    """Normalize a join value so equal values hash and print identically.

    The paper treats numeric values "as strings" when building
    identifiers (Section 4.2); integral floats (e.g. from a division in
    a T2 expression) must therefore collapse onto their integer form or
    the two sides of ``R.A = S.B / 2`` could hash to different
    identifiers despite being equal.
    """
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, bool):  # bool is an int subclass; keep it stable
        return int(value)
    return value
