"""Data tuples with publication-time semantics (Section 3.2).

Every tuple ``t`` carries its *publication time* ``pubT(t)``: the time
it was inserted into the system.  A tuple can trigger a query ``q`` only
if ``pubT(t) >= insT(q)`` — continuous queries see only data published
after they were posed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import SchemaError
from .schema import Relation


@dataclass(frozen=True, slots=True)
class DataTuple:
    """An immutable tuple of a relation.

    ``values`` is aligned with ``relation.attributes``; construction via
    :meth:`make` accepts a mapping and validates it against the schema.
    """

    relation: Relation
    values: tuple[Any, ...]
    pub_time: float = 0.0

    def __post_init__(self):
        if len(self.values) != self.relation.arity:
            raise SchemaError(
                f"tuple arity {len(self.values)} does not match relation "
                f"{self.relation.name} (expects {self.relation.arity})"
            )

    @classmethod
    def make(
        cls,
        relation: Relation,
        values: Mapping[str, Any],
        pub_time: float = 0.0,
    ) -> "DataTuple":
        """Build a tuple from an attribute→value mapping."""
        missing = [a for a in relation.attributes if a not in values]
        if missing:
            raise SchemaError(
                f"tuple for {relation.name} is missing attributes {missing}"
            )
        extra = [a for a in values if not relation.has_attribute(a)]
        if extra:
            raise SchemaError(
                f"tuple for {relation.name} has unknown attributes {extra}"
            )
        ordered = tuple(values[a] for a in relation.attributes)
        return cls(relation, ordered, pub_time)

    def value(self, attribute: str) -> Any:
        """Value of ``attribute`` (SchemaError if the attribute is unknown)."""
        return self.values[self.relation.index_of(attribute)]

    def as_dict(self) -> dict[str, Any]:
        """Attribute→value view of this tuple."""
        return dict(zip(self.relation.attributes, self.values))

    def project(self, attributes: tuple[str, ...]) -> "ProjectedTuple":
        """Projection onto a subset of attributes (used by DAI-V, §4.5).

        The DAI-V rewriter ships only "the projection of t on the
        attributes needed for the evaluation of the join", so evaluators
        store less state.
        """
        return ProjectedTuple(
            relation_name=self.relation.name,
            items=tuple((a, self.value(a)) for a in attributes),
            pub_time=self.pub_time,
        )

    def __str__(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        return f"{self.relation.name}({rendered})"


@dataclass(frozen=True, slots=True)
class ProjectedTuple:
    """A tuple projected onto a subset of its attributes."""

    relation_name: str
    items: tuple[tuple[str, Any], ...]
    pub_time: float = 0.0

    def value(self, attribute: str) -> Any:
        for name, value in self.items:
            if name == attribute:
                return value
        raise SchemaError(
            f"projected tuple of {self.relation_name} lacks {attribute!r}"
        )

    def has(self, attribute: str) -> bool:
        return any(name == attribute for name, _ in self.items)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.items)
