"""Continuous two-way equi-join queries and their rewritten forms.

Implements the query model of Section 3.2 and the rewriting vocabulary
of Chapter 4:

* a :class:`JoinQuery` is ``SELECT ... FROM R, S WHERE α = β`` with
  optional conjoined local equality filters (``AND S.C = 10``);
* queries are **type T1** when both ``α`` and ``β`` are single
  attributes (so the equality has a unique solution over the attribute
  domains) and **type T2** otherwise;
* a :class:`RewrittenQuery` is the select-project query produced when an
  incoming tuple triggers a query at a rewriter node: the triggering
  relation's attributes are replaced by values and the query is
  reindexed at the value level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Any, Optional

from ..errors import QueryError
from ..perf import PERF
from .expr import (
    AttrRef,
    Const,
    Expression,
    attributes_of,
    canonical_text,
    canonical_value,
    evaluate,
    is_single_attribute,
    linear_form,
    relations_of,
    substitute,
)

#: Labels for the two sides of a join condition.  The DAI algorithms
#: index a query once per side (``q_L`` / ``q_R`` in the paper).
LEFT = "left"
RIGHT = "right"


@dataclass(frozen=True, slots=True)
class LocalFilter:
    """A conjoined equality predicate over one relation (``A.Surname = 'Smith'``)."""

    attribute: str
    value: Any

    def holds(self, tuple_like) -> bool:
        """Test the predicate against a tuple of the filter's relation."""
        return tuple_like.value(self.attribute) == self.value

    def __str__(self) -> str:
        rendered = repr(self.value) if isinstance(self.value, str) else str(self.value)
        return f"{self.attribute}={rendered}"


@dataclass(frozen=True)
class QuerySide:
    """One side of the join: a relation, its join expression, filters.

    The classification helpers (``join_attributes``, ``linear_form`` and
    friends) are pure functions of the immutable fields but are consulted
    on *every* query trigger — hundreds of thousands of times per run —
    so they are ``cached_property``s.  ``cached_property`` stores into
    ``__dict__`` directly, which sidesteps the frozen ``__setattr__``,
    and dataclass equality/hash only look at declared fields, so the
    caches never leak into comparisons.
    """

    relation: str
    expr: Expression
    filters: tuple[LocalFilter, ...] = ()

    def __post_init__(self):
        referenced = relations_of(self.expr)
        if referenced - {self.relation}:
            raise QueryError(
                f"side expression {self.expr} references relations "
                f"{referenced - {self.relation}} outside {self.relation}"
            )
        if not referenced:
            raise QueryError(
                f"side expression {self.expr} references no attribute of "
                f"{self.relation}"
            )

    @cached_property
    def join_attributes(self) -> tuple[str, ...]:
        """Attributes of this relation appearing in the join expression,
        sorted for determinism."""
        return tuple(sorted(ref.attribute for ref in attributes_of(self.expr)))

    @cached_property
    def single_attribute(self) -> Optional[str]:
        """The attribute name if the expression is a bare attribute."""
        return self.expr.attribute if is_single_attribute(self.expr) else None

    @cached_property
    def _linear_form(self):
        """Memoized ``linear_form(self.expr)`` — the expression never changes."""
        return linear_form(self.expr)

    @cached_property
    def invertible_attribute(self) -> Optional[str]:
        """The attribute if the side is linear in exactly one attribute.

        This is the paper's full T1 criterion: ``a * X + b = v`` has the
        unique solution ``X = (v - b) / a``, so the side can be solved
        for the attribute value that satisfies the join condition.
        Bare attributes are the ``a = 1, b = 0`` special case.
        """
        form = self._linear_form
        return form[0].attribute if form is not None else None

    def solve_for_attribute(self, target_value: Any) -> Any:
        """The value this side's attribute must take so expr == target.

        Only valid when :attr:`invertible_attribute` is not None.
        """
        form = self._linear_form
        if form is None:
            raise QueryError(
                f"side expression {self.expr} is not invertible"
            )
        _, a, b = form
        if a == 1 and b == 0:
            # Identity: also covers non-numeric domains (string joins).
            return canonical_value(target_value)
        try:
            return canonical_value((target_value - b) / a)
        except TypeError as exc:
            raise QueryError(
                f"cannot solve {self.expr} = {target_value!r}: {exc}"
            ) from exc

    def accepts(self, tuple_like) -> bool:
        """True when a tuple satisfies every local filter of this side."""
        if not self.filters:  # the common case; skip the genexpr
            return True
        return all(f.holds(tuple_like) for f in self.filters)

    @cached_property
    def _signature(self) -> str:
        filters = ",".join(str(f) for f in sorted(self.filters, key=str))
        return f"{self.relation}:{canonical_text(self.expr)}[{filters}]"

    def signature(self) -> str:
        """Canonical text used for query grouping (Section 4.3.5)."""
        return self._signature


@dataclass(frozen=True, slots=True)
class Subscriber:
    """Identity of the node that posed a query (Section 4.6).

    ``ident`` is ``Id(n) = Hash(Key(n))`` and ``ip`` the address used
    for one-hop notification delivery while the subscriber is online.
    """

    key: str
    ident: int
    ip: str


@dataclass(frozen=True)
class JoinQuery:
    """A continuous two-way equi-join query.

    Built by the parser without subscription metadata; the engine binds
    ``key``, ``insertion_time`` and ``subscriber`` via
    :meth:`with_subscription` when the query enters the network.
    """

    select: tuple[AttrRef, ...]
    left: QuerySide
    right: QuerySide
    key: str = ""
    insertion_time: float = 0.0
    subscriber: Optional[Subscriber] = None

    def __post_init__(self):
        if self.left.relation == self.right.relation:
            raise QueryError(
                "self-joins are not supported (both sides reference "
                f"{self.left.relation})"
            )
        for ref in self.select:
            if ref.relation not in (self.left.relation, self.right.relation):
                raise QueryError(
                    f"select attribute {ref} references a relation outside "
                    f"the FROM clause"
                )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def query_type(self) -> str:
        """``"T1"`` or ``"T2"`` (Section 3.2).

        T1: each side involves a single attribute and the equality has
        a unique solution — i.e. both sides are linear in one attribute
        (bare attributes are the common special case).  Everything else
        (multi-attribute or non-linear sides) is T2 and can only be
        evaluated by DAI-V.
        """
        if self.left.invertible_attribute and self.right.invertible_attribute:
            return "T1"
        return "T2"

    # ------------------------------------------------------------------
    # Side access
    # ------------------------------------------------------------------
    def side(self, label: str) -> QuerySide:
        if label == LEFT:
            return self.left
        if label == RIGHT:
            return self.right
        raise QueryError(f"unknown side label {label!r}")

    def other_label(self, label: str) -> str:
        if label == LEFT:
            return RIGHT
        if label == RIGHT:
            return LEFT
        raise QueryError(f"unknown side label {label!r}")

    def side_for_relation(self, relation: str) -> str:
        """Which side (label) a relation sits on."""
        if relation == self.left.relation:
            return LEFT
        if relation == self.right.relation:
            return RIGHT
        raise QueryError(f"relation {relation} not part of query {self.key!r}")

    def index_attribute(self, label: str) -> str:
        """The attribute used to index this query on side ``label``.

        For T1 sides it is *the* join attribute; for T2 sides (DAI-V)
        one representative attribute is chosen deterministically —
        "the query will be indexed ... according to one of the
        attributes in the left part of the join condition" (§4.5).
        """
        side = self.side(label)
        single = side.single_attribute
        if single is not None:
            return single
        return side.join_attributes[0]

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------
    @cached_property
    def _rewrite_plans(self) -> dict:
        """Per-side :class:`RewritePlan`, built on first trigger."""
        return {LEFT: RewritePlan(self, LEFT), RIGHT: RewritePlan(self, RIGHT)}

    @cached_property
    def side_needed_attributes(self) -> dict[str, tuple[str, ...]]:
        """Per side: the attributes a DAI-V projection of that side must
        carry — select attributes of the side's relation, its
        join-expression attributes and its filter attributes (sorted).
        """
        result = {}
        for label in (LEFT, RIGHT):
            side = self.side(label)
            needed = {
                ref.attribute for ref in self.select if ref.relation == side.relation
            }
            needed.update(ref.attribute for ref in attributes_of(side.expr))
            needed.update(f.attribute for f in side.filters)
            result[label] = tuple(sorted(needed))
        return result

    @cached_property
    def _join_signature(self) -> str:
        return f"{self.left.signature()}={self.right.signature()}"

    def join_signature(self) -> str:
        """Canonical identity of the join condition, for grouping.

        "All queries that have equivalent join condition are grouped
        together at each rewriter and evaluator node" (Section 4.3.5).
        """
        return self._join_signature

    # ------------------------------------------------------------------
    # Subscription binding
    # ------------------------------------------------------------------
    def with_subscription(
        self, key: str, insertion_time: float, subscriber: Subscriber
    ) -> "JoinQuery":
        """Return a copy bound to a subscriber at submission time."""
        return replace(
            self, key=key, insertion_time=insertion_time, subscriber=subscriber
        )

    def __str__(self) -> str:
        select = ", ".join(str(ref) for ref in self.select)
        conjuncts = [f"{self.left.expr} = {self.right.expr}"]
        for side in (self.left, self.right):
            conjuncts.extend(f"{side.relation}.{f}" for f in side.filters)
        return (
            f"SELECT {select} FROM {self.left.relation}, {self.right.relation} "
            f"WHERE {' AND '.join(conjuncts)}"
        )


# ----------------------------------------------------------------------
# Select items of rewritten queries
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class BoundValue:
    """A select item already replaced by a value from the trigger tuple."""

    value: Any


@dataclass(frozen=True, slots=True)
class PendingAttr:
    """A select item still to be read from a matching dis-side tuple."""

    attribute: str


SelectItem = BoundValue | PendingAttr


@dataclass(slots=True, eq=False)
class RewrittenQuery:
    """A select-project query produced by rewriting a join query.

    One is allocated per (query, trigger tuple) pair — the hottest
    allocation of the simulator — so the class is slotted and skips the
    frozen machinery (a frozen dataclass pays ``object.__setattr__`` per
    field on *every* construction, ~8x slower).  Instances are immutable
    by convention: nothing mutates one after ``rewrite()`` returns, and
    identity/equality is always taken on ``key`` (Section 4.3.3), never
    on field-wise comparison.

    Example from Section 4.3.2: triggering
    ``SELECT R.A, S.B FROM R, S WHERE R.C = S.C`` with ``S(3, 4, 7)``
    yields ``SELECT R.A, 4 FROM R WHERE R.C = 7``, reindexed at
    ``Successor(Hash("R" + "C" + "7"))``.
    """

    #: ``Key(q') = Key(q) + v_1 + ... + v_l + valDA`` (Section 4.3.3).
    key: str
    original_key: str
    group_signature: str
    subscriber: Subscriber
    insertion_time: float
    #: The load-distributing relation whose tuples can satisfy this query.
    relation: str
    #: The dis-side join expression (over ``relation``).
    expr: Expression
    #: The value the dis-side *expression* must take (``valJC``).
    required_value: Any
    #: ``DisA`` — the level-1 VLQT key for SAI/DAI-Q/DAI-T; ``None``
    #: when the dis side is not invertible (T2, DAI-V only).
    dis_attribute: Optional[str]
    #: ``valDA`` — the solved value of ``DisA`` (equals
    #: ``required_value`` for bare-attribute sides); ``None`` when the
    #: dis side is not invertible.
    dis_value: Any
    filters: tuple[LocalFilter, ...]
    select: tuple[SelectItem, ...]
    #: ``pubT`` of the tuple that triggered the rewrite — "the time
    #: information is necessary when creating notifications".
    trigger_pub_time: float

    def matches(self, tuple_like, *, check_value: bool = True) -> bool:
        """Does a dis-relation tuple satisfy this rewritten query?

        Checks the local filters, the time semantics
        (``pubT >= insT(q)``) and — unless the caller already guarantees
        it through hash placement — the join-value equality.
        """
        if tuple_like.pub_time < self.insertion_time:
            return False
        if not all(f.holds(tuple_like) for f in self.filters):
            return False
        if check_value:
            try:
                if evaluate(self.expr, tuple_like) != self.required_value:
                    return False
            except QueryError:
                return False
        return True

    def result_row(self, tuple_like) -> tuple[Any, ...]:
        """Materialize the notification row from a matching tuple."""
        row = []
        for item in self.select:
            if isinstance(item, BoundValue):
                row.append(item.value)
            else:
                row.append(tuple_like.value(item.attribute))
        return tuple(row)

    @property
    def needed_attributes(self) -> tuple[str, ...]:
        """Dis-relation attributes required to evaluate and project.

        Determines the DAI-V projection: select attributes still
        pending, the join-expression attributes, and filter attributes.
        """
        needed = {item.attribute for item in self.select if isinstance(item, PendingAttr)}
        needed.update(ref.attribute for ref in attributes_of(self.expr))
        needed.update(f.attribute for f in self.filters)
        return tuple(sorted(needed))


class RewritePlan:
    """The trigger-independent skeleton of a rewrite (one per query side).

    ``rewrite()`` runs once per (query entry, trigger tuple) pair — by
    far the hottest application-level call of the simulator — yet most
    of what it computes depends only on the query: which side is the
    index side, whether the dis side is invertible (and its linear
    coefficients), which select items bind from the trigger versus stay
    pending.  A plan precomputes all of that once per query instance
    (built lazily via :attr:`JoinQuery._rewrite_plans`), so the per-trigger
    work shrinks to value lookups and one string join.
    """

    __slots__ = (
        "index_relation",
        "index_side",
        "index_expr",
        "index_attr",
        "dis_side",
        "dis_attribute",
        "dis_identity",
        "dis_a",
        "dis_b",
        "select_spec",
        "query_key",
        "group_signature",
        "subscriber",
        "insertion_time",
        "dis_relation",
        "dis_expr",
        "dis_filters",
        "pos_relation",
        "index_pos",
        "select_pos_spec",
    )

    def __init__(self, query: "JoinQuery", index_label: str):
        index_side = query.side(index_label)
        dis_side = query.side(query.other_label(index_label))
        self.index_relation = index_side.relation
        self.index_side = index_side
        self.index_expr = index_side.expr
        self.query_key = query.key
        self.group_signature = query.join_signature()
        self.subscriber = query.subscriber
        self.insertion_time = query.insertion_time
        self.dis_relation = dis_side.relation
        self.dis_expr = dis_side.expr
        self.dis_filters = dis_side.filters
        #: Bare-attribute fast path: substitution folds straight to the
        #: trigger's value of this attribute.
        self.index_attr = (
            self.index_expr.attribute if type(self.index_expr) is AttrRef else None
        )
        self.dis_side = dis_side
        self.dis_attribute = dis_side.invertible_attribute
        form = dis_side._linear_form
        if form is not None:
            _, self.dis_a, self.dis_b = form
            self.dis_identity = self.dis_a == 1 and self.dis_b == 0
        else:
            self.dis_a = self.dis_b = None
            self.dis_identity = False
        #: Per select item: the trigger attribute to bind, or the shared
        #: (immutable) ``PendingAttr`` to reuse verbatim.
        self.select_spec: tuple[tuple[Optional[str], Optional[PendingAttr]], ...] = tuple(
            (ref.attribute, None)
            if ref.relation == index_side.relation
            else (None, PendingAttr(ref.attribute))
            for ref in query.select
        )
        #: Positional variants of :attr:`index_attr`/:attr:`select_spec`,
        #: bound lazily to the first trigger's ``Relation`` object so
        #: ``rewrite()`` can index ``trigger.values`` directly instead of
        #: going through ``DataTuple.value`` name lookups.
        self.pos_relation = None
        self.index_pos: Optional[int] = None
        self.select_pos_spec: tuple[tuple[Optional[int], Optional[PendingAttr]], ...] = ()

    def bind_positions(self, relation) -> None:
        """Resolve attribute names to positions in ``relation``.

        Called once per (plan, Relation object); re-bound if a trigger
        arrives with a distinct schema object of the same name.
        """
        positions = relation._positions
        if self.index_attr is not None:
            self.index_pos = positions[self.index_attr]
        self.select_pos_spec = tuple(
            (None, pending) if attribute is None else (positions[attribute], None)
            for attribute, pending in self.select_spec
        )
        self.pos_relation = relation


def rewrite(query: JoinQuery, index_label: str, trigger) -> RewrittenQuery:
    """Rewrite ``query`` triggered by tuple ``trigger`` on side ``index_label``.

    Replaces every attribute of the index relation in the Select and
    Where clauses with the trigger tuple's values (Section 4.3.2),
    computes the value the remaining side must take, and forms the
    rewritten-query key.  The query-invariant parts come from the
    memoized :class:`RewritePlan`.
    """
    if PERF.enabled:
        PERF.count("sql.rewrites")
    plan = query._rewrite_plans[index_label]

    relation = trigger.relation
    if relation.name != plan.index_relation:
        raise QueryError(
            f"tuple of {relation.name} cannot trigger side "
            f"{index_label} ({plan.index_relation}) of query {query.key!r}"
        )
    if plan.pos_relation is not relation:
        plan.bind_positions(relation)

    trigger_values = trigger.values
    if plan.index_pos is not None:
        value = trigger_values[plan.index_pos]
        required_value = value if type(value) is int else canonical_value(value)
    else:
        substituted = substitute(plan.index_expr, plan.index_relation, trigger)
        if not isinstance(substituted, Const):
            raise QueryError(
                f"index-side expression {plan.index_expr} did not fold to a "
                f"constant for tuple {trigger}"
            )
        required_value = canonical_value(substituted.value)

    if plan.dis_attribute is None:
        dis_value = None
    elif plan.dis_identity:
        # Identity linear form: already canonical (also covers strings).
        dis_value = required_value
    else:
        try:
            dis_value = canonical_value((required_value - plan.dis_b) / plan.dis_a)
        except TypeError as exc:
            raise QueryError(
                f"cannot solve {plan.dis_side.expr} = {required_value!r}: {exc}"
            ) from exc

    select_items: list[SelectItem] = []
    key_parts = [plan.query_key]
    for bind_position, pending in plan.select_pos_spec:
        if bind_position is None:
            select_items.append(pending)
        else:
            value = trigger_values[bind_position]
            select_items.append(BoundValue(value))
            key_parts.append(str(value))
    key_parts.append(str(required_value))

    return RewrittenQuery(
        key="+".join(key_parts),
        original_key=plan.query_key,
        group_signature=plan.group_signature,
        subscriber=plan.subscriber,
        insertion_time=plan.insertion_time,
        relation=plan.dis_relation,
        expr=plan.dis_expr,
        required_value=required_value,
        dis_attribute=plan.dis_attribute,
        dis_value=dis_value,
        filters=plan.dis_filters,
        select=tuple(select_items),
        trigger_pub_time=trigger.pub_time,
    )
