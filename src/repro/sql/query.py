"""Continuous two-way equi-join queries and their rewritten forms.

Implements the query model of Section 3.2 and the rewriting vocabulary
of Chapter 4:

* a :class:`JoinQuery` is ``SELECT ... FROM R, S WHERE α = β`` with
  optional conjoined local equality filters (``AND S.C = 10``);
* queries are **type T1** when both ``α`` and ``β`` are single
  attributes (so the equality has a unique solution over the attribute
  domains) and **type T2** otherwise;
* a :class:`RewrittenQuery` is the select-project query produced when an
  incoming tuple triggers a query at a rewriter node: the triggering
  relation's attributes are replaced by values and the query is
  reindexed at the value level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..errors import QueryError
from .expr import (
    AttrRef,
    Const,
    Expression,
    attributes_of,
    canonical_text,
    canonical_value,
    evaluate,
    is_single_attribute,
    linear_form,
    relations_of,
    substitute,
)

#: Labels for the two sides of a join condition.  The DAI algorithms
#: index a query once per side (``q_L`` / ``q_R`` in the paper).
LEFT = "left"
RIGHT = "right"


@dataclass(frozen=True)
class LocalFilter:
    """A conjoined equality predicate over one relation (``A.Surname = 'Smith'``)."""

    attribute: str
    value: Any

    def holds(self, tuple_like) -> bool:
        """Test the predicate against a tuple of the filter's relation."""
        return tuple_like.value(self.attribute) == self.value

    def __str__(self) -> str:
        rendered = repr(self.value) if isinstance(self.value, str) else str(self.value)
        return f"{self.attribute}={rendered}"


@dataclass(frozen=True)
class QuerySide:
    """One side of the join: a relation, its join expression, filters."""

    relation: str
    expr: Expression
    filters: tuple[LocalFilter, ...] = ()

    def __post_init__(self):
        referenced = relations_of(self.expr)
        if referenced - {self.relation}:
            raise QueryError(
                f"side expression {self.expr} references relations "
                f"{referenced - {self.relation}} outside {self.relation}"
            )
        if not referenced:
            raise QueryError(
                f"side expression {self.expr} references no attribute of "
                f"{self.relation}"
            )

    @property
    def join_attributes(self) -> tuple[str, ...]:
        """Attributes of this relation appearing in the join expression,
        sorted for determinism."""
        return tuple(sorted(ref.attribute for ref in attributes_of(self.expr)))

    @property
    def single_attribute(self) -> Optional[str]:
        """The attribute name if the expression is a bare attribute."""
        return self.expr.attribute if is_single_attribute(self.expr) else None

    @property
    def invertible_attribute(self) -> Optional[str]:
        """The attribute if the side is linear in exactly one attribute.

        This is the paper's full T1 criterion: ``a * X + b = v`` has the
        unique solution ``X = (v - b) / a``, so the side can be solved
        for the attribute value that satisfies the join condition.
        Bare attributes are the ``a = 1, b = 0`` special case.
        """
        form = linear_form(self.expr)
        return form[0].attribute if form is not None else None

    def solve_for_attribute(self, target_value: Any) -> Any:
        """The value this side's attribute must take so expr == target.

        Only valid when :attr:`invertible_attribute` is not None.
        """
        form = linear_form(self.expr)
        if form is None:
            raise QueryError(
                f"side expression {self.expr} is not invertible"
            )
        _, a, b = form
        if a == 1 and b == 0:
            # Identity: also covers non-numeric domains (string joins).
            return canonical_value(target_value)
        try:
            return canonical_value((target_value - b) / a)
        except TypeError as exc:
            raise QueryError(
                f"cannot solve {self.expr} = {target_value!r}: {exc}"
            ) from exc

    def accepts(self, tuple_like) -> bool:
        """True when a tuple satisfies every local filter of this side."""
        return all(f.holds(tuple_like) for f in self.filters)

    def signature(self) -> str:
        """Canonical text used for query grouping (Section 4.3.5)."""
        filters = ",".join(str(f) for f in sorted(self.filters, key=str))
        return f"{self.relation}:{canonical_text(self.expr)}[{filters}]"


@dataclass(frozen=True)
class Subscriber:
    """Identity of the node that posed a query (Section 4.6).

    ``ident`` is ``Id(n) = Hash(Key(n))`` and ``ip`` the address used
    for one-hop notification delivery while the subscriber is online.
    """

    key: str
    ident: int
    ip: str


@dataclass(frozen=True)
class JoinQuery:
    """A continuous two-way equi-join query.

    Built by the parser without subscription metadata; the engine binds
    ``key``, ``insertion_time`` and ``subscriber`` via
    :meth:`with_subscription` when the query enters the network.
    """

    select: tuple[AttrRef, ...]
    left: QuerySide
    right: QuerySide
    key: str = ""
    insertion_time: float = 0.0
    subscriber: Optional[Subscriber] = None

    def __post_init__(self):
        if self.left.relation == self.right.relation:
            raise QueryError(
                "self-joins are not supported (both sides reference "
                f"{self.left.relation})"
            )
        for ref in self.select:
            if ref.relation not in (self.left.relation, self.right.relation):
                raise QueryError(
                    f"select attribute {ref} references a relation outside "
                    f"the FROM clause"
                )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def query_type(self) -> str:
        """``"T1"`` or ``"T2"`` (Section 3.2).

        T1: each side involves a single attribute and the equality has
        a unique solution — i.e. both sides are linear in one attribute
        (bare attributes are the common special case).  Everything else
        (multi-attribute or non-linear sides) is T2 and can only be
        evaluated by DAI-V.
        """
        if self.left.invertible_attribute and self.right.invertible_attribute:
            return "T1"
        return "T2"

    # ------------------------------------------------------------------
    # Side access
    # ------------------------------------------------------------------
    def side(self, label: str) -> QuerySide:
        if label == LEFT:
            return self.left
        if label == RIGHT:
            return self.right
        raise QueryError(f"unknown side label {label!r}")

    def other_label(self, label: str) -> str:
        if label == LEFT:
            return RIGHT
        if label == RIGHT:
            return LEFT
        raise QueryError(f"unknown side label {label!r}")

    def side_for_relation(self, relation: str) -> str:
        """Which side (label) a relation sits on."""
        if relation == self.left.relation:
            return LEFT
        if relation == self.right.relation:
            return RIGHT
        raise QueryError(f"relation {relation} not part of query {self.key!r}")

    def index_attribute(self, label: str) -> str:
        """The attribute used to index this query on side ``label``.

        For T1 sides it is *the* join attribute; for T2 sides (DAI-V)
        one representative attribute is chosen deterministically —
        "the query will be indexed ... according to one of the
        attributes in the left part of the join condition" (§4.5).
        """
        side = self.side(label)
        single = side.single_attribute
        if single is not None:
            return single
        return side.join_attributes[0]

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------
    def join_signature(self) -> str:
        """Canonical identity of the join condition, for grouping.

        "All queries that have equivalent join condition are grouped
        together at each rewriter and evaluator node" (Section 4.3.5).
        """
        return f"{self.left.signature()}={self.right.signature()}"

    # ------------------------------------------------------------------
    # Subscription binding
    # ------------------------------------------------------------------
    def with_subscription(
        self, key: str, insertion_time: float, subscriber: Subscriber
    ) -> "JoinQuery":
        """Return a copy bound to a subscriber at submission time."""
        return replace(
            self, key=key, insertion_time=insertion_time, subscriber=subscriber
        )

    def __str__(self) -> str:
        select = ", ".join(str(ref) for ref in self.select)
        conjuncts = [f"{self.left.expr} = {self.right.expr}"]
        for side in (self.left, self.right):
            conjuncts.extend(f"{side.relation}.{f}" for f in side.filters)
        return (
            f"SELECT {select} FROM {self.left.relation}, {self.right.relation} "
            f"WHERE {' AND '.join(conjuncts)}"
        )


# ----------------------------------------------------------------------
# Select items of rewritten queries
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BoundValue:
    """A select item already replaced by a value from the trigger tuple."""

    value: Any


@dataclass(frozen=True)
class PendingAttr:
    """A select item still to be read from a matching dis-side tuple."""

    attribute: str


SelectItem = BoundValue | PendingAttr


@dataclass(frozen=True)
class RewrittenQuery:
    """A select-project query produced by rewriting a join query.

    Example from Section 4.3.2: triggering
    ``SELECT R.A, S.B FROM R, S WHERE R.C = S.C`` with ``S(3, 4, 7)``
    yields ``SELECT R.A, 4 FROM R WHERE R.C = 7``, reindexed at
    ``Successor(Hash("R" + "C" + "7"))``.
    """

    #: ``Key(q') = Key(q) + v_1 + ... + v_l + valDA`` (Section 4.3.3).
    key: str
    original_key: str
    group_signature: str
    subscriber: Subscriber
    insertion_time: float
    #: The load-distributing relation whose tuples can satisfy this query.
    relation: str
    #: The dis-side join expression (over ``relation``).
    expr: Expression
    #: The value the dis-side *expression* must take (``valJC``).
    required_value: Any
    #: ``DisA`` — the level-1 VLQT key for SAI/DAI-Q/DAI-T; ``None``
    #: when the dis side is not invertible (T2, DAI-V only).
    dis_attribute: Optional[str]
    #: ``valDA`` — the solved value of ``DisA`` (equals
    #: ``required_value`` for bare-attribute sides); ``None`` when the
    #: dis side is not invertible.
    dis_value: Any
    filters: tuple[LocalFilter, ...]
    select: tuple[SelectItem, ...]
    #: ``pubT`` of the tuple that triggered the rewrite — "the time
    #: information is necessary when creating notifications".
    trigger_pub_time: float

    def matches(self, tuple_like, *, check_value: bool = True) -> bool:
        """Does a dis-relation tuple satisfy this rewritten query?

        Checks the local filters, the time semantics
        (``pubT >= insT(q)``) and — unless the caller already guarantees
        it through hash placement — the join-value equality.
        """
        if tuple_like.pub_time < self.insertion_time:
            return False
        if not all(f.holds(tuple_like) for f in self.filters):
            return False
        if check_value:
            try:
                if evaluate(self.expr, tuple_like) != self.required_value:
                    return False
            except QueryError:
                return False
        return True

    def result_row(self, tuple_like) -> tuple[Any, ...]:
        """Materialize the notification row from a matching tuple."""
        row = []
        for item in self.select:
            if isinstance(item, BoundValue):
                row.append(item.value)
            else:
                row.append(tuple_like.value(item.attribute))
        return tuple(row)

    @property
    def needed_attributes(self) -> tuple[str, ...]:
        """Dis-relation attributes required to evaluate and project.

        Determines the DAI-V projection: select attributes still
        pending, the join-expression attributes, and filter attributes.
        """
        needed = {item.attribute for item in self.select if isinstance(item, PendingAttr)}
        needed.update(ref.attribute for ref in attributes_of(self.expr))
        needed.update(f.attribute for f in self.filters)
        return tuple(sorted(needed))


def rewrite(query: JoinQuery, index_label: str, trigger) -> RewrittenQuery:
    """Rewrite ``query`` triggered by tuple ``trigger`` on side ``index_label``.

    Replaces every attribute of the index relation in the Select and
    Where clauses with the trigger tuple's values (Section 4.3.2),
    computes the value the remaining side must take, and forms the
    rewritten-query key.
    """
    index_side = query.side(index_label)
    dis_label = query.other_label(index_label)
    dis_side = query.side(dis_label)

    if trigger.relation.name != index_side.relation:
        raise QueryError(
            f"tuple of {trigger.relation.name} cannot trigger side "
            f"{index_label} ({index_side.relation}) of query {query.key!r}"
        )

    substituted = substitute(index_side.expr, index_side.relation, trigger)
    if not isinstance(substituted, Const):
        raise QueryError(
            f"index-side expression {index_side.expr} did not fold to a "
            f"constant for tuple {trigger}"
        )
    required_value = canonical_value(substituted.value)
    dis_attribute = dis_side.invertible_attribute
    dis_value = (
        dis_side.solve_for_attribute(required_value)
        if dis_attribute is not None
        else None
    )

    select_items: list[SelectItem] = []
    bound_values: list[Any] = []
    for ref in query.select:
        if ref.relation == index_side.relation:
            value = trigger.value(ref.attribute)
            select_items.append(BoundValue(value))
            bound_values.append(value)
        else:
            select_items.append(PendingAttr(ref.attribute))

    key_parts = [query.key, *[str(v) for v in bound_values], str(required_value)]
    return RewrittenQuery(
        key="+".join(key_parts),
        original_key=query.key,
        group_signature=query.join_signature(),
        subscriber=query.subscriber,
        insertion_time=query.insertion_time,
        relation=dis_side.relation,
        expr=dis_side.expr,
        required_value=required_value,
        dis_attribute=dis_attribute,
        dis_value=dis_value,
        filters=dis_side.filters,
        select=tuple(select_items),
        trigger_pub_time=trigger.pub_time,
    )
