"""N-way chain join queries (extension; the thesis' future work).

The paper evaluates two-way joins and names multi-way joins as future
work — the authors' follow-up ("Continuous multi-way joins over DHTs",
Idreos/Liarou/Koubarakis) decomposes an N-way join into a pipeline of
two-way joins whose intermediate results are re-published into the
network.  This module provides the query model for that extension:

* a :class:`MultiwayQuery` joins ``n >= 2`` relations with ``n - 1``
  equality conditions over bare attributes, plus optional local
  filters;
* the join graph must be a **path** (a chain): every relation connects
  to at most two others, so the pipeline order is unambiguous.

The evaluation machinery lives in :mod:`repro.core.multiway`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import QueryError
from .expr import AttrRef, Expression, is_single_attribute
from .parser import _Parser, tokenize
from .query import LocalFilter
from .schema import Schema


@dataclass(frozen=True)
class ChainCondition:
    """One equality ``R.x = S.y`` between two relations of the chain."""

    left: AttrRef
    right: AttrRef

    def relations(self) -> frozenset[str]:
        return frozenset((self.left.relation, self.right.relation))

    def attribute_for(self, relation: str) -> str:
        if self.left.relation == relation:
            return self.left.attribute
        if self.right.relation == relation:
            return self.right.attribute
        raise QueryError(f"condition {self} does not involve {relation}")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class MultiwayQuery:
    """An N-way chain equi-join.

    ``relations`` is ordered along the chain; ``conditions[k]`` links
    ``relations[k]`` (or an earlier relation — conditions may reference
    any already-joined relation, but chain shape restricts this to the
    adjacent one) with ``relations[k + 1]``.
    """

    select: tuple[AttrRef, ...]
    relations: tuple[str, ...]
    conditions: tuple[ChainCondition, ...]
    filters: dict[str, tuple[LocalFilter, ...]]

    def __post_init__(self):
        if len(self.relations) < 2:
            raise QueryError("a multiway query needs at least two relations")
        if len(self.conditions) != len(self.relations) - 1:
            raise QueryError(
                f"a chain over {len(self.relations)} relations needs exactly "
                f"{len(self.relations) - 1} join conditions"
            )
        for ref in self.select:
            if ref.relation not in self.relations:
                raise QueryError(
                    f"select attribute {ref} references a relation outside FROM"
                )

    def filters_for(self, relation: str) -> tuple[LocalFilter, ...]:
        return self.filters.get(relation, ())

    def condition_for_step(self, step: int) -> ChainCondition:
        """The condition joining ``relations[step + 1]`` to the prefix."""
        return self.conditions[step]

    def __str__(self) -> str:
        select = ", ".join(str(ref) for ref in self.select)
        conjuncts = [str(c) for c in self.conditions]
        for relation in self.relations:
            conjuncts.extend(
                f"{relation}.{f}" for f in self.filters_for(relation)
            )
        return (
            f"SELECT {select} FROM {', '.join(self.relations)} "
            f"WHERE {' AND '.join(conjuncts)}"
        )


def _order_chain(
    relations: list[str], raw_conditions: list[tuple[Expression, Expression]]
) -> tuple[tuple[str, ...], tuple[ChainCondition, ...]]:
    """Order the relations along the join path.

    Builds the join graph, verifies it is a simple path covering every
    relation, and returns (ordered relations, conditions in step order).
    """
    conditions: list[ChainCondition] = []
    for left, right in raw_conditions:
        if not (is_single_attribute(left) and is_single_attribute(right)):
            raise QueryError(
                "multiway join conditions must be bare attribute equalities"
            )
        conditions.append(ChainCondition(left, right))

    adjacency: dict[str, list[ChainCondition]] = {name: [] for name in relations}
    seen_pairs: set[frozenset[str]] = set()
    for condition in conditions:
        pair = condition.relations()
        if len(pair) != 2:
            raise QueryError(f"condition {condition} must span two relations")
        if pair in seen_pairs:
            raise QueryError(f"duplicate join condition between {sorted(pair)}")
        seen_pairs.add(pair)
        for name in pair:
            adjacency[name].append(condition)

    degrees = {name: len(edges) for name, edges in adjacency.items()}
    if any(degree == 0 for degree in degrees.values()):
        raise QueryError("join graph is disconnected")
    if any(degree > 2 for degree in degrees.values()):
        raise QueryError(
            "join graph must be a chain (a relation joins at most two others)"
        )
    endpoints = [name for name, degree in degrees.items() if degree == 1]
    if len(relations) > 2 and len(endpoints) != 2:
        raise QueryError("join graph must be an acyclic chain")

    # Walk the path from a deterministic endpoint (FROM-clause order).
    start = next(name for name in relations if degrees[name] == 1) if len(
        relations
    ) > 2 else relations[0]
    ordered = [start]
    ordered_conditions: list[ChainCondition] = []
    used: set[frozenset[str]] = set()
    current = start
    while len(ordered) < len(relations):
        next_condition = None
        for condition in adjacency[current]:
            if condition.relations() not in used:
                next_condition = condition
                break
        if next_condition is None:
            raise QueryError("join graph is disconnected")
        used.add(next_condition.relations())
        other = next(
            name for name in next_condition.relations() if name != current
        )
        ordered.append(other)
        ordered_conditions.append(next_condition)
        current = other
    return tuple(ordered), tuple(ordered_conditions)


def parse_multiway_query(
    text: str, schema: Optional[Schema] = None
) -> MultiwayQuery:
    """Parse an N-way chain join (same SQL dialect, ``n >= 2`` relations).

    >>> q = parse_multiway_query(
    ...     "SELECT R.A, T.Z FROM R, S, T WHERE R.B = S.E AND S.F = T.Y"
    ... )
    >>> q.relations
    ('R', 'S', 'T')
    """
    parser = _Parser(tokenize(text), schema)
    select, relations, raw_conditions, filters = parser.parse_multiway_parts()
    ordered_relations, conditions = _order_chain(relations, raw_conditions)
    return MultiwayQuery(
        select=tuple(select),
        relations=ordered_relations,
        conditions=conditions,
        filters={name: tuple(f) for name, f in filters.items()},
    )
