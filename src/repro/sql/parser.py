"""A parser for the continuous-query SQL subset of Section 3.2.

Grammar (case-insensitive keywords)::

    query      := SELECT select_list
                  FROM relation [AS alias] "," relation [AS alias]
                  WHERE conjunct (AND conjunct)*
    select_list:= attr ("," attr)*
    conjunct   := expr "=" expr
    expr       := term (("+" | "-") term)*
    term       := factor (("*" | "/") factor)*
    factor     := NUMBER | STRING | attr | "(" expr ")" | "-" factor
    attr       := IDENT "." IDENT

Exactly one conjunct must relate the two relations (the join
condition); every other conjunct must be a local equality filter of the
form ``attr = literal`` (or ``literal = attr``) over a single relation,
like ``A.Surname = 'Smith'`` in the paper's e-learning example.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..errors import ParseError, QueryError
from .expr import AttrRef, BinaryOp, Const, Expression, Negate, relations_of
from .query import JoinQuery, LocalFilter, QuerySide
from .schema import Schema

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<symbol>[(),.=*/+-])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "as"}


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "symbol" | "eof"
    text: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split query text into tokens; raises :class:`ParseError` on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        kind = match.lastgroup or "symbol"
        if kind == "ident" and value.lower() in _KEYWORDS:
            kind = "keyword"
            value = value.lower()
        tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token], schema: Optional[Schema]):
        self.tokens = tokens
        self.index = 0
        self.schema = schema
        self.aliases: dict[str, str] = {}

    # -- token plumbing -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r} at position {token.position}, "
                f"found {token.text!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar --------------------------------------------------------
    def parse_query(self) -> JoinQuery:
        self.expect("keyword", "select")
        # FROM must be parsed before the select refs can be resolved
        # against aliases, so scan ahead: find the FROM clause first.
        select_start = self.index
        depth = 0
        while not (self.current.kind == "keyword" and self.current.text == "from" and depth == 0):
            if self.current.kind == "eof":
                raise ParseError("missing FROM clause")
            if self.current.text == "(":
                depth += 1
            elif self.current.text == ")":
                depth -= 1
            self.advance()
        from_index = self.index
        self.expect("keyword", "from")
        self._parse_from()
        where_index = self.index

        # Now parse the select list with aliases known.
        self.index = select_start
        select = self._parse_select_list(stop_at=from_index)
        self.index = where_index

        self.expect("keyword", "where")
        join_conjuncts, filters = self._parse_where()
        left_relation, right_relation = self._relations_in_order()
        left_expr, right_expr = self._orient(join_conjuncts[0], left_relation)
        query = JoinQuery(
            select=tuple(select),
            left=QuerySide(
                left_relation, left_expr, tuple(filters.get(left_relation, []))
            ),
            right=QuerySide(
                right_relation, right_expr, tuple(filters.get(right_relation, []))
            ),
        )
        self.expect("eof")
        return query

    def parse_multiway_parts(self):
        """Parse an N-way query into its raw parts.

        Used by :func:`repro.sql.multiway.parse_multiway_query`; returns
        ``(select, relations, join_conjuncts, filters)`` with the chain
        validation left to the multiway module.
        """
        self.expect("keyword", "select")
        select_start = self.index
        while not (
            self.current.kind == "keyword" and self.current.text == "from"
        ):
            if self.current.kind == "eof":
                raise ParseError("missing FROM clause")
            self.advance()
        from_index = self.index
        self.expect("keyword", "from")
        self._parse_from(max_relations=None)
        where_index = self.index

        self.index = select_start
        select = self._parse_select_list(stop_at=from_index)
        self.index = where_index

        self.expect("keyword", "where")
        join_conjuncts, filters = self._parse_where(multiway=True)
        self.expect("eof")
        relations = list(dict.fromkeys(self.aliases.values()))
        if len(relations) != len(self.aliases):
            raise ParseError("self-joins are not supported")
        return select, relations, join_conjuncts, filters

    def _parse_from(self, max_relations: int = 2) -> None:
        while True:
            name = self.expect("ident").text
            if self.schema is not None and name not in self.schema:
                raise ParseError(f"unknown relation {name!r}")
            alias = name
            if self.accept("keyword", "as"):
                alias = self.expect("ident").text
            if alias in self.aliases:
                raise ParseError(f"duplicate relation alias {alias!r}")
            self.aliases[alias] = name
            if not self.accept("symbol", ","):
                break
        if max_relations is not None and len(self.aliases) > max_relations:
            raise ParseError(
                f"at most {max_relations} relations allowed here, "
                f"got {len(self.aliases)}"
            )
        if len(self.aliases) < 2:
            raise ParseError("at least two relations are required in FROM")

    def _relations_in_order(self) -> tuple[str, str]:
        names = list(self.aliases.values())
        if names[0] == names[1]:
            raise ParseError("self-joins are not supported")
        return names[0], names[1]

    def _parse_select_list(self, stop_at: int) -> list[AttrRef]:
        refs = [self._parse_attr()]
        while self.index < stop_at and self.accept("symbol", ","):
            refs.append(self._parse_attr())
        if self.index != stop_at:
            raise ParseError(
                f"unexpected token {self.current.text!r} in SELECT list"
            )
        return refs

    def _parse_attr(self) -> AttrRef:
        name = self.expect("ident").text
        self.expect("symbol", ".")
        attribute = self.expect("ident").text
        relation = self.aliases.get(name)
        if relation is None:
            raise ParseError(f"unknown relation or alias {name!r}")
        if self.schema is not None:
            rel = self.schema.relation(relation)
            if not rel.has_attribute(attribute):
                raise ParseError(
                    f"relation {relation} has no attribute {attribute!r}"
                )
        return AttrRef(relation, attribute)

    def _parse_where(self, *, multiway: bool = False):
        join_conjuncts: list[tuple[Expression, Expression]] = []
        filters: dict[str, list[LocalFilter]] = {}
        while True:
            left = self._parse_expr()
            self.expect("symbol", "=")
            right = self._parse_expr()
            relations = relations_of(left) | relations_of(right)
            if len(relations) == 2:
                if join_conjuncts and not multiway:
                    raise ParseError("only one join condition is supported")
                join_conjuncts.append((left, right))
            elif len(relations) == 1:
                relation = next(iter(relations))
                filters.setdefault(relation, []).append(
                    self._as_filter(left, right, relation)
                )
            elif len(relations) > 2:
                raise ParseError(
                    "a conjunct may reference at most two relations"
                )
            else:
                raise ParseError("conjunct references no relation")
            if not self.accept("keyword", "and"):
                break
        if not join_conjuncts:
            raise ParseError("missing join condition relating the relations")
        return join_conjuncts, filters

    @staticmethod
    def _as_filter(left: Expression, right: Expression, relation: str) -> LocalFilter:
        if isinstance(left, AttrRef) and isinstance(right, Const):
            return LocalFilter(left.attribute, right.value)
        if isinstance(right, AttrRef) and isinstance(left, Const):
            return LocalFilter(right.attribute, left.value)
        raise ParseError(
            f"local predicates must be attribute = literal (relation {relation})"
        )

    @staticmethod
    def _orient(
        join_conjunct: tuple[Expression, Expression], left_relation: str
    ) -> tuple[Expression, Expression]:
        """Return (left-relation expr, right-relation expr).

        Rejects conjuncts whose sides mix relations — each side of the
        equality may reference only one relation (Section 3.2).
        """
        first, second = join_conjunct
        first_rels = relations_of(first)
        second_rels = relations_of(second)
        if len(first_rels) != 1 or len(second_rels) != 1:
            raise ParseError(
                "each side of the join condition may reference exactly one "
                "relation"
            )
        if first_rels == {left_relation}:
            return first, second
        return second, first

    # -- expressions ----------------------------------------------------
    def _parse_expr(self) -> Expression:
        expr = self._parse_term()
        while True:
            if self.accept("symbol", "+"):
                expr = BinaryOp("+", expr, self._parse_term())
            elif self.accept("symbol", "-"):
                expr = BinaryOp("-", expr, self._parse_term())
            else:
                return expr

    def _parse_term(self) -> Expression:
        expr = self._parse_factor()
        while True:
            if self.accept("symbol", "*"):
                expr = BinaryOp("*", expr, self._parse_factor())
            elif self.accept("symbol", "/"):
                expr = BinaryOp("/", expr, self._parse_factor())
            else:
                return expr

    def _parse_factor(self) -> Expression:
        token = self.current
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.kind == "string":
            self.advance()
            raw = token.text[1:-1]
            return Const(raw.replace("\\'", "'").replace("\\\\", "\\"))
        if token.text == "(":
            self.advance()
            expr = self._parse_expr()
            self.expect("symbol", ")")
            return expr
        if token.text == "-":
            self.advance()
            return Negate(self._parse_factor())
        if token.kind == "ident":
            return self._parse_attr()
        raise ParseError(
            f"unexpected token {token.text!r} at position {token.position}"
        )


def parse_query(text: str, schema: Optional[Schema] = None) -> JoinQuery:
    """Parse SQL text into a :class:`~repro.sql.query.JoinQuery`.

    When ``schema`` is given, relation and attribute names are
    validated against it.

    >>> q = parse_query(
    ...     "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A "
    ...     "WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'"
    ... )
    >>> q.query_type
    'T1'
    """
    try:
        return _Parser(tokenize(text), schema).parse_query()
    except QueryError as exc:
        if isinstance(exc, ParseError):
            raise
        raise ParseError(str(exc)) from exc
