"""Relational schema objects (Section 3.2).

Data is described by the relational model; different schemas can
co-exist in the network (schema mappings are not supported, as in
PIER).  A :class:`Relation` is a name plus an ordered list of attribute
names; a :class:`Schema` is a set of relations known to an application.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError


def _check_identifier(name: str, kind: str) -> str:
    if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
        raise SchemaError(f"invalid {kind} name: {name!r}")
    return name


@dataclass(frozen=True)
class Relation:
    """A relation schema ``R(A_1, ..., A_h)``."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self):
        _check_identifier(self.name, "relation")
        if not self.attributes:
            raise SchemaError(f"relation {self.name} needs at least one attribute")
        seen: set[str] = set()
        for attribute in self.attributes:
            _check_identifier(attribute, "attribute")
            if attribute in seen:
                raise SchemaError(
                    f"duplicate attribute {attribute!r} in relation {self.name}"
                )
            seen.add(attribute)

    @property
    def arity(self) -> int:
        """Number of attributes (the paper's ``h``)."""
        return len(self.attributes)

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    @cached_property
    def _positions(self) -> dict[str, int]:
        """Attribute→position map; ``tuple.index`` scans per lookup and
        tuple value access is one of the simulator's hottest calls."""
        return {attribute: i for i, attribute in enumerate(self.attributes)}

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute`` (SchemaError if absent)."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class Schema:
    """A collection of relations, addressable by name."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> Relation:
        """Register a relation; duplicates are rejected."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name} already defined")
        self._relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name (SchemaError if unknown)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> list[str]:
        return list(self._relations)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Iterable[str]]) -> "Schema":
        """Build a schema from ``{"R": ["A", "B"], ...}``."""
        return cls(Relation(name, tuple(attrs)) for name, attrs in spec.items())


def example_elearning_schema() -> Schema:
    """The e-learning schema of the paper's running example (Section 3.2).

    ``Document(Id, Title, Conference, AuthorId)`` and
    ``Authors(Id, Name, Surname)``.
    """
    return Schema.from_dict(
        {
            "Document": ["Id", "Title", "Conference", "AuthorId"],
            "Authors": ["Id", "Name", "Surname"],
        }
    )
