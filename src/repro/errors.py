"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class RoutingError(ReproError):
    """A lookup failed to converge (ring state too damaged to route)."""


class SchemaError(ReproError):
    """Invalid relation/attribute definition or tuple not matching it."""


class QueryError(ReproError):
    """A query is malformed or unsupported by the selected algorithm."""


class ParseError(QueryError):
    """The SQL text could not be parsed."""


class NetworkError(ReproError):
    """Invalid overlay operation (duplicate join, dead node, ...)."""
