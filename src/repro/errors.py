"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class RoutingError(ReproError):
    """A lookup failed to converge (ring state too damaged to route)."""


class SchemaError(ReproError):
    """Invalid relation/attribute definition or tuple not matching it."""


class QueryError(ReproError):
    """A query is malformed or unsupported by the selected algorithm."""


class ParseError(QueryError):
    """The SQL text could not be parsed."""


class NetworkError(ReproError):
    """Invalid overlay operation (duplicate join, dead node, ...)."""


class CodecError(ReproError):
    """A wire frame could not be encoded or decoded.

    Raised for unserializable payloads, truncated or corrupt frames,
    and frames carrying an unsupported protocol version.
    """


class DeliveryError(NetworkError):
    """A message could not be delivered despite retries and fallback.

    Raised by the routing layer only after every delivery attempt to
    the responsible node *and* the successor-list fallback have been
    exhausted (see ``Router`` and ``FaultInjector``); a healthy ring
    without fault injection never raises it.
    """

    def __init__(self, message_type: str, target_ident: int, attempts: int):
        self.message_type = message_type
        self.target_ident = target_ident
        self.attempts = attempts
        super().__init__(
            f"delivery of {message_type!r} to node {target_ident} failed "
            f"after {attempts} attempts (retries and successor fallback "
            f"exhausted)"
        )
