"""Exception hierarchy for the repro package."""

from __future__ import annotations

from asyncio import TimeoutError as _AsyncioTimeoutError


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class RoutingError(ReproError):
    """A lookup failed to converge (ring state too damaged to route)."""


class SchemaError(ReproError):
    """Invalid relation/attribute definition or tuple not matching it."""


class QueryError(ReproError):
    """A query is malformed or unsupported by the selected algorithm."""


class ParseError(QueryError):
    """The SQL text could not be parsed."""


class NetworkError(ReproError):
    """Invalid overlay operation (duplicate join, dead node, ...)."""


class CodecError(ReproError):
    """A wire frame could not be encoded or decoded.

    Raised for unserializable payloads, truncated or corrupt frames,
    and frames carrying an unsupported protocol version.
    """


class QuiesceTimeout(NetworkError, _AsyncioTimeoutError):
    """A live cluster failed to reach quiescence within its deadline.

    Subclasses :class:`asyncio.TimeoutError` so callers that waited for
    the in-flight counter with ``asyncio.wait_for`` semantics keep
    working, but carries a diagnostic breakdown of what is still
    outstanding: in-flight delivery counts per message label, and the
    per-peer outbound queue depths at the moment the wait gave up.
    """

    def __init__(
        self,
        timeout: float,
        pending: dict[str, int],
        queues: dict[int, int] | None = None,
    ):
        self.timeout = timeout
        self.pending = dict(pending)
        self.queues = dict(queues) if queues else {}
        total = sum(self.pending.values())
        labels = ", ".join(
            f"{label}={count}" for label, count in sorted(self.pending.items())
        ) or "none"
        detail = f"cluster failed to quiesce within {timeout}s; {total} " \
                 f"deliveries still in flight (by label: {labels})"
        if self.queues:
            depths = ", ".join(
                f"peer {ident}: {depth} queued"
                for ident, depth in sorted(self.queues.items())
            )
            detail += f"; outbound queues: {depths}"
        super().__init__(detail)


class DeliveryError(NetworkError):
    """A message could not be delivered despite retries and fallback.

    Raised by the routing layer only after every delivery attempt to
    the responsible node *and* the successor-list fallback have been
    exhausted (see ``Router`` and ``FaultInjector``); a healthy ring
    without fault injection never raises it.
    """

    def __init__(self, message_type: str, target_ident: int, attempts: int):
        self.message_type = message_type
        self.target_ident = target_ident
        self.attempts = attempts
        super().__init__(
            f"delivery of {message_type!r} to node {target_ident} failed "
            f"after {attempts} attempts (retries and successor fallback "
            f"exhausted)"
        )
