"""Synthetic schema construction for experiments.

The experiments use simple schemas of a few relations with a handful
of attributes each, all sharing integer domains so that equi-joins
across relations actually produce matches.
"""

from __future__ import annotations

from ..sql.schema import Relation, Schema


def synthetic_schema(
    n_relations: int = 2,
    attributes_per_relation: int = 4,
    relation_prefix: str = "R",
    attribute_prefix: str = "a",
) -> Schema:
    """A schema of ``n_relations`` relations ``R0, R1, ...``.

    Every relation gets attributes ``a0 .. a{k-1}``; attribute names
    repeat across relations (as in real schemas) but the two-level
    indexing always prefixes attribute names with relation names, so
    repeats exercise exactly the disambiguation the paper relies on.
    """
    if n_relations < 2:
        raise ValueError("experiments need at least two relations to join")
    if attributes_per_relation < 1:
        raise ValueError("relations need at least one attribute")
    relations = [
        Relation(
            f"{relation_prefix}{index}",
            tuple(f"{attribute_prefix}{j}" for j in range(attributes_per_relation)),
        )
        for index in range(n_relations)
    ]
    return Schema(relations)
