"""Synthetic workloads: schemas, value distributions, query/tuple streams."""

from .distributions import (
    PermutedZipf,
    UniformValues,
    ValueDistribution,
    ZipfValues,
    empirical_skew,
)
from .generator import (
    Workload,
    WorkloadEvent,
    WorkloadGenerator,
    WorkloadParams,
    build_workload,
)
from .schema_gen import synthetic_schema

__all__ = [
    "PermutedZipf",
    "UniformValues",
    "ValueDistribution",
    "Workload",
    "WorkloadEvent",
    "WorkloadGenerator",
    "WorkloadParams",
    "ZipfValues",
    "build_workload",
    "empirical_skew",
    "synthetic_schema",
]
