"""Workload generation: continuous queries and tuple streams.

The standard experiment shape (Chapter 5, reconstructed from the list
of figures) is:

1. build a network of ``N`` nodes;
2. install ``|Q|`` continuous T1 queries over a two-relation schema;
3. stream ``T`` tuples whose attribute values follow a skewed (Zipf)
   distribution, with the two relations' arrival rates balanced by the
   ``bos`` (balance-of-streams) ratio;
4. measure traffic and per-node load.

:class:`WorkloadGenerator` draws the random queries and tuples;
:func:`build_workload` assembles them into a timestamped
:class:`Workload` that the harness replays against an engine (and,
in tests, against the centralized oracle).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Literal, Optional

from ..sql.expr import AttrRef, BinaryOp, Const
from ..sql.query import JoinQuery, LocalFilter, QuerySide
from ..sql.schema import Relation, Schema
from .distributions import PermutedZipf, UniformValues, ValueDistribution
from .schema_gen import synthetic_schema


@dataclass(frozen=True)
class WorkloadEvent:
    """One timestamped workload action."""

    time: float
    kind: Literal["query", "tuple"]
    #: ``JoinQuery`` template for queries; ``(Relation, values)`` for tuples.
    payload: Any


@dataclass
class Workload:
    """A replayable script of query subscriptions and tuple insertions."""

    schema: Schema
    events: list[WorkloadEvent]
    params: "WorkloadParams"

    def __iter__(self) -> Iterator[WorkloadEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def n_queries(self) -> int:
        return sum(1 for event in self.events if event.kind == "query")

    @property
    def n_tuples(self) -> int:
        return sum(1 for event in self.events if event.kind == "tuple")


@dataclass
class WorkloadParams:
    """Knobs of the synthetic workload (defaults follow DESIGN.md §4)."""

    n_queries: int = 1000
    n_tuples: int = 2000
    n_relations: int = 2
    attributes_per_relation: int = 4
    domain_size: int = 500
    #: Zipf exponent of attribute values; 0 = uniform.
    zipf_s: float = 0.9
    #: Balance-of-streams ratio: tuples of R0 per tuple of R1 ([R]
    #: reconstruction of the paper's "bos ratio", see DESIGN.md).
    bos_ratio: float = 1.0
    #: Probability a query carries one local equality filter.
    filter_probability: float = 0.0
    #: Fraction of generated queries that are type T2 (DAI-V only).
    t2_fraction: float = 0.0
    #: Simulated time between consecutive tuple insertions.
    tuple_interval: float = 1.0
    #: Simulated time between consecutive query subscriptions.
    query_interval: float = 0.0
    #: Tuples streamed *before* any query is installed, so the
    #: rate-probing index-choice strategies (Section 4.3.6) see real
    #: arrival statistics at subscription time.
    warmup_tuples: int = 0
    seed: int = 0


class WorkloadGenerator:
    """Draws random T1/T2 queries and tuples over a schema."""

    def __init__(
        self,
        schema: Schema,
        params: WorkloadParams,
        rng: Optional[random.Random] = None,
    ):
        self.schema = schema
        self.params = params
        self.rng = rng if rng is not None else random.Random(params.seed)
        self._distributions: dict[tuple[str, str], ValueDistribution] = {}

    # ------------------------------------------------------------------
    # Value sampling
    # ------------------------------------------------------------------
    def distribution_for(self, relation: str, attribute: str) -> ValueDistribution:
        """The (cached) value distribution of one attribute.

        Each attribute gets its own permutation of the Zipf ranks so
        hotspots are de-correlated across attributes, while joined
        attributes still share the same integer domain.
        """
        key = (relation, attribute)
        if key not in self._distributions:
            if self.params.zipf_s <= 0:
                self._distributions[key] = UniformValues(self.params.domain_size)
            else:
                # zlib.crc32 is a stable hash (unlike builtin ``hash``,
                # which is randomized per process) so workloads are
                # reproducible across runs.
                permutation_seed = zlib.crc32(f"{relation}.{attribute}".encode())
                self._distributions[key] = PermutedZipf(
                    self.params.domain_size,
                    s=self.params.zipf_s,
                    permutation_seed=permutation_seed,
                )
        return self._distributions[key]

    def random_tuple_values(self, relation: Relation) -> dict[str, int]:
        """Random values for one tuple of ``relation``."""
        return {
            attribute: self.distribution_for(relation.name, attribute).sample(self.rng)
            for attribute in relation.attributes
        }

    # ------------------------------------------------------------------
    # Query sampling
    # ------------------------------------------------------------------
    def _pick_relations(self) -> tuple[Relation, Relation]:
        left, right = self.rng.sample(self.schema.names, 2)
        return self.schema.relation(left), self.schema.relation(right)

    def random_t1_query(self) -> JoinQuery:
        """A random type-T1 query: ``SELECT ... WHERE R.x = S.y``."""
        left_rel, right_rel = self._pick_relations()
        left_attr = self.rng.choice(left_rel.attributes)
        right_attr = self.rng.choice(right_rel.attributes)
        select = (
            AttrRef(left_rel.name, self.rng.choice(left_rel.attributes)),
            AttrRef(right_rel.name, self.rng.choice(right_rel.attributes)),
        )
        left_filters = self._maybe_filter(left_rel)
        right_filters = self._maybe_filter(right_rel)
        return JoinQuery(
            select=select,
            left=QuerySide(left_rel.name, AttrRef(left_rel.name, left_attr), left_filters),
            right=QuerySide(
                right_rel.name, AttrRef(right_rel.name, right_attr), right_filters
            ),
        )

    def random_t2_query(self) -> JoinQuery:
        """A random type-T2 query with small linear expressions.

        Shapes like ``a * R.x + b = S.y + S.z`` keep the value ranges of
        the two sides overlapping so notifications actually occur.
        """
        left_rel, right_rel = self._pick_relations()
        left_attr = self.rng.choice(left_rel.attributes)
        coefficient = self.rng.randint(1, 3)
        offset = self.rng.randint(0, 5)
        left_expr = BinaryOp(
            "+",
            BinaryOp("*", Const(coefficient), AttrRef(left_rel.name, left_attr)),
            Const(offset),
        )
        right_attrs = self.rng.sample(
            right_rel.attributes, k=min(2, len(right_rel.attributes))
        )
        right_expr = AttrRef(right_rel.name, right_attrs[0])
        for attribute in right_attrs[1:]:
            right_expr = BinaryOp(
                "+", right_expr, AttrRef(right_rel.name, attribute)
            )
        select = (
            AttrRef(left_rel.name, self.rng.choice(left_rel.attributes)),
            AttrRef(right_rel.name, self.rng.choice(right_rel.attributes)),
        )
        return JoinQuery(
            select=select,
            left=QuerySide(left_rel.name, left_expr),
            right=QuerySide(right_rel.name, right_expr),
        )

    def random_query(self) -> JoinQuery:
        """T1 or T2 according to ``params.t2_fraction``."""
        if self.rng.random() < self.params.t2_fraction:
            return self.random_t2_query()
        return self.random_t1_query()

    def _maybe_filter(self, relation: Relation) -> tuple[LocalFilter, ...]:
        if self.rng.random() >= self.params.filter_probability:
            return ()
        attribute = self.rng.choice(relation.attributes)
        value = self.distribution_for(relation.name, attribute).sample(self.rng)
        return (LocalFilter(attribute, value),)

    # ------------------------------------------------------------------
    # Tuple stream
    # ------------------------------------------------------------------
    def pick_stream_relation(self) -> Relation:
        """The relation of the next stream tuple, honouring ``bos_ratio``.

        With two relations, ``bos_ratio = r`` makes R0 tuples ``r``
        times as frequent as R1 tuples.  Additional relations (if any)
        share R1's rate.
        """
        names = self.schema.names
        if len(names) == 2:
            probability_first = self.params.bos_ratio / (1.0 + self.params.bos_ratio)
            name = names[0] if self.rng.random() < probability_first else names[1]
            return self.schema.relation(name)
        weights = [self.params.bos_ratio] + [1.0] * (len(names) - 1)
        return self.schema.relation(self.rng.choices(names, weights=weights, k=1)[0])


def iter_workload_events(
    params: WorkloadParams, schema: Schema
) -> Iterator[WorkloadEvent]:
    """Stream the standard experiment workload one event at a time.

    Queries are installed first (at ``query_interval`` spacing), then
    tuples stream in at ``tuple_interval`` spacing — matching the
    paper's continuous-query semantics where only tuples published
    after a subscription can trigger it.

    The RNG draw order is exactly that of :func:`build_workload` (which
    delegates here), so the streamed sequence is element-for-element
    identical to the materialized one; large-scale sweeps iterate this
    directly and never hold millions of :class:`WorkloadEvent` objects
    at once (see :meth:`repro.sim.simulator.Simulator.run_stream`).
    """
    generator = WorkloadGenerator(schema, params)
    now = 0.0
    for _ in range(params.warmup_tuples):
        relation = generator.pick_stream_relation()
        values = generator.random_tuple_values(relation)
        yield WorkloadEvent(now, "tuple", (relation, values))
        now += params.tuple_interval
    for _ in range(params.n_queries):
        yield WorkloadEvent(now, "query", generator.random_query())
        now += params.query_interval
    now += 1.0  # queries precede the stream
    for _ in range(params.n_tuples):
        relation = generator.pick_stream_relation()
        values = generator.random_tuple_values(relation)
        yield WorkloadEvent(now, "tuple", (relation, values))
        now += params.tuple_interval


def build_workload(
    params: WorkloadParams, schema: Optional[Schema] = None
) -> Workload:
    """Assemble the standard experiment workload as a replayable list.

    Thin materializing wrapper over :func:`iter_workload_events`; use
    the iterator directly when the workload is too large to hold.
    """
    if schema is None:
        schema = synthetic_schema(
            params.n_relations, params.attributes_per_relation
        )
    return Workload(
        schema=schema,
        events=list(iter_workload_events(params, schema)),
        params=params,
    )
