"""Value distributions for synthetic workloads.

The experiments "assume a highly skewed distribution for all
attributes" (Section 4.3.6); attribute values are therefore drawn from
a bounded Zipf distribution whose exponent controls the skew, with a
uniform distribution available as the balanced baseline.
"""

from __future__ import annotations

import random

import numpy as np


class ValueDistribution:
    """Samples integer values from ``[0, domain_size)``."""

    domain_size: int

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformValues(ValueDistribution):
    """Uniform values over the domain."""

    def __init__(self, domain_size: int):
        if domain_size < 1:
            raise ValueError("domain_size must be >= 1")
        self.domain_size = domain_size

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.domain_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformValues({self.domain_size})"


class ZipfValues(ValueDistribution):
    """Bounded Zipf: value ``k`` has probability ∝ ``1 / (k+1)**s``.

    Sampling inverts the precomputed CDF, so a draw is one binary
    search — cheap enough for millions of tuples.
    """

    def __init__(self, domain_size: int, s: float = 0.9):
        if domain_size < 1:
            raise ValueError("domain_size must be >= 1")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.domain_size = domain_size
        self.s = s
        weights = 1.0 / np.power(np.arange(1, domain_size + 1, dtype=float), s)
        self._cdf = np.cumsum(weights / weights.sum())
        # Guard against floating point leaving the last bucket short.
        self._cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfValues({self.domain_size}, s={self.s})"


class PermutedZipf(ValueDistribution):
    """Zipf ranks mapped through a seeded permutation of the domain.

    Without the permutation every attribute's hottest value would be
    ``0``, which would make unrelated attributes collide on the same
    evaluators; the permutation de-correlates the hotspots while
    preserving the skew.
    """

    def __init__(self, domain_size: int, s: float = 0.9, permutation_seed: int = 0):
        self._zipf = ZipfValues(domain_size, s)
        self.domain_size = domain_size
        shuffler = random.Random(permutation_seed)
        self._mapping = list(range(domain_size))
        shuffler.shuffle(self._mapping)

    def sample(self, rng: random.Random) -> int:
        return self._mapping[self._zipf.sample(rng)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PermutedZipf({self.domain_size}, s={self._zipf.s})"


def empirical_skew(samples) -> float:
    """Fraction of the samples taken by the single most common value.

    Used by tests to verify that the Zipf generators actually skew and
    by experiments to report workload shape.
    """
    counts: dict[int, int] = {}
    total = 0
    for sample in samples:
        counts[sample] = counts.get(sample, 0) + 1
        total += 1
    if total == 0:
        return 0.0
    return max(counts.values()) / total
