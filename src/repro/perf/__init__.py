"""Opt-in performance instrumentation: named counters and wall timers.

The simulator's hot paths (hashing, routing, table maintenance, query
rewriting) are exactly the places where ``print``-style ad-hoc probing
distorts what it measures.  This module gives them a shared, very cheap
alternative:

* ``PERF.count("vlqt.evicted", n)`` — bump a named counter;
* ``with PERF.timer("evict"): ...`` — accumulate wall time and calls;
* ``PERF.snapshot()`` — a plain dict for reports / JSON.

Instrumentation is **disabled by default** and enabled with the
``REPRO_PERF=1`` environment variable (read at import; flip at runtime
with :meth:`PerfRegistry.enable`).  Disabled, the cost at an
instrumented site is one attribute load and a branch
(``if PERF.enabled:``) — no allocation, no dict access, no timestamps —
so permanent probes in hot loops are fine.

The registry is deliberately process-local.  Benchmark workers (see
:mod:`repro.bench.parallel`) each own their registry; aggregate in the
parent from the row payloads, not from globals.
"""

from __future__ import annotations

import os
import time
from typing import Iterator

ENV_VAR = "REPRO_PERF"

__all__ = ["PERF", "PerfRegistry", "ENV_VAR"]


class _Timer:
    """Context manager accumulating wall time into one timer slot."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "PerfRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        timers = self._registry._timers
        slot = timers.get(self._name)
        if slot is None:
            timers[self._name] = [elapsed, 1]
        else:
            slot[0] += elapsed
            slot[1] += 1


class _NullTimer:
    """No-op stand-in handed out while instrumentation is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_TIMER = _NullTimer()


class PerfRegistry:
    """A bag of named counters and timers (see module docstring)."""

    __slots__ = ("enabled", "_counters", "_timers")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._counters: dict[str, int] = {}
        self._timers: dict[str, list] = {}  # name -> [seconds, calls]

    # -- control ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded values (the enabled flag is untouched)."""
        self._counters.clear()
        self._timers.clear()

    # -- recording ----------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        counters = self._counters
        counters[name] = counters.get(name, 0) + n

    def timer(self, name: str):
        """Context manager timing its body into slot ``name``.

        Call sites that run *very* hot should still guard with
        ``if PERF.enabled:`` to skip the timestamp syscalls entirely.
        """
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    # -- reading ------------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def seconds(self, name: str) -> float:
        slot = self._timers.get(name)
        return slot[0] if slot else 0.0

    def calls(self, name: str) -> int:
        slot = self._timers.get(name)
        return slot[1] if slot else 0

    def snapshot(self) -> dict:
        """Everything recorded so far, as JSON-ready plain data."""
        return {
            "enabled": self.enabled,
            "counters": dict(sorted(self._counters.items())),
            "timers": {
                name: {"seconds": slot[0], "calls": slot[1]}
                for name, slot in sorted(self._timers.items())
            },
        }

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._timers


#: The process-wide registry every instrumented site shares.
PERF = PerfRegistry(os.environ.get(ENV_VAR, "").strip() not in ("", "0"))
