"""Persistent experiment database with pull-based workers.

One SQLite file holds the whole sweep: a declarative grid is expanded
and upserted (``fill``), any number of worker processes atomically pull
open experiments and execute them through the existing benchmark
harnesses, results and failures land back in the same rows, and the
accumulated perf history is queryable (``report``) and exportable
(``export``).  See ``python -m repro.expdb --help``.
"""

from .db import Claim, ExperimentDB, canonical_fault_plan, decode_params, normalize_params
from .grid import ALGORITHMS, GridSpec, parse_axis
from .runner import ExperimentOutcome, run_experiment
from .worker import WorkerConfig, WorkerStats, default_worker_id, run_worker

__all__ = [
    "ALGORITHMS",
    "Claim",
    "ExperimentDB",
    "ExperimentOutcome",
    "GridSpec",
    "WorkerConfig",
    "WorkerStats",
    "canonical_fault_plan",
    "decode_params",
    "default_worker_id",
    "normalize_params",
    "parse_axis",
    "run_experiment",
    "run_worker",
]
