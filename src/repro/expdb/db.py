"""The experiment database: one SQLite row per experiment, forever.

Layout (the documented export schema)
-------------------------------------

Every experiment is **uniquely identified by its parameters** — the
grid axes plus the seed — and carries its lifecycle and its results in
the same row:

* parameter columns — ``transport`` (``sim`` / ``shard`` / ``live``),
  ``algorithm``, ``n_nodes``, ``n_queries``, ``n_tuples``,
  ``domain_size``, ``zipf_s``, ``window`` (``0`` = unbounded),
  ``replication_factor``, ``jfrt_capacity``, ``evict_every``,
  ``fault_plan`` (canonical JSON, ``''`` = fault-free), ``seed``;
* lifecycle columns — ``status`` (``open`` → ``running`` → ``done`` /
  ``error``), ``worker``, ``attempts``, ``created_at`` /
  ``started_at`` / ``finished_at`` / ``heartbeat`` (unix seconds),
  ``error`` (full traceback of the last failure);
* metric columns — the machine-independent results: ``hops``,
  ``messages``, ``notifications_delivered``, ``notification_digest``,
  ``evictions``, ``exchange_records``, plus ``metrics_json`` holding
  the full stable row (:meth:`~repro.bench.harness.RunResult.to_row`)
  with the per-type traffic breakdowns;
* resource columns — the machine-dependent results: ``wall_seconds``,
  ``peak_rss_kb``, ``events_per_sec``, plus ``resources_json`` for
  transport-specific extras (live latency percentiles, shard counts).

Concurrency model
-----------------

The database is the only coordination point between workers — there is
no broker.  WAL journaling lets any number of readers overlap one
writer; every state transition is one short transaction:

* **claim** — ``BEGIN IMMEDIATE`` (taking the write lock up front so
  two workers can never select the same open row), pick the lowest-id
  claimable row, flip it to ``running`` with this worker's id and a
  fresh heartbeat, commit.  A row is *claimable* when it is ``open``,
  or when it is ``running`` but its heartbeat is older than
  ``stale_after`` — that is the whole crash story: a worker killed
  mid-run (SIGKILL included) simply stops heartbeating, and its row
  becomes claimable again once the heartbeat expires.
* **heartbeat** — a single guarded ``UPDATE`` from the worker's
  heartbeat thread.
* **finish/fail** — guarded by ``status='running' AND worker=?`` so a
  worker that lost its claim to a stale-reclaim (it was presumed dead
  but was merely slow) cannot clobber the new owner's run; the stale
  loser's write is dropped and reported.
"""

from __future__ import annotations

import csv
import json
import sqlite3
import time
from dataclasses import dataclass
from typing import Iterable, Optional

#: Execution back-ends a row can ask for (ISSUE vocabulary:
#: sim / sharded-sim / live-net).
TRANSPORTS = ("sim", "shard", "live")

#: Legal row states, in lifecycle order.
STATUSES = ("open", "running", "done", "error")

#: Parameter columns, in canonical order.  Together with ``seed`` they
#: are the row's identity (UNIQUE constraint); ``window`` uses ``0.0``
#: for "unbounded" and ``fault_plan`` uses ``''`` for "fault-free" so
#: SQLite's NULL-is-always-distinct UNIQUE semantics can never admit
#: duplicate rows.
PARAM_FIELDS = (
    "transport",
    "algorithm",
    "n_nodes",
    "n_queries",
    "n_tuples",
    "domain_size",
    "zipf_s",
    "window",
    "replication_factor",
    "jfrt_capacity",
    "evict_every",
    "fault_plan",
    "seed",
)

#: Machine-independent result columns (besides ``metrics_json``).
METRIC_FIELDS = (
    "hops",
    "messages",
    "notifications_delivered",
    "notification_digest",
    "evictions",
    "exchange_records",
)

#: Machine-dependent result columns (besides ``resources_json``).
RESOURCE_FIELDS = ("wall_seconds", "peak_rss_kb", "events_per_sec")

#: Column order of exports, and the documented CSV schema.
EXPORT_COLUMNS = (
    ("id",)
    + PARAM_FIELDS
    + ("status", "worker", "attempts", "created_at", "started_at", "finished_at", "heartbeat", "error")
    + METRIC_FIELDS
    + RESOURCE_FIELDS
    + ("metrics_json", "resources_json")
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    transport TEXT NOT NULL,
    algorithm TEXT NOT NULL,
    n_nodes INTEGER NOT NULL,
    n_queries INTEGER NOT NULL,
    n_tuples INTEGER NOT NULL,
    domain_size INTEGER NOT NULL,
    zipf_s REAL NOT NULL,
    window REAL NOT NULL DEFAULT 0.0,
    replication_factor INTEGER NOT NULL DEFAULT 1,
    jfrt_capacity INTEGER NOT NULL DEFAULT 0,
    evict_every INTEGER NOT NULL DEFAULT 64,
    fault_plan TEXT NOT NULL DEFAULT '',
    seed INTEGER NOT NULL,
    status TEXT NOT NULL DEFAULT 'open'
        CHECK (status IN ('open', 'running', 'done', 'error')),
    worker TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    heartbeat REAL,
    error TEXT,
    hops INTEGER,
    messages INTEGER,
    notifications_delivered INTEGER,
    notification_digest TEXT,
    evictions INTEGER,
    exchange_records INTEGER,
    metrics_json TEXT,
    wall_seconds REAL,
    peak_rss_kb INTEGER,
    events_per_sec REAL,
    resources_json TEXT,
    UNIQUE (transport, algorithm, n_nodes, n_queries, n_tuples,
            domain_size, zipf_s, window, replication_factor,
            jfrt_capacity, evict_every, fault_plan, seed)
);
CREATE INDEX IF NOT EXISTS experiments_status ON experiments (status, id);
"""


def canonical_fault_plan(plan: Optional[dict]) -> str:
    """The fault-plan column value: sorted-key compact JSON or ``''``."""
    if not plan:
        return ""
    return json.dumps(plan, sort_keys=True, separators=(",", ":"))


def normalize_params(params: dict) -> dict:
    """One experiment's identity in column form, validated.

    Accepts ``window=None`` / ``fault_plan=None`` (and a fault-plan
    dict) and returns exactly the :data:`PARAM_FIELDS` with their
    storage encodings, so the same dict always maps to the same row.
    """
    row = dict(params)
    unknown = set(row) - set(PARAM_FIELDS)
    if unknown:
        raise ValueError(f"unknown experiment parameters: {sorted(unknown)}")
    missing = [
        name
        for name in ("algorithm", "n_nodes", "n_queries", "n_tuples", "domain_size")
        if name not in row
    ]
    if missing:
        raise ValueError(f"experiment parameters missing: {missing}")
    transport = row.get("transport", "sim")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    window = row.get("window")
    fault_plan = row.get("fault_plan")
    if isinstance(fault_plan, dict) or fault_plan is None:
        fault_plan = canonical_fault_plan(fault_plan)
    return {
        "transport": transport,
        "algorithm": str(row["algorithm"]),
        "n_nodes": int(row["n_nodes"]),
        "n_queries": int(row["n_queries"]),
        "n_tuples": int(row["n_tuples"]),
        "domain_size": int(row["domain_size"]),
        "zipf_s": float(row.get("zipf_s", 0.9)),
        "window": float(window) if window else 0.0,
        "replication_factor": int(row.get("replication_factor", 1)),
        "jfrt_capacity": int(row.get("jfrt_capacity", 0)),
        "evict_every": int(row.get("evict_every", 64)),
        "fault_plan": fault_plan,
        "seed": int(row.get("seed", 1)),
    }


def decode_params(row: dict) -> dict:
    """Storage encodings back to Python values (inverse of normalize)."""
    params = {name: row[name] for name in PARAM_FIELDS}
    params["window"] = row["window"] or None
    params["fault_plan"] = json.loads(row["fault_plan"]) if row["fault_plan"] else None
    return params


@dataclass(frozen=True)
class Claim:
    """One successfully claimed experiment."""

    id: int
    params: dict
    attempts: int
    #: True when this claim reclaimed a stale ``running`` row.
    reclaimed: bool = False


class ExperimentDB:
    """Connection-owning wrapper over the experiments table.

    Not thread-safe by design — every thread (notably the worker's
    heartbeat thread) opens its own instance over the same path, which
    is exactly the cross-process protocol anyway.
    """

    def __init__(self, path: str, timeout: float = 30.0):
        self.path = path
        self._conn = sqlite3.connect(path, timeout=timeout, isolation_level=None)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- filling -------------------------------------------------------

    def fill(self, params_iter: Iterable[dict]) -> tuple[int, int]:
        """Upsert experiments; returns ``(added, existing)``.

        Existing rows — whatever their status — are left untouched, so
        re-filling the same grid after a crash or an extension of the
        axes is always safe and resumable: only genuinely new parameter
        combinations join as ``open``.
        """
        added = existing = 0
        now = time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            for params in params_iter:
                columns = normalize_params(params)
                placed = self._conn.execute(
                    f"INSERT OR IGNORE INTO experiments "
                    f"({', '.join(PARAM_FIELDS)}, status, created_at) "
                    f"VALUES ({', '.join('?' * len(PARAM_FIELDS))}, 'open', ?)",
                    tuple(columns[name] for name in PARAM_FIELDS) + (now,),
                )
                if placed.rowcount:
                    added += 1
                else:
                    existing += 1
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return added, existing

    # -- the claim protocol --------------------------------------------

    def claim(self, worker: str, *, stale_after: float = 300.0) -> Optional[Claim]:
        """Atomically claim the next runnable experiment, if any.

        ``BEGIN IMMEDIATE`` serializes claimers; the guarded UPDATE
        flips the chosen row to ``running`` under this worker's id.  A
        ``running`` row whose heartbeat is older than ``stale_after``
        seconds is treated as abandoned and reclaimed.
        """
        now = time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT * FROM experiments WHERE status = 'open' "
                "OR (status = 'running' AND heartbeat IS NOT NULL AND heartbeat < ?) "
                "ORDER BY id LIMIT 1",
                (now - stale_after,),
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            self._conn.execute(
                "UPDATE experiments SET status = 'running', worker = ?, "
                "started_at = ?, heartbeat = ?, error = NULL, "
                "attempts = attempts + 1 WHERE id = ?",
                (worker, now, now, row["id"]),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return Claim(
            id=row["id"],
            params=decode_params(dict(row)),
            attempts=row["attempts"] + 1,
            reclaimed=row["status"] == "running",
        )

    def heartbeat(self, experiment_id: int, worker: str) -> bool:
        """Refresh the claim's liveness stamp; False if the claim is gone."""
        done = self._conn.execute(
            "UPDATE experiments SET heartbeat = ? "
            "WHERE id = ? AND status = 'running' AND worker = ?",
            (time.time(), experiment_id, worker),
        )
        return bool(done.rowcount)

    def finish(
        self,
        experiment_id: int,
        worker: str,
        metrics: dict,
        resources: Optional[dict] = None,
    ) -> bool:
        """Persist a completed run; False if the claim was lost.

        ``metrics`` is a stable result row (``to_row()`` output): its
        invariant scalars are denormalized into queryable columns and
        the full row — per-type traffic included — is kept verbatim in
        ``metrics_json``.
        """
        from ..bench.rows import metric_summary

        summary = metric_summary(metrics, METRIC_FIELDS)
        resources = dict(resources or {})
        extras = {
            key: value
            for key, value in resources.items()
            if key not in RESOURCE_FIELDS
        }
        done = self._conn.execute(
            "UPDATE experiments SET status = 'done', finished_at = ?, "
            "error = NULL, hops = ?, messages = ?, "
            "notifications_delivered = ?, notification_digest = ?, "
            "evictions = ?, exchange_records = ?, metrics_json = ?, "
            "wall_seconds = ?, peak_rss_kb = ?, events_per_sec = ?, "
            "resources_json = ? "
            "WHERE id = ? AND status = 'running' AND worker = ?",
            (
                time.time(),
                summary["hops"],
                summary["messages"],
                summary["notifications_delivered"],
                summary["notification_digest"],
                summary["evictions"],
                summary["exchange_records"],
                json.dumps(metrics, sort_keys=True, separators=(",", ":")),
                resources.get("wall_seconds"),
                resources.get("peak_rss_kb"),
                resources.get("events_per_sec"),
                json.dumps(extras, sort_keys=True, separators=(",", ":"))
                if extras
                else None,
                experiment_id,
                worker,
            ),
        )
        return bool(done.rowcount)

    def fail(self, experiment_id: int, worker: str, error: str) -> bool:
        """Record a failed run (full traceback); False if claim lost."""
        done = self._conn.execute(
            "UPDATE experiments SET status = 'error', finished_at = ?, "
            "error = ? WHERE id = ? AND status = 'running' AND worker = ?",
            (time.time(), error, experiment_id, worker),
        )
        return bool(done.rowcount)

    # -- management ----------------------------------------------------

    def reset(
        self,
        *,
        errors: bool = False,
        stale: bool = False,
        running: bool = False,
        stale_after: float = 300.0,
    ) -> int:
        """Flip failed/abandoned rows back to ``open``; returns count.

        ``errors`` resets ``error`` rows, ``stale`` resets ``running``
        rows whose heartbeat expired, ``running`` resets *every*
        running row (only safe when no worker is alive).  Results and
        the error column are cleared so a reset row re-runs cleanly;
        ``attempts`` survives as the retry history.
        """
        clauses = []
        args: list = []
        if errors:
            clauses.append("status = 'error'")
        if stale:
            clauses.append(
                "(status = 'running' AND (heartbeat IS NULL OR heartbeat < ?))"
            )
            args.append(time.time() - stale_after)
        if running:
            clauses.append("status = 'running'")
        if not clauses:
            return 0
        done = self._conn.execute(
            "UPDATE experiments SET status = 'open', worker = NULL, "
            "started_at = NULL, finished_at = NULL, heartbeat = NULL, "
            "error = NULL, hops = NULL, messages = NULL, "
            "notifications_delivered = NULL, notification_digest = NULL, "
            "evictions = NULL, exchange_records = NULL, metrics_json = NULL, "
            "wall_seconds = NULL, peak_rss_kb = NULL, events_per_sec = NULL, "
            "resources_json = NULL "
            f"WHERE {' OR '.join(clauses)}",
            args,
        )
        return done.rowcount

    def status_counts(self) -> dict[str, int]:
        """Row counts by status (all statuses present, zeros included)."""
        counts = dict.fromkeys(STATUSES, 0)
        for status, count in self._conn.execute(
            "SELECT status, COUNT(*) FROM experiments GROUP BY status"
        ):
            counts[status] = count
        return counts

    def claimable_count(self, *, stale_after: float = 300.0) -> int:
        """Open rows plus stale running rows (what a worker could pull)."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM experiments WHERE status = 'open' "
            "OR (status = 'running' AND heartbeat IS NOT NULL AND heartbeat < ?)",
            (time.time() - stale_after,),
        ).fetchone()
        return count

    def rows(
        self, *, status: Optional[str] = None, transport: Optional[str] = None
    ) -> list[dict]:
        """All rows (optionally filtered), id order, as export dicts."""
        clauses, args = [], []
        if status is not None:
            if status not in STATUSES:
                raise ValueError(f"unknown status {status!r}; expected {STATUSES}")
            clauses.append("status = ?")
            args.append(status)
        if transport is not None:
            if transport not in TRANSPORTS:
                raise ValueError(
                    f"unknown transport {transport!r}; expected {TRANSPORTS}"
                )
            clauses.append("transport = ?")
            args.append(transport)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._conn.execute(
            f"SELECT * FROM experiments{where} ORDER BY id", args
        )
        return [{name: row[name] for name in EXPORT_COLUMNS} for row in cursor]

    def get(self, experiment_id: int) -> Optional[dict]:
        """One row by id, as an export dict (None when absent)."""
        row = self._conn.execute(
            "SELECT * FROM experiments WHERE id = ?", (experiment_id,)
        ).fetchone()
        if row is None:
            return None
        return {name: row[name] for name in EXPORT_COLUMNS}

    # -- backfill ------------------------------------------------------

    def import_done(
        self,
        params: dict,
        metrics: dict,
        resources: Optional[dict] = None,
        *,
        worker: str = "import",
    ) -> bool:
        """Insert one already-measured experiment as a ``done`` row.

        The backfill path for committed ``BENCH_*.json`` baselines: the
        row is created open, immediately claimed by ``worker`` and
        finished with the given results, all in-process.  Returns False
        (and changes nothing) when the parameter combination already
        exists — committed history is never overwritten.
        """
        added, _ = self.fill([params])
        if not added:
            return False
        claim_id = self._find_id(params)
        now = time.time()
        self._conn.execute(
            "UPDATE experiments SET status = 'running', worker = ?, "
            "started_at = ?, heartbeat = ?, attempts = attempts + 1 "
            "WHERE id = ? AND status = 'open'",
            (worker, now, now, claim_id),
        )
        return self.finish(claim_id, worker, metrics, resources)

    def release(self, experiment_id: int, worker: str) -> bool:
        """Put a claimed row back to ``open`` untouched (claim undo)."""
        done = self._conn.execute(
            "UPDATE experiments SET status = 'open', worker = NULL, "
            "started_at = NULL, heartbeat = NULL "
            "WHERE id = ? AND status = 'running' AND worker = ?",
            (experiment_id, worker),
        )
        return bool(done.rowcount)

    def _find_id(self, params: dict) -> Optional[int]:
        columns = normalize_params(params)
        where = " AND ".join(f"{name} = ?" for name in PARAM_FIELDS)
        row = self._conn.execute(
            f"SELECT id FROM experiments WHERE {where}",
            tuple(columns[name] for name in PARAM_FIELDS),
        ).fetchone()
        return row["id"] if row else None

    # -- export --------------------------------------------------------

    def export_json(self, path: str, *, status: Optional[str] = None) -> int:
        """Write all (or filtered) rows as a JSON list; returns count."""
        rows = self.rows(status=status)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        return len(rows)

    def export_csv(self, path: str, *, status: Optional[str] = None) -> int:
        """Write all (or filtered) rows as CSV; returns count.

        Columns are exactly :data:`EXPORT_COLUMNS`, in order — the
        documented, stable export schema.
        """
        rows = self.rows(status=status)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=EXPORT_COLUMNS)
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)
