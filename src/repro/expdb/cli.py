"""Management CLI: ``python -m repro.expdb <command>``.

Commands
--------

``fill``
    Expand a declarative grid (a ``--grid`` JSON file and/or axis
    flags) and upsert it — existing rows keep their status, so filling
    is idempotent and extending a sweep is a re-fill.
``worker``
    Run the pull loop until drained (``--drain``), a row budget is hit
    (``--max-runs``), or Ctrl-C.  Start as many as you like.
``status``
    Status counts plus the currently running claims; ``--assert-done``
    exits non-zero unless every row is ``done`` (the CI gate).
``reset``
    Flip ``error`` / stale ``running`` rows back to ``open``.
``export``
    The whole table as CSV or JSON (documented schema:
    :data:`repro.expdb.db.EXPORT_COLUMNS`).
``report``
    A rendered table of the perf history, optionally aggregated over
    axes (``--group-by algorithm,n_nodes``).
``import-json``
    Backfill committed ``BENCH_*.json`` baselines as ``done`` rows so
    the history starts populated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

from .db import (
    EXPORT_COLUMNS,
    METRIC_FIELDS,
    PARAM_FIELDS,
    STATUSES,
    TRANSPORTS,
    ExperimentDB,
)
from .grid import ALGORITHMS, GridSpec, parse_axis
from .worker import WorkerConfig, default_worker_id, run_worker

#: Default database path (override per command with ``--db``).
DEFAULT_DB = "expdb.sqlite"


def _open_db(args) -> ExperimentDB:
    return ExperimentDB(args.db)


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
# fill
# ----------------------------------------------------------------------

def _grid_from_args(args) -> GridSpec:
    data: dict = {}
    if args.grid:
        with open(args.grid, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    axis_flags = (
        ("transports", args.transports, str),
        ("algorithms", args.algorithms, str),
        ("n_nodes", args.nodes, int),
        ("n_queries", args.queries, int),
        ("n_tuples", args.tuples, int),
        ("domain_sizes", args.domains, int),
        ("zipf_s", args.zipf, float),
        ("windows", args.windows, float),
        ("replication_factors", args.replication, int),
        ("jfrt_capacities", args.jfrt, int),
        ("evict_everys", args.evict_every, int),
        ("seeds", args.seeds, int),
    )
    for axis, flag, convert in axis_flags:
        values = parse_axis(flag, convert=convert)
        if values is not None:
            data[axis] = list(values)
    return GridSpec.from_dict(data)


def cmd_fill(args) -> int:
    try:
        grid = _grid_from_args(args)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        return _fail(str(error))
    with _open_db(args) as db:
        added, existing = db.fill(grid.expand())
        counts = db.status_counts()
    print(
        f"grid of {grid.size()} experiments: {added} added, "
        f"{existing} already present "
        f"({counts['done']} done, {counts['open']} open)"
    )
    return 0


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------

def cmd_worker(args) -> int:
    if not os.path.exists(args.db):
        return _fail(f"no database at {args.db!r} — run 'fill' first")
    config = WorkerConfig(
        db_path=args.db,
        worker_id=args.worker_id or default_worker_id(),
        poll_interval=args.poll,
        heartbeat_every=args.heartbeat_every,
        stale_after=args.stale_after,
        drain=args.drain,
        max_runs=args.max_runs,
        shards=args.shards,
    )
    print(f"worker {config.worker_id} on {args.db}", file=sys.stderr)
    try:
        stats = run_worker(config, on_event=lambda line: print(line, file=sys.stderr))
    except KeyboardInterrupt:
        print("worker interrupted — claim released", file=sys.stderr)
        return 130
    print(
        f"worker {config.worker_id}: {stats.completed} done, "
        f"{stats.failed} error, {stats.lost_claims} lost claims"
    )
    return 0 if stats.failed == 0 else 2


# ----------------------------------------------------------------------
# status / reset
# ----------------------------------------------------------------------

def cmd_status(args) -> int:
    from ..bench.report import render_table

    with _open_db(args) as db:
        counts = db.status_counts()
        running = db.rows(status="running")
    total = sum(counts.values())
    print(
        f"{total} experiments: "
        + ", ".join(f"{counts[status]} {status}" for status in STATUSES)
    )
    if running:
        now = time.time()
        rows = [
            {
                "id": row["id"],
                "transport": row["transport"],
                "algorithm": row["algorithm"],
                "n_nodes": row["n_nodes"],
                "seed": row["seed"],
                "worker": row["worker"],
                "attempt": row["attempts"],
                "heartbeat_age_s": round(now - (row["heartbeat"] or now), 1),
            }
            for row in running
        ]
        print(render_table(list(rows[0]), rows))
    if args.assert_done:
        if total == 0:
            return _fail("assert-done: database holds no experiments")
        if counts["done"] != total:
            return _fail(
                f"assert-done: {total - counts['done']} of {total} rows not done"
            )
    return 0


def cmd_reset(args) -> int:
    if not (args.errors or args.stale or args.running):
        return _fail("nothing selected: pass --errors, --stale and/or --running")
    with _open_db(args) as db:
        count = db.reset(
            errors=args.errors,
            stale=args.stale,
            running=args.running,
            stale_after=args.stale_after,
        )
    print(f"reset {count} experiments to open")
    return 0


# ----------------------------------------------------------------------
# export / report
# ----------------------------------------------------------------------

def cmd_export(args) -> int:
    if not (args.csv or args.json):
        return _fail("pass --csv PATH and/or --json PATH")
    if args.status and args.status not in STATUSES:
        return _fail(f"unknown status {args.status!r}; expected one of {STATUSES}")
    with _open_db(args) as db:
        if args.csv:
            count = db.export_csv(args.csv, status=args.status)
            print(f"wrote {count} rows to {args.csv}")
        if args.json:
            count = db.export_json(args.json, status=args.status)
            print(f"wrote {count} rows to {args.json}")
    return 0


#: Row columns the report may group over.
GROUPABLE = PARAM_FIELDS + ("status",)


def cmd_report(args) -> int:
    from ..bench.report import render_table

    group_by = tuple(
        name.strip() for name in (args.group_by or "").split(",") if name.strip()
    )
    for name in group_by:
        if name not in GROUPABLE:
            return _fail(f"cannot group by {name!r}; choose from {GROUPABLE}")
    with _open_db(args) as db:
        rows = db.rows(status=args.status, transport=args.transport)
    if not rows:
        print("no experiments match")
        return 0
    if group_by:
        groups: dict[tuple, list[dict]] = {}
        for row in rows:
            groups.setdefault(tuple(row[name] for name in group_by), []).append(row)
        rendered = []
        for key in sorted(groups, key=repr):
            members = groups[key]
            done = [row for row in members if row["status"] == "done"]
            entry = dict(zip(group_by, key))
            entry["runs"] = len(members)
            entry["done"] = len(done)
            for metric in ("hops", "messages", "notifications_delivered"):
                values = [row[metric] for row in done if row[metric] is not None]
                entry[f"mean_{metric}"] = (
                    round(sum(values) / len(values), 1) if values else None
                )
            walls = [
                row["wall_seconds"] for row in done if row["wall_seconds"] is not None
            ]
            entry["mean_wall_s"] = round(sum(walls) / len(walls), 3) if walls else None
            digests = {
                row["notification_digest"]
                for row in done
                if row["notification_digest"]
            }
            entry["digests"] = len(digests)
            rendered.append(entry)
        print(render_table(list(rendered[0]), rendered))
        return 0
    table = [
        {
            "id": row["id"],
            "transport": row["transport"],
            "algo": row["algorithm"],
            "n_nodes": row["n_nodes"],
            "n_queries": row["n_queries"],
            "zipf": row["zipf_s"],
            "win": row["window"] or 0,
            "rep": row["replication_factor"],
            "jfrt": row["jfrt_capacity"],
            "faults": "y" if row["fault_plan"] else "",
            "seed": row["seed"],
            "status": row["status"],
            "hops": row["hops"],
            "notifs": row["notifications_delivered"],
            "digest": (row["notification_digest"] or "")[:10],
            "wall_s": row["wall_seconds"],
        }
        for row in rows
    ]
    print(render_table(list(table[0]), table))
    return 0


# ----------------------------------------------------------------------
# import-json (baseline backfill)
# ----------------------------------------------------------------------

def _import_macro(db: ExperimentDB, report: dict, worker: str) -> int:
    point = report["point"]
    imported = 0
    for algorithm, metrics in report.get("metrics", {}).items():
        params = {
            "transport": "sim",
            "algorithm": algorithm,
            "n_nodes": point["n_nodes"],
            "n_queries": point["n_queries"],
            "n_tuples": point["n_tuples"],
            "domain_size": point["domain_size"],
            "zipf_s": point["zipf_s"],
            "seed": report.get("seed", 1),
        }
        resources = {}
        wall = report.get("wall_seconds", {}).get(algorithm)
        if wall is not None:
            resources["wall_seconds"] = wall
        imported += db.import_done(params, metrics, resources, worker=worker)
    return imported


def _import_scale(db: ExperimentDB, report: dict, worker: str) -> int:
    imported = 0
    for entry in [report] + list(report.get("extra_points", [])):
        point = entry["point"]
        for algorithm, metrics in entry.get("metrics", {}).items():
            params = {
                "transport": "shard",
                "algorithm": algorithm,
                "n_nodes": point["n_nodes"],
                "n_queries": point["n_queries"],
                "n_tuples": point["n_tuples"],
                "domain_size": point["domain_size"],
                "zipf_s": point["zipf_s"],
                "window": point.get("window"),
                "replication_factor": point.get("replication_factor", 1),
                "jfrt_capacity": point.get("jfrt_capacity", 0),
                "evict_every": point.get("evict_every", 64),
                "seed": entry.get("seed", 1),
            }
            resources = dict(entry.get("resources", {}).get(algorithm, {}))
            wall = entry.get("wall_seconds", {}).get(algorithm)
            if wall is not None:
                resources["wall_seconds"] = wall
            imported += db.import_done(params, metrics, resources, worker=worker)
    return imported


def _import_loadgen(db: ExperimentDB, report: dict, worker: str) -> int:
    point = report["point"]
    imported = 0
    for algorithm, entry in report.get("algorithms", {}).items():
        measured = entry.get("batched") or entry.get("per_frame") or {}
        metrics = {
            "kind": "live",
            "notifications_delivered": entry["notifications"],
            "notification_digest": entry["digest"],
            "mode": "batched" if entry.get("batched") else "per_frame",
            "live": measured,
        }
        params = {
            "transport": "live",
            "algorithm": algorithm,
            "n_nodes": point["n_nodes"],
            "n_queries": point["n_queries"],
            "n_tuples": point["n_tuples"],
            "domain_size": point["domain_size"],
            # The load generator streams the WorkloadParams default skew.
            "zipf_s": 0.9,
            "seed": point.get("seed", 1),
        }
        resources = {
            "wall_seconds": measured.get("wall_seconds"),
            "events_per_sec": measured.get("events_per_sec"),
            "notifications_per_sec": measured.get("notifications_per_sec"),
            "latency_ms": measured.get("latency_ms"),
        }
        imported += db.import_done(params, metrics, resources, worker=worker)
    return imported


#: Baseline-name → importer.
IMPORTERS = {
    "macro-e14-largest": _import_macro,
    "sim-scale-point": _import_scale,
    "net-loadgen-v1": _import_loadgen,
}


def cmd_import_json(args) -> int:
    total = 0
    with _open_db(args) as db:
        for path in args.files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    report = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                return _fail(f"{path}: {error}")
            importer = IMPORTERS.get(report.get("name"))
            if importer is None:
                return _fail(
                    f"{path}: unknown baseline name {report.get('name')!r}; "
                    f"importable: {sorted(IMPORTERS)}"
                )
            count = importer(db, report, f"import:{os.path.basename(path)}")
            print(f"{path}: imported {count} experiments")
            total += count
    print(f"imported {total} experiments total")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.expdb",
        description="Persistent experiment database with pull-based workers.",
    )
    parser.add_argument(
        "--db", default=DEFAULT_DB, help=f"database path (default {DEFAULT_DB})"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fill = commands.add_parser("fill", help="expand a grid and upsert it")
    fill.add_argument("--grid", help="grid spec JSON file (axes: see GridSpec)")
    fill.add_argument("--transports", help=f"comma list of {TRANSPORTS}")
    fill.add_argument("--algorithms", help=f"comma list of {ALGORITHMS}")
    fill.add_argument("--nodes", help="comma list of ring sizes")
    fill.add_argument("--queries", help="comma list of query counts")
    fill.add_argument("--tuples", help="comma list of tuple counts")
    fill.add_argument("--domains", help="comma list of domain sizes")
    fill.add_argument("--zipf", help="comma list of Zipf exponents")
    fill.add_argument("--windows", help="comma list of windows ('none' = unbounded)")
    fill.add_argument("--replication", help="comma list of replication factors")
    fill.add_argument("--jfrt", help="comma list of JFRT capacities")
    fill.add_argument("--evict-every", help="comma list of eviction schedules")
    fill.add_argument("--seeds", help="comma list of seeds")
    fill.set_defaults(handler=cmd_fill)

    worker = commands.add_parser("worker", help="pull and execute open experiments")
    worker.add_argument("--worker-id", default=None, help="default: host:pid")
    worker.add_argument("--drain", action="store_true", help="exit when drained")
    worker.add_argument("--max-runs", type=int, default=0, help="0 = unlimited")
    worker.add_argument("--poll", type=float, default=2.0, help="idle poll seconds")
    worker.add_argument(
        "--heartbeat-every", type=float, default=5.0, help="heartbeat period"
    )
    worker.add_argument(
        "--stale-after",
        type=float,
        default=300.0,
        help="reclaim running rows with heartbeats older than this",
    )
    worker.add_argument(
        "--shards", type=int, default=None, help="shard count for shard rows"
    )
    worker.set_defaults(handler=cmd_worker)

    status = commands.add_parser("status", help="status counts + running claims")
    status.add_argument(
        "--assert-done",
        action="store_true",
        help="exit non-zero unless every row is done",
    )
    status.set_defaults(handler=cmd_status)

    reset = commands.add_parser("reset", help="flip failed/stale rows back to open")
    reset.add_argument("--errors", action="store_true", help="reset error rows")
    reset.add_argument(
        "--stale", action="store_true", help="reset running rows with expired heartbeats"
    )
    reset.add_argument(
        "--running", action="store_true", help="reset ALL running rows (no live workers!)"
    )
    reset.add_argument("--stale-after", type=float, default=300.0)
    reset.set_defaults(handler=cmd_reset)

    export = commands.add_parser("export", help="dump rows as CSV/JSON")
    export.add_argument("--csv", help="write CSV here")
    export.add_argument("--json", help="write JSON here")
    export.add_argument("--status", default=None, help="only rows with this status")
    export.set_defaults(handler=cmd_export)

    report = commands.add_parser("report", help="render the perf history")
    report.add_argument("--status", default=None, help="only rows with this status")
    report.add_argument("--transport", default=None, help="only this transport")
    report.add_argument(
        "--group-by", default=None, help="aggregate over these comma-separated axes"
    )
    report.set_defaults(handler=cmd_report)

    importer = commands.add_parser(
        "import-json", help="backfill committed BENCH_*.json baselines"
    )
    importer.add_argument("files", nargs="+", help="baseline JSON files")
    importer.set_defaults(handler=cmd_import_json)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, OSError) as error:
        return _fail(str(error))


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
