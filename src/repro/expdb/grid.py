"""Declarative experiment grids: axes in, parameter rows out.

A :class:`GridSpec` names one value list per experiment axis; its
cartesian expansion — in a fixed, documented axis order, so the same
spec always enumerates the same rows in the same order — is what
``fill`` upserts into the database.  Specs round-trip through plain
JSON (``grid.json`` files and the ``fill`` CLI flags build the same
object), following the ``py_experimenter`` pattern of defining the
sweep once, declaratively, instead of inside ad-hoc scripts.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields
from typing import Iterator, Optional

from .db import TRANSPORTS, normalize_params

#: Algorithms a grid may name (presentation order).
ALGORITHMS = ("sai", "dai-q", "dai-t", "dai-v")

#: Spec-attribute → parameter-column, in expansion order (outermost
#: axis first).  Seeds iterate innermost so replicated points sit next
#: to each other in the table.
AXES = (
    ("transports", "transport"),
    ("algorithms", "algorithm"),
    ("n_nodes", "n_nodes"),
    ("n_queries", "n_queries"),
    ("n_tuples", "n_tuples"),
    ("domain_sizes", "domain_size"),
    ("zipf_s", "zipf_s"),
    ("windows", "window"),
    ("replication_factors", "replication_factor"),
    ("jfrt_capacities", "jfrt_capacity"),
    ("evict_everys", "evict_every"),
    ("fault_plans", "fault_plan"),
    ("seeds", "seed"),
)


@dataclass(frozen=True)
class GridSpec:
    """One sweep, as a value tuple per axis."""

    transports: tuple = ("sim",)
    algorithms: tuple = ALGORITHMS
    n_nodes: tuple = (64,)
    n_queries: tuple = (80,)
    n_tuples: tuple = (200,)
    domain_sizes: tuple = (60,)
    zipf_s: tuple = (0.9,)
    #: ``None`` = unbounded window.
    windows: tuple = (None,)
    replication_factors: tuple = (1,)
    jfrt_capacities: tuple = (0,)
    evict_everys: tuple = (64,)
    #: ``None`` = fault-free; otherwise a FaultPlan kwargs dict (the
    #: ``delay`` sub-dict maps to DelaySpec kwargs).
    fault_plans: tuple = (None,)
    seeds: tuple = (1,)

    def __post_init__(self):
        for name in ("transports",):
            for transport in getattr(self, name):
                if transport not in TRANSPORTS:
                    raise ValueError(
                        f"unknown transport {transport!r}; expected one of "
                        f"{TRANSPORTS}"
                    )
        for algorithm in self.algorithms:
            if algorithm not in ALGORITHMS:
                raise ValueError(
                    f"unknown algorithm {algorithm!r}; expected one of "
                    f"{ALGORITHMS}"
                )
        for spec_field in fields(self):
            if not getattr(self, spec_field.name):
                raise ValueError(f"axis {spec_field.name!r} is empty")

    def size(self) -> int:
        """Number of experiments the expansion yields."""
        count = 1
        for attr, _ in AXES:
            count *= len(getattr(self, attr))
        return count

    def expand(self) -> Iterator[dict]:
        """Every parameter combination, normalized, in axis order."""
        axis_values = [getattr(self, attr) for attr, _ in AXES]
        columns = [column for _, column in AXES]
        for combination in itertools.product(*axis_values):
            yield normalize_params(dict(zip(columns, combination)))

    def to_dict(self) -> dict:
        """JSON-safe spec (inverse of :meth:`from_dict`)."""
        return {attr: list(getattr(self, attr)) for attr, _ in AXES}

    @classmethod
    def from_dict(cls, data: dict) -> "GridSpec":
        """Build a spec from JSON; scalars are promoted to one-value axes."""
        unknown = set(data) - {attr for attr, _ in AXES}
        if unknown:
            raise ValueError(f"unknown grid axes: {sorted(unknown)}")
        kwargs = {}
        for attr, _ in AXES:
            if attr not in data:
                continue
            value = data[attr]
            if isinstance(value, (list, tuple)):
                kwargs[attr] = tuple(value)
            else:
                kwargs[attr] = (value,)
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "GridSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def parse_axis(text: Optional[str], *, convert=str) -> Optional[tuple]:
    """A CLI axis flag (``"a,b,c"``) as a value tuple (None passthrough).

    ``convert`` parses each item; the literal ``none`` (any case)
    becomes ``None`` so ``--windows none,240`` can mix unbounded and
    windowed points.
    """
    if text is None:
        return None
    values = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        values.append(None if item.lower() == "none" else convert(item))
    if not values:
        raise ValueError(f"axis flag {text!r} names no values")
    return tuple(values)
