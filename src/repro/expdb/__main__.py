"""``python -m repro.expdb`` entry point."""

from .cli import main

raise SystemExit(main())
