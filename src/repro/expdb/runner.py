"""Execute one database row through the existing benchmark harnesses.

The worker hands this module a decoded parameter dict (see
:func:`repro.expdb.db.decode_params`); the transport column picks the
back-end:

* ``sim`` — the serial simulator via
  :func:`repro.bench.harness.run_standard`, optionally with a seeded
  :class:`~repro.faults.FaultPlan` wired into the ring's router (the
  only transport that accepts a fault plan today);
* ``shard`` — the staged/sharded executor via
  :func:`repro.bench.scale.run_scale_point` (fault plans refused, as
  :func:`repro.sim.shard.shard_capabilities` documents);
* ``live`` — the real-TCP load generator via
  :func:`repro.net.loadgen.run_load_sync` (answer-set metrics are
  deterministic; throughput/latency land in the resource columns).

Every outcome carries the stable metrics row (``to_row()``) plus the
per-run resource columns (wall seconds, peak RSS, events/sec).  The
metrics are machine-independent and reproducible from the parameters
alone — re-running the same row must produce byte-identical metrics.

``REPRO_EXPDB_RUN_DELAY`` (float seconds) pauses execution between
claim and run; the crash-consistency tests use it to SIGKILL workers
mid-run deterministically.  It is a test hook, not a tuning knob.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from ..bench.configs import Scale
from ..bench.harness import run_standard
from ..bench.scale import peak_rss_kb, run_scale_point
from ..faults import DelaySpec, FaultInjector, FaultPlan


@dataclass(frozen=True)
class ExperimentOutcome:
    """What one executed experiment persists."""

    #: Stable result row (``to_row()`` output) — machine-independent.
    metrics: dict
    #: Resource columns + transport-specific extras — machine-dependent.
    resources: dict


def fault_plan_from_dict(spec: dict) -> FaultPlan:
    """A :class:`FaultPlan` from its JSON form (``delay`` → DelaySpec)."""
    kwargs = dict(spec)
    delay = kwargs.pop("delay", None)
    if delay is not None:
        kwargs["delay"] = DelaySpec(**delay)
    if "net" in kwargs:
        raise ValueError("net fault specs are live-cluster only; not supported here")
    return FaultPlan(**kwargs)


def scale_for(params: dict) -> Scale:
    """The workload profile one row describes."""
    return Scale(
        name=f"expdb-{params['transport']}-{params['n_nodes']}",
        n_nodes=params["n_nodes"],
        n_queries=params["n_queries"],
        n_tuples=params["n_tuples"],
        domain_size=params["domain_size"],
        zipf_s=params["zipf_s"],
    )


def engine_overrides(params: dict) -> dict:
    """EngineConfig overrides encoded by the feature columns."""
    overrides: dict = {"index_choice": "random"}
    if params["window"]:
        overrides["window"] = params["window"]
    if params["replication_factor"] != 1:
        overrides["replication_factor"] = params["replication_factor"]
    if params["jfrt_capacity"]:
        overrides["jfrt_capacity"] = params["jfrt_capacity"]
    return overrides


def _run_sim(params: dict) -> ExperimentOutcome:
    injector: Optional[FaultInjector] = None
    if params["fault_plan"]:
        injector = FaultInjector(fault_plan_from_dict(params["fault_plan"]))
    start = time.perf_counter()
    result = run_standard(
        params["algorithm"],
        scale_for(params),
        config_overrides=engine_overrides(params),
        seed=params["seed"],
        evict_every=params["evict_every"],
        injector=injector,
    )
    wall = time.perf_counter() - start
    events = params["n_queries"] + params["n_tuples"]
    return ExperimentOutcome(
        metrics=result.to_row(),
        resources={
            "wall_seconds": round(wall, 4),
            "peak_rss_kb": peak_rss_kb(),
            "events_per_sec": round(events / wall, 1) if wall else 0.0,
        },
    )


def _run_shard(params: dict, *, shards: Optional[int]) -> ExperimentOutcome:
    if params["fault_plan"]:
        raise ValueError(
            "the shard transport refuses perturbing fault plans "
            "(see repro.sim.shard.shard_capabilities); use transport='sim'"
        )
    config = engine_overrides(params)
    config.pop("index_choice")  # run_scale_point sets it itself
    sample = run_scale_point(
        params["algorithm"],
        scale_for(params),
        seed=params["seed"],
        shards=shards,
        config_overrides=config,
        evict_every=params["evict_every"],
    )
    return ExperimentOutcome(
        metrics=sample["row"],
        resources={
            "wall_seconds": round(sample["wall_seconds"], 4),
            **sample["resources"],
            "build_seconds": round(sample["build_seconds"], 4),
            "shards": sample["shards"],
        },
    )


def _run_live(params: dict) -> ExperimentOutcome:
    if params["fault_plan"]:
        raise ValueError(
            "fault plans on the live transport go through "
            "python -m repro.net.cluster --chaos, not the experiment "
            "database; use transport='sim' for faulted sweep points"
        )
    from ..net.loadgen import LoadgenConfig, run_load_sync

    overrides = engine_overrides(params)
    overrides.pop("index_choice")
    report = run_load_sync(
        LoadgenConfig(
            algorithm=params["algorithm"],
            n_nodes=params["n_nodes"],
            n_queries=params["n_queries"],
            n_tuples=params["n_tuples"],
            domain_size=params["domain_size"],
            zipf_s=params["zipf_s"],
            seed=params["seed"],
            engine_overrides=overrides,
        )
    )
    return ExperimentOutcome(
        metrics=report.to_row(),
        resources={
            "wall_seconds": round(report.stream_seconds, 4),
            "peak_rss_kb": peak_rss_kb(),
            "events_per_sec": report.events_per_sec,
            "notifications_per_sec": report.notifications_per_sec,
            "latency_ms": report.latency.as_dict(),
        },
    )


def run_experiment(params: dict, *, shards: Optional[int] = None) -> ExperimentOutcome:
    """One claimed row, executed; raises on any error (the worker
    records the traceback in the row)."""
    delay = float(os.environ.get("REPRO_EXPDB_RUN_DELAY", "0") or 0)
    if delay > 0:
        time.sleep(delay)
    transport = params["transport"]
    if transport == "sim":
        return _run_sim(params)
    if transport == "shard":
        return _run_shard(params, shards=shards)
    if transport == "live":
        return _run_live(params)
    raise ValueError(f"unknown transport {transport!r}")
