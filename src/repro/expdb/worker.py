"""The pull-based worker loop (``python -m repro.expdb worker``).

Any number of worker processes — on any number of machines sharing the
database file (or each machine draining its own shard of the grid) —
run the same loop:

1. :meth:`~repro.expdb.db.ExperimentDB.claim` the next runnable row
   (atomic under ``BEGIN IMMEDIATE``; stale ``running`` rows whose
   heartbeat expired are reclaimed);
2. start a heartbeat thread that stamps the claim alive every few
   seconds over its **own** connection;
3. execute the row through :func:`repro.expdb.runner.run_experiment`;
4. persist the result (``finish``) or the full traceback (``fail``) —
   both guarded by ``worker=?``, so a claim lost to a stale-reclaim
   while we were merely slow is dropped, never double-written.

A worker killed at *any* point — including SIGKILL mid-run — leaves
the database consistent: the row stays ``running`` until its heartbeat
expires, then becomes claimable again (or is flipped back eagerly with
``reset --stale``).  Ctrl-C between rows exits cleanly; a sweep is
resumed by simply starting workers again.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional

from .db import ExperimentDB
from .runner import run_experiment


def default_worker_id() -> str:
    """``host:pid`` — unique enough across machines sharing a database."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class WorkerConfig:
    """Knobs of one worker process."""

    db_path: str
    worker_id: str = field(default_factory=default_worker_id)
    #: Seconds between claim attempts while the table has nothing to do.
    poll_interval: float = 2.0
    #: Heartbeat period while running an experiment.
    heartbeat_every: float = 5.0
    #: Age at which another worker may reclaim a running row.  Must be
    #: comfortably larger than ``heartbeat_every``.
    stale_after: float = 300.0
    #: Exit once nothing is claimable (instead of polling forever).
    drain: bool = False
    #: Stop after this many executed rows (0 = unlimited).
    max_runs: int = 0
    #: Shard count for ``transport='shard'`` rows (None = REPRO_BENCH_PROCS).
    shards: Optional[int] = None


class _Heartbeat(threading.Thread):
    """Stamps one claim alive until stopped (own DB connection)."""

    def __init__(self, db_path: str, experiment_id: int, worker_id: str, every: float):
        super().__init__(name=f"expdb-heartbeat-{experiment_id}", daemon=True)
        self._db_path = db_path
        self._experiment_id = experiment_id
        self._worker_id = worker_id
        self._every = every
        self._halt = threading.Event()
        #: False once the claim stopped being ours (stale-reclaimed).
        self.owned = True

    def run(self) -> None:  # pragma: no cover - exercised via worker tests
        with ExperimentDB(self._db_path) as db:
            while not self._halt.wait(self._every):
                if not db.heartbeat(self._experiment_id, self._worker_id):
                    self.owned = False
                    return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)


@dataclass
class WorkerStats:
    """What one worker loop did before exiting."""

    completed: int = 0
    failed: int = 0
    lost_claims: int = 0

    @property
    def executed(self) -> int:
        return self.completed + self.failed


def run_worker(
    config: WorkerConfig,
    *,
    runner: Optional[Callable] = None,
    on_event: Optional[Callable[[str], None]] = None,
) -> WorkerStats:
    """Drain experiments until told to stop; returns the tally.

    ``runner`` is injectable for tests (default: the real
    :func:`~repro.expdb.runner.run_experiment`, resolved at call time);
    ``on_event`` receives one human-readable line per lifecycle step
    (the CLI prints them).
    """
    if runner is None:
        runner = run_experiment
    emit = on_event or (lambda line: None)
    stats = WorkerStats()
    with ExperimentDB(config.db_path) as db:
        while True:
            claim = db.claim(config.worker_id, stale_after=config.stale_after)
            if claim is None:
                if config.drain:
                    emit("nothing claimable — draining worker exits")
                    return stats
                time.sleep(config.poll_interval)
                continue
            label = (
                f"#{claim.id} {claim.params['transport']}/"
                f"{claim.params['algorithm']} n={claim.params['n_nodes']} "
                f"seed={claim.params['seed']}"
            )
            emit(
                f"claimed {label} (attempt {claim.attempts}"
                + (", reclaimed stale" if claim.reclaimed else "")
                + ")"
            )
            heartbeat = _Heartbeat(
                config.db_path, claim.id, config.worker_id, config.heartbeat_every
            )
            heartbeat.start()
            try:
                outcome = runner(claim.params, shards=config.shards)
            except KeyboardInterrupt:
                heartbeat.stop()
                db.release(claim.id, config.worker_id)
                emit(f"interrupted — released {label}")
                raise
            except Exception:
                heartbeat.stop()
                if db.fail(claim.id, config.worker_id, traceback.format_exc()):
                    stats.failed += 1
                    emit(f"error on {label} (recorded; reset with 'reset --errors')")
                else:
                    stats.lost_claims += 1
                    emit(f"lost claim on {label} while failing — dropped")
            else:
                heartbeat.stop()
                if db.finish(
                    claim.id, config.worker_id, outcome.metrics, outcome.resources
                ):
                    stats.completed += 1
                    emit(f"done {label}")
                else:
                    stats.lost_claims += 1
                    emit(f"lost claim on {label} while running — result dropped")
            if config.max_runs and stats.executed >= config.max_runs:
                emit(f"max-runs {config.max_runs} reached — worker exits")
                return stats
