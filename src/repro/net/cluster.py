"""Run the four algorithms over a live localhost ring.

:class:`LiveCluster` builds the same stable Chord ring the simulator
uses (``ChordNetwork.build``), gives every node a :class:`NetPeer` with
a real TCP server, runs the bootstrap handshake so every peer's address
book converges, swaps the network's transport for the
:class:`~repro.net.peer.SocketTransport`, and replays a
:class:`~repro.workload.generator.Workload` with exactly the harness's
seeded driver loop — same RNG stream, same clock advances, same
subscribe/publish calls.  Between workload events the driver awaits
cluster quiescence (the in-flight delivery counter reaching zero), so
an event's full causal cascade lands before the next event fires, just
as a simulator event's synchronous call tree completes before the next.

Because the notification digest is a *set* digest (sorted per query and
across queries), within-event frame reordering over TCP cannot change
it; a live run must therefore reproduce the simulator's digest exactly
for the same workload and seed.  That is the subsystem's correctness
gate, runnable from the command line::

    python -m repro.net.cluster --algorithm dai-v --nodes 8 \\
        --queries 30 --tuples 120 --compare-sim

which exits non-zero if the live digest differs from the simulator's.

With ``--chaos`` the same command runs the fault-tolerance soak
instead (:mod:`repro.net.chaos`): seeded connection faults, one
partition episode and live crash/restarts are injected while the
workload replays, and the run must still converge to the fault-free
simulator digest with zero duplicate notifications.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
from dataclasses import dataclass, field
from typing import Optional

from ..chord.network import ChordNetwork
from ..core.engine import ContinuousQueryEngine, EngineConfig
from ..errors import NetworkError, QuiesceTimeout
from ..perf import PERF
from ..sim.stats import TrafficSnapshot, TrafficStats
from ..workload.generator import Workload, WorkloadParams, build_workload
from .codec import encode_frame, read_frame
from .frames import JoinReply, JoinRequest, MultiFrame, RouteFrame
from .health import HealthConfig
from .loop import maybe_install_uvloop
from .peer import InFlight, NetConfig, NetPeer, SocketTransport, set_nodelay


@dataclass
class ClusterConfig:
    """Shape of a live cluster run."""

    algorithm: str = "sai"
    n_nodes: int = 8
    #: Engine *and* driver seed, exactly like the harness's ``seed``.
    seed: int = 1
    host: str = "127.0.0.1"
    #: Ceiling on waiting for one workload event's cascade to land.
    quiesce_timeout: float = 30.0
    #: Extra :class:`~repro.core.engine.EngineConfig` fields (window,
    #: replication_factor, ...).
    engine_overrides: dict = field(default_factory=dict)
    net: NetConfig = field(default_factory=NetConfig)
    #: When set, every peer runs a heartbeat failure detector.
    health: Optional[HealthConfig] = None


@dataclass
class LiveReport:
    """What a live run produced, for humans and for the sim comparison."""

    algorithm: str
    n_nodes: int
    n_queries: int
    n_tuples: int
    notifications_delivered: int
    notification_digest: str
    traffic: TrafficSnapshot
    frames_sent: int
    bytes_sent: int
    batches_sent: int
    perf: dict
    peak_in_flight: int = 0
    credit_budget: Optional[int] = None
    frames_shed: int = 0
    chaos: Optional[dict] = None

    def summary(self) -> str:
        return (
            f"live {self.algorithm}: {self.n_nodes} nodes, "
            f"{self.n_queries} queries, {self.n_tuples} tuples -> "
            f"{self.notifications_delivered} notifications, "
            f"{self.frames_sent} frames / {self.bytes_sent} bytes on the "
            f"wire, {self.traffic.hops} overlay hops, "
            f"digest {self.notification_digest[:12]}"
        )


class LiveCluster:
    """An N-node localhost ring running one engine over real sockets."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config if config is not None else ClusterConfig()
        self.network = ChordNetwork.build(self.config.n_nodes)
        self.engine = ContinuousQueryEngine(
            self.network,
            EngineConfig(
                algorithm=self.config.algorithm,
                seed=self.config.seed,
                **self.config.engine_overrides,
            ),
        )
        self.net_config = self.config.net
        self.stats = TrafficStats()
        self.in_flight = InFlight(budget=self.net_config.credit_budget)
        self.transport = SocketTransport(self)
        self.max_hops = self.network.router.max_hops
        self.peers: dict[int, NetPeer] = {}
        self.errors: list[Exception] = []
        #: Failures a *tolerant* drain absorbed instead of raising
        #: (chaos runs); inspectable after the fact.
        self.fault_log: list[Exception] = []
        #: Overlay identifiers of currently-crashed nodes; outbound
        #: writes toward them fail fast instead of timing out.
        self.dead: set[int] = set()
        #: Installed :class:`~repro.net.chaos.LiveChaos`, or ``None``.
        self.chaos = None
        self.crash_frame_losses = 0
        self.frames_written_off = 0
        self.codec_faults = 0
        self.stream_breaks = 0
        self._jitter_rng = random.Random(self.config.seed ^ 0x5EED)
        self._previous_transport = None

    # ------------------------------------------------------------------
    # Plumbing used by peers/transport
    # ------------------------------------------------------------------
    def peer_for(self, node) -> NetPeer:
        return self.peers[node.ident]

    def is_dead(self, ident: int) -> bool:
        return ident in self.dead

    def jittered(self, pause: float) -> float:
        """Stretch a retry pause by the configured jitter (seeded).

        With chaos installed the draw comes from the fault plan's own
        injector RNG (the satellite-1 contract: jitter is part of the
        seeded fault plan); otherwise from a cluster RNG derived from
        the run seed.  Zero jitter takes no draw at all, so the
        deterministic legacy backoff sequence is bit-identical.
        """
        if self.chaos is not None:
            return self.chaos.injector.jittered(pause)
        jitter = self.net_config.backoff_jitter
        if jitter <= 0.0 or pause <= 0.0:
            return pause
        return pause * (1.0 + self._jitter_rng.random() * jitter)

    def frame_failed(self, exc: Exception, labels) -> None:
        """A frame was lost for good; settle its deliveries and record."""
        self.errors.append(exc)
        self.stats.record_drop(
            getattr(exc, "message_type", labels[0] if labels else "frame")
        )
        for label in labels:
            self.in_flight.dec(label)

    def frame_lost(self, reason: str, labels) -> None:
        """A frame died *with* a crashed node — expected, not an error.

        Settles the in-flight credits so the cluster can quiesce; the
        lease refresh re-creates whatever the frame would have built.
        Unlike :meth:`frame_failed` this does not append to ``errors``:
        a crash announced through the chaos controller is part of the
        experiment, and tolerating it must not mask real failures.
        """
        self.stats.record_drop(labels[0] if labels else "frame")
        for label in labels:
            self.in_flight.dec(label)
        self.crash_frame_losses += 1

    def handler_failed(self, exc: Exception) -> None:
        self.errors.append(exc)

    def note_codec_fault(self, exc: Exception) -> None:
        """Corrupt bytes arrived on a connection (it was aborted)."""
        self.codec_faults += 1
        if self.chaos is None:
            # Without chaos installed nothing should ever garble a
            # frame; surface it on the next drain.
            self.errors.append(exc)

    def note_stream_break(self, exc: Exception) -> None:
        """A connection died mid-frame (truncation or peer crash)."""
        self.stream_breaks += 1
        if self.chaos is None:
            self.errors.append(exc)

    def fallback_ident(self, frame, failed_ident: int) -> Optional[int]:
        """Where a retry-exhausted routed frame should go instead.

        Mirrors the simulator Router's successor fallback: if the
        target is gone from the ring (crashed), the node now
        responsible for the frame's routing identifier owns its keys;
        if the target is still a ring member (mere unreachability,
        e.g. an asymmetric partition), its first live successor acts
        as a relay that can usually still reach it.  Direct and
        control frames have no overlay fallback — their state comes
        back through the lease refresh.
        """
        kind = type(frame)
        if kind is RouteFrame:
            route_ident = frame.target_ident
        elif kind is MultiFrame:
            route_ident = frame.pairs[0][0]
        else:
            return None
        try:
            node = self.network.node_at(failed_ident)
        except KeyError:
            node = None
        if node is None or not node.alive:
            owner = self.network.responsible_node(route_ident)
            return owner.ident if owner.ident != failed_ident else None
        for candidate in node.successor_list:
            if candidate.alive and candidate.ident != failed_ident:
                if self.is_dead(candidate.ident):
                    continue
                return candidate.ident
        return None

    def install_chaos(self, chaos) -> None:
        """Attach a :class:`~repro.net.chaos.LiveChaos` wire-fault layer.

        Must happen before :meth:`start`.  Also relaxes the in-flight
        ledger (``allow_slack``): a node crash can settle a frame as
        lost in the same instant its sender's write completes, and that
        benign double-settlement must not abort the experiment.
        """
        self.chaos = chaos
        self.in_flight.allow_slack = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind every peer, run the bootstrap handshake, go live."""
        nodes = self.network.nodes
        for node in nodes:
            peer = NetPeer(node, self)
            self.peers[node.ident] = peer
            await peer.start(self.config.host)
        bootstrap = self.peers[nodes[0].ident]
        for node in nodes[1:]:
            await self._join_via(self.peers[node.ident], bootstrap.info)
        await self.drain()  # flush the MemberUpdate broadcasts
        expected = len(nodes)
        for peer in self.peers.values():
            if len(peer.book) != expected:
                raise NetworkError(
                    f"peer {peer.node.ident} bootstrapped with "
                    f"{len(peer.book)}/{expected} addresses"
                )
        self._previous_transport = self.network.use_transport(self.transport)
        if self.config.health is not None:
            for peer in self.peers.values():
                peer.enable_health(self.config.health)

    async def _join_via(self, peer: NetPeer, bootstrap) -> None:
        """One joiner's handshake: JoinRequest over TCP, JoinReply back."""
        net = self.net_config
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(bootstrap.host, bootstrap.port),
            net.connect_timeout,
        )
        set_nodelay(writer, net.nodelay)
        try:
            writer.write(encode_frame(JoinRequest(info=peer.info)))
            await asyncio.wait_for(writer.drain(), net.io_timeout)
            reply = await read_frame(reader, timeout=net.io_timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover - teardown
                pass
        if not isinstance(reply, JoinReply):
            raise NetworkError(
                f"bootstrap answered a JoinRequest with "
                f"{type(reply).__name__}"
            )
        for info in reply.members:
            peer.book.setdefault(info.ident, info)

    async def crash_peer(self, node) -> Optional[NetPeer]:
        """Socket-side crash of ``node``: freeze, unpool, settle, hang up.

        The ring-side half (``network.fail`` + stabilization + key
        inheritance) is :meth:`repro.faults.recovery.ChaosHarness.crash`;
        the live chaos controller sequences the two.  Callers that
        crash a node directly (tests) must repair the ring themselves.
        """
        peer = self.peers.pop(node.ident, None)
        if peer is None:
            return None
        self.dead.add(node.ident)
        peer.freeze()
        await peer.abort()
        return peer

    async def restart_peer(self, node) -> NetPeer:
        """Socket-side restart: new server (new port), fresh bootstrap.

        ``node`` must already be back in the ring (``ChaosHarness.
        restart``).  The join handshake runs against any live peer;
        its MemberUpdate fan-out overwrites the dead address in every
        book, and stale pooled connections are reset on receipt.
        """
        self.dead.discard(node.ident)
        peer = NetPeer(node, self)
        self.peers[node.ident] = peer
        await peer.start(self.config.host)
        bootstrap = next(
            (
                existing
                for ident, existing in self.peers.items()
                if ident != node.ident and not existing.crashed
            ),
            None,
        )
        if bootstrap is None:  # pragma: no cover - defensive
            raise NetworkError("no live peer to bootstrap a restart from")
        await self._join_via(peer, bootstrap.info)
        if self.config.health is not None:
            peer.enable_health(self.config.health)
        return peer

    async def stop(self) -> None:
        """Close every peer; restore the simulator transport."""
        if self._previous_transport is not None:
            self.network.use_transport(self._previous_transport)
            self._previous_transport = None
        for peer in self.peers.values():
            await peer.stop()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    async def drain(self, *, tolerate_failures: bool = False) -> None:
        """Wait until every posted delivery has been handled.

        ``tolerate_failures`` is the chaos mode: a quiesce timeout
        writes the leaked credits off (arming matching debt) instead of
        raising, and collected delivery failures move to ``fault_log``
        instead of aborting the run — the lease refresh is responsible
        for healing whatever they broke.
        """
        try:
            await self.in_flight.wait_zero(self.config.quiesce_timeout)
        except QuiesceTimeout as exc:
            queues = {
                peer.node.ident: sum(
                    outbox.depth for outbox in peer._outboxes.values()
                )
                for peer in self.peers.values()
            }
            enriched = QuiesceTimeout(
                self.config.quiesce_timeout,
                exc.pending,
                {ident: depth for ident, depth in queues.items() if depth},
            )
            if not tolerate_failures:
                raise enriched from None
            self.fault_log.append(enriched)
            self.frames_written_off += sum(
                self.in_flight.write_off().values()
            )
        if self.errors:
            if tolerate_failures:
                self.fault_log.extend(self.errors)
                self.errors.clear()
                return
            first = self.errors[0]
            raise NetworkError(
                f"{len(self.errors)} delivery/handler failure(s); "
                f"first: {first!r}"
            ) from first

    async def run(self, workload: Workload, *, evict_every: int = 64) -> LiveReport:
        """Replay ``workload`` — the harness driver loop, one drain per event."""
        engine = self.engine
        rng = random.Random(self.config.seed)
        events_since_evict = 0
        for event in workload:
            await self.in_flight.wait_below_budget(self.config.quiesce_timeout)
            engine.clock.advance_to(event.time)
            origin = self.network.random_node(rng)
            if event.kind == "query":
                engine.subscribe(origin, event.payload)
            else:
                relation, values = event.payload
                engine.publish(origin, relation, values)
            await self.drain()
            events_since_evict += 1
            if (
                engine.config.window is not None
                and events_since_evict >= evict_every
            ):
                engine.evict_expired()
                events_since_evict = 0
        if engine.config.window is not None:
            engine.evict_expired()
        await self.drain()
        return self.report(workload)

    def report(self, workload: Workload) -> LiveReport:
        from ..bench.macro import notification_digest

        return LiveReport(
            algorithm=self.engine.config.algorithm,
            n_nodes=len(self.network),
            n_queries=workload.n_queries,
            n_tuples=workload.n_tuples,
            notifications_delivered=sum(
                len(batch) for batch in self.engine.delivered.values()
            ),
            notification_digest=notification_digest(self.engine),
            traffic=self.stats.snapshot(),
            frames_sent=sum(peer.frames_sent for peer in self.peers.values()),
            bytes_sent=sum(peer.bytes_sent for peer in self.peers.values()),
            batches_sent=sum(
                peer.batches_sent for peer in self.peers.values()
            ),
            perf=PERF.snapshot(),
            peak_in_flight=self.in_flight.peak,
            credit_budget=self.in_flight.budget,
            frames_shed=sum(peer.frames_shed for peer in self.peers.values()),
            chaos=self.chaos.snapshot() if self.chaos is not None else None,
        )


async def run_live(
    workload: Workload, config: Optional[ClusterConfig] = None
) -> LiveReport:
    """Start a cluster, replay ``workload``, always tear down."""
    cluster = LiveCluster(config)
    await cluster.start()
    try:
        return await cluster.run(workload)
    finally:
        await cluster.stop()


def simulate_reference(
    workload: Workload, *, algorithm: str, n_nodes: int, seed: int
) -> tuple[str, int]:
    """The simulator oracle: digest + delivery count for one workload."""
    from ..bench.harness import run_workload
    from ..bench.macro import notification_digest

    engine = ContinuousQueryEngine(
        ChordNetwork.build(n_nodes),
        EngineConfig(algorithm=algorithm, seed=seed),
    )
    result = run_workload(engine, workload, seed=seed)
    return notification_digest(engine), result.notifications_delivered


# ----------------------------------------------------------------------
# Command-line runner
# ----------------------------------------------------------------------

def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.cluster",
        description="Run a workload over a live localhost ring of "
        "asyncio peers (optionally checking it against the simulator).",
    )
    parser.add_argument(
        "--algorithm",
        default="sai",
        choices=("sai", "dai-q", "dai-t", "dai-v"),
        help="query-processing algorithm (default: sai)",
    )
    parser.add_argument("--nodes", type=int, default=8, help="ring size")
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--tuples", type=int, default=100)
    parser.add_argument("--domain-size", type=int, default=40)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="run the fault-tolerance soak instead: inject seeded "
        "connection faults, a partition episode and live "
        "crash/restarts while the workload replays.  SPEC is "
        "'default' or comma-separated key=value pairs "
        "(frame=0.05,connect=0.05,crashes=2,partition=1,seed=17,"
        "attempts=4,backoff=0.02,jitter=0.5,subscribers=2)",
    )
    parser.add_argument(
        "--compare-sim",
        action="store_true",
        help="also replay the workload in the simulator and fail unless "
        "the delivered-notification digests match exactly",
    )
    parser.add_argument(
        "--uvloop",
        action="store_true",
        help="use uvloop if installed (falls back to asyncio silently; "
        "REPRO_NET_UVLOOP=1 has the same effect)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    maybe_install_uvloop(True if args.uvloop else None)

    if args.chaos is not None:
        from .chaos import run_soak_cli

        return run_soak_cli(args)

    workload = build_workload(
        WorkloadParams(
            n_queries=args.queries,
            n_tuples=args.tuples,
            domain_size=args.domain_size,
            seed=args.seed,
        )
    )
    report = asyncio.run(
        run_live(
            workload,
            ClusterConfig(
                algorithm=args.algorithm, n_nodes=args.nodes, seed=args.seed
            ),
        )
    )

    payload = {
        "algorithm": report.algorithm,
        "n_nodes": report.n_nodes,
        "n_queries": report.n_queries,
        "n_tuples": report.n_tuples,
        "notifications_delivered": report.notifications_delivered,
        "notification_digest": report.notification_digest,
        "frames_sent": report.frames_sent,
        "bytes_sent": report.bytes_sent,
        "batches_sent": report.batches_sent,
        "overlay_hops": report.traffic.hops,
        "messages": report.traffic.messages,
        "peak_in_flight": report.peak_in_flight,
        "credit_budget": report.credit_budget,
        "perf": report.perf,
    }

    status = 0
    if args.compare_sim:
        sim_digest, sim_delivered = simulate_reference(
            workload,
            algorithm=args.algorithm,
            n_nodes=args.nodes,
            seed=args.seed,
        )
        matches = sim_digest == report.notification_digest
        payload["sim_digest"] = sim_digest
        payload["sim_notifications_delivered"] = sim_delivered
        payload["matches_simulator"] = matches
        status = 0 if matches else 1

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary())
        if args.compare_sim:
            verdict = "MATCH" if payload["matches_simulator"] else "MISMATCH"
            print(
                f"simulator digest {payload['sim_digest'][:12]} "
                f"({payload['sim_notifications_delivered']} notifications) "
                f"-> {verdict}"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
