"""Run the four algorithms over a live localhost ring.

:class:`LiveCluster` builds the same stable Chord ring the simulator
uses (``ChordNetwork.build``), gives every node a :class:`NetPeer` with
a real TCP server, runs the bootstrap handshake so every peer's address
book converges, swaps the network's transport for the
:class:`~repro.net.peer.SocketTransport`, and replays a
:class:`~repro.workload.generator.Workload` with exactly the harness's
seeded driver loop — same RNG stream, same clock advances, same
subscribe/publish calls.  Between workload events the driver awaits
cluster quiescence (the in-flight delivery counter reaching zero), so
an event's full causal cascade lands before the next event fires, just
as a simulator event's synchronous call tree completes before the next.

Because the notification digest is a *set* digest (sorted per query and
across queries), within-event frame reordering over TCP cannot change
it; a live run must therefore reproduce the simulator's digest exactly
for the same workload and seed.  That is the subsystem's correctness
gate, runnable from the command line::

    python -m repro.net.cluster --algorithm dai-v --nodes 8 \\
        --queries 30 --tuples 120 --compare-sim

which exits non-zero if the live digest differs from the simulator's.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
from dataclasses import dataclass, field
from typing import Optional

from ..chord.network import ChordNetwork
from ..core.engine import ContinuousQueryEngine, EngineConfig
from ..errors import NetworkError
from ..perf import PERF
from ..sim.stats import TrafficSnapshot, TrafficStats
from ..workload.generator import Workload, WorkloadParams, build_workload
from .codec import HEADER_SIZE, decode, decode_header, encode_frame
from .frames import JoinReply, JoinRequest
from .peer import InFlight, NetConfig, NetPeer, SocketTransport


@dataclass
class ClusterConfig:
    """Shape of a live cluster run."""

    algorithm: str = "sai"
    n_nodes: int = 8
    #: Engine *and* driver seed, exactly like the harness's ``seed``.
    seed: int = 1
    host: str = "127.0.0.1"
    #: Ceiling on waiting for one workload event's cascade to land.
    quiesce_timeout: float = 30.0
    #: Extra :class:`~repro.core.engine.EngineConfig` fields (window,
    #: replication_factor, ...).
    engine_overrides: dict = field(default_factory=dict)
    net: NetConfig = field(default_factory=NetConfig)


@dataclass
class LiveReport:
    """What a live run produced, for humans and for the sim comparison."""

    algorithm: str
    n_nodes: int
    n_queries: int
    n_tuples: int
    notifications_delivered: int
    notification_digest: str
    traffic: TrafficSnapshot
    frames_sent: int
    bytes_sent: int
    perf: dict

    def summary(self) -> str:
        return (
            f"live {self.algorithm}: {self.n_nodes} nodes, "
            f"{self.n_queries} queries, {self.n_tuples} tuples -> "
            f"{self.notifications_delivered} notifications, "
            f"{self.frames_sent} frames / {self.bytes_sent} bytes on the "
            f"wire, {self.traffic.hops} overlay hops, "
            f"digest {self.notification_digest[:12]}"
        )


class LiveCluster:
    """An N-node localhost ring running one engine over real sockets."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config if config is not None else ClusterConfig()
        self.network = ChordNetwork.build(self.config.n_nodes)
        self.engine = ContinuousQueryEngine(
            self.network,
            EngineConfig(
                algorithm=self.config.algorithm,
                seed=self.config.seed,
                **self.config.engine_overrides,
            ),
        )
        self.net_config = self.config.net
        self.stats = TrafficStats()
        self.in_flight = InFlight()
        self.transport = SocketTransport(self)
        self.max_hops = self.network.router.max_hops
        self.peers: dict[int, NetPeer] = {}
        self.errors: list[Exception] = []
        self._previous_transport = None

    # ------------------------------------------------------------------
    # Plumbing used by peers/transport
    # ------------------------------------------------------------------
    def peer_for(self, node) -> NetPeer:
        return self.peers[node.ident]

    def frame_failed(self, exc: Exception, weight: int) -> None:
        """A frame was lost for good; settle its deliveries and record."""
        self.errors.append(exc)
        self.stats.record_drop(getattr(exc, "message_type", "frame"))
        if weight:
            self.in_flight.dec(weight)

    def handler_failed(self, exc: Exception) -> None:
        self.errors.append(exc)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind every peer, run the bootstrap handshake, go live."""
        nodes = self.network.nodes
        for node in nodes:
            peer = NetPeer(node, self)
            self.peers[node.ident] = peer
            await peer.start(self.config.host)
        bootstrap = self.peers[nodes[0].ident]
        for node in nodes[1:]:
            await self._join_via(self.peers[node.ident], bootstrap.info)
        await self.drain()  # flush the MemberUpdate broadcasts
        expected = len(nodes)
        for peer in self.peers.values():
            if len(peer.book) != expected:
                raise NetworkError(
                    f"peer {peer.node.ident} bootstrapped with "
                    f"{len(peer.book)}/{expected} addresses"
                )
        self._previous_transport = self.network.use_transport(self.transport)

    async def _join_via(self, peer: NetPeer, bootstrap) -> None:
        """One joiner's handshake: JoinRequest over TCP, JoinReply back."""
        net = self.net_config
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(bootstrap.host, bootstrap.port),
            net.connect_timeout,
        )
        try:
            writer.write(encode_frame(JoinRequest(info=peer.info)))
            await asyncio.wait_for(writer.drain(), net.io_timeout)
            header = await asyncio.wait_for(
                reader.readexactly(HEADER_SIZE), net.io_timeout
            )
            payload = await asyncio.wait_for(
                reader.readexactly(decode_header(header)), net.io_timeout
            )
            reply = decode(payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover - teardown
                pass
        if not isinstance(reply, JoinReply):
            raise NetworkError(
                f"bootstrap answered a JoinRequest with "
                f"{type(reply).__name__}"
            )
        for info in reply.members:
            peer.book.setdefault(info.ident, info)

    async def stop(self) -> None:
        """Close every peer; restore the simulator transport."""
        if self._previous_transport is not None:
            self.network.use_transport(self._previous_transport)
            self._previous_transport = None
        for peer in self.peers.values():
            await peer.stop()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every posted delivery has been handled."""
        try:
            await self.in_flight.wait_zero(self.config.quiesce_timeout)
        except asyncio.TimeoutError:
            raise NetworkError(
                f"cluster failed to quiesce within "
                f"{self.config.quiesce_timeout}s; {self.in_flight.count} "
                f"deliveries still in flight"
            ) from None
        if self.errors:
            first = self.errors[0]
            raise NetworkError(
                f"{len(self.errors)} delivery/handler failure(s); "
                f"first: {first!r}"
            ) from first

    async def run(self, workload: Workload, *, evict_every: int = 64) -> LiveReport:
        """Replay ``workload`` — the harness driver loop, one drain per event."""
        engine = self.engine
        rng = random.Random(self.config.seed)
        events_since_evict = 0
        for event in workload:
            engine.clock.advance_to(event.time)
            origin = self.network.random_node(rng)
            if event.kind == "query":
                engine.subscribe(origin, event.payload)
            else:
                relation, values = event.payload
                engine.publish(origin, relation, values)
            await self.drain()
            events_since_evict += 1
            if (
                engine.config.window is not None
                and events_since_evict >= evict_every
            ):
                engine.evict_expired()
                events_since_evict = 0
        if engine.config.window is not None:
            engine.evict_expired()
        await self.drain()
        return self.report(workload)

    def report(self, workload: Workload) -> LiveReport:
        from ..bench.macro import notification_digest

        return LiveReport(
            algorithm=self.engine.config.algorithm,
            n_nodes=len(self.network),
            n_queries=workload.n_queries,
            n_tuples=workload.n_tuples,
            notifications_delivered=sum(
                len(batch) for batch in self.engine.delivered.values()
            ),
            notification_digest=notification_digest(self.engine),
            traffic=self.stats.snapshot(),
            frames_sent=sum(peer.frames_sent for peer in self.peers.values()),
            bytes_sent=sum(peer.bytes_sent for peer in self.peers.values()),
            perf=PERF.snapshot(),
        )


async def run_live(
    workload: Workload, config: Optional[ClusterConfig] = None
) -> LiveReport:
    """Start a cluster, replay ``workload``, always tear down."""
    cluster = LiveCluster(config)
    await cluster.start()
    try:
        return await cluster.run(workload)
    finally:
        await cluster.stop()


def simulate_reference(
    workload: Workload, *, algorithm: str, n_nodes: int, seed: int
) -> tuple[str, int]:
    """The simulator oracle: digest + delivery count for one workload."""
    from ..bench.harness import run_workload
    from ..bench.macro import notification_digest

    engine = ContinuousQueryEngine(
        ChordNetwork.build(n_nodes),
        EngineConfig(algorithm=algorithm, seed=seed),
    )
    result = run_workload(engine, workload, seed=seed)
    return notification_digest(engine), result.notifications_delivered


# ----------------------------------------------------------------------
# Command-line runner
# ----------------------------------------------------------------------

def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.cluster",
        description="Run a workload over a live localhost ring of "
        "asyncio peers (optionally checking it against the simulator).",
    )
    parser.add_argument(
        "--algorithm",
        default="sai",
        choices=("sai", "dai-q", "dai-t", "dai-v"),
        help="query-processing algorithm (default: sai)",
    )
    parser.add_argument("--nodes", type=int, default=8, help="ring size")
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--tuples", type=int, default=100)
    parser.add_argument("--domain-size", type=int, default=40)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--compare-sim",
        action="store_true",
        help="also replay the workload in the simulator and fail unless "
        "the delivered-notification digests match exactly",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    workload = build_workload(
        WorkloadParams(
            n_queries=args.queries,
            n_tuples=args.tuples,
            domain_size=args.domain_size,
            seed=args.seed,
        )
    )
    report = asyncio.run(
        run_live(
            workload,
            ClusterConfig(
                algorithm=args.algorithm, n_nodes=args.nodes, seed=args.seed
            ),
        )
    )

    payload = {
        "algorithm": report.algorithm,
        "n_nodes": report.n_nodes,
        "n_queries": report.n_queries,
        "n_tuples": report.n_tuples,
        "notifications_delivered": report.notifications_delivered,
        "notification_digest": report.notification_digest,
        "frames_sent": report.frames_sent,
        "bytes_sent": report.bytes_sent,
        "overlay_hops": report.traffic.hops,
        "messages": report.traffic.messages,
        "perf": report.perf,
    }

    status = 0
    if args.compare_sim:
        sim_digest, sim_delivered = simulate_reference(
            workload,
            algorithm=args.algorithm,
            n_nodes=args.nodes,
            seed=args.seed,
        )
        matches = sim_digest == report.notification_digest
        payload["sim_digest"] = sim_digest
        payload["sim_notifications_delivered"] = sim_delivered
        payload["matches_simulator"] = matches
        status = 0 if matches else 1

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary())
        if args.compare_sim:
            verdict = "MATCH" if payload["matches_simulator"] else "MISMATCH"
            print(
                f"simulator digest {payload['sim_digest'][:12]} "
                f"({payload['sim_notifications_delivered']} notifications) "
                f"-> {verdict}"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
