"""Versioned, length-prefixed binary wire codec for overlay messages.

Frame layout (all integers big-endian)::

    +-------+---------+------------------+---------------------+
    | magic | version | payload length   | payload             |
    | 2B    | 1B      | 4B unsigned      | <length> bytes      |
    +-------+---------+------------------+---------------------+

The magic is ``b"RJ"`` (repro-join); the version byte is
:data:`PROTOCOL_VERSION` and lets future revisions evolve the payload
format without ambiguity — a peer receiving an unknown version raises
:class:`~repro.errors.CodecError` instead of misparsing.

The payload is one *value* in a tagged, self-describing encoding:

* primitives — ``None``, booleans, arbitrary-precision integers
  (zigzag + LEB128 varint, large enough for 2**160 Chord identifiers),
  IEEE-754 doubles, UTF-8 strings, bytes;
* containers — tuples, lists, dicts (recursively encoded);
* records — every dataclass that can appear in a message: schema
  objects, tuples, expressions, queries, rewritten queries,
  notifications, the :mod:`repro.sim.messages` hierarchy and the
  :mod:`repro.net.frames` envelopes.  A record is its tag byte followed
  by its fields in declaration order, each encoded as a value.

Records are registered via :func:`register_record`, which derives the
encoder/decoder from a field list; payload classes round-trip through
their constructors, so schema validation (``__post_init__``) re-runs on
the receiving peer — a malformed frame fails loudly at decode time, not
deep inside a handler.

Python-specific caveats handled here:

* ``bool`` is a subclass of ``int`` — dispatch is on ``type(obj)``
  exactly, so ``True`` encodes as a boolean, never as ``1``;
* ``int`` and ``float`` encode distinctly even for equal values
  (``2 != 2.0`` on the wire) because identifier hashing stringifies
  values and ``str(2) != str(2.0)``;
* :class:`~repro.sql.schema.Relation` decoding interns through a small
  cache so every tuple of a relation shares one schema object per
  process — handlers and rewrite plans bind positional lookups to the
  relation *object* (see ``RewritePlan.bind_positions``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import operator
import struct
from typing import Any, Callable, Optional

from ..core.notifications import Notification
from ..errors import CodecError
from ..perf import PERF
from ..sim.messages import (
    ALIndexMessage,
    JoinMessage,
    Message,
    NotificationMessage,
    QueryIndexMessage,
    RateProbeMessage,
    UnsubscribeMessage,
    VLIndexMessage,
)
from ..sql.expr import AttrRef, BinaryOp, Const, Negate
from ..sql.query import (
    BoundValue,
    JoinQuery,
    LocalFilter,
    PendingAttr,
    QuerySide,
    RewrittenQuery,
    Subscriber,
)
from ..sql.schema import Relation
from ..sql.tuples import DataTuple, ProjectedTuple

#: Wire protocol version; bump when the payload encoding changes.
PROTOCOL_VERSION = 1

MAGIC = b"RJ"

_HEADER = struct.Struct(">2sBI")
HEADER_SIZE = _HEADER.size

#: Upper bound on a single frame's payload — a corrupt length prefix
#: must not make a peer try to buffer gigabytes.
MAX_PAYLOAD = 16 * 1024 * 1024

_DOUBLE = struct.Struct(">d")

# ----------------------------------------------------------------------
# Value tags
# ----------------------------------------------------------------------

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09

# Record tags: 0x10–0x1F payload records, 0x20–0x2F overlay messages,
# 0x30–0x3F net control frames (registered by repro.net.frames).
TAG_RELATION = 0x10
TAG_DATA_TUPLE = 0x11
TAG_PROJECTED_TUPLE = 0x12
TAG_CONST = 0x13
TAG_ATTR_REF = 0x14
TAG_BINARY_OP = 0x15
TAG_NEGATE = 0x16
TAG_LOCAL_FILTER = 0x17
TAG_QUERY_SIDE = 0x18
TAG_SUBSCRIBER = 0x19
TAG_JOIN_QUERY = 0x1A
TAG_BOUND_VALUE = 0x1B
TAG_PENDING_ATTR = 0x1C
TAG_REWRITTEN_QUERY = 0x1D
TAG_NOTIFICATION = 0x1E

TAG_MESSAGE = 0x20
TAG_QUERY_INDEX = 0x21
TAG_AL_INDEX = 0x22
TAG_VL_INDEX = 0x23
TAG_JOIN_MSG = 0x24
TAG_NOTIFICATION_MSG = 0x25
TAG_UNSUBSCRIBE = 0x26
TAG_RATE_PROBE = 0x27


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------

def _write_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint (7 bits per byte, msb = continuation)."""
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_int(out: bytearray, value: int) -> None:
    """Zigzag-mapped varint: small magnitudes of either sign stay small."""
    zigzag = value << 1 if value >= 0 else (-value << 1) - 1
    _write_uvarint(out, zigzag)


class _Reader:
    """Cursor over a payload with truncation-checked reads."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read_byte(self) -> int:
        try:
            byte = self.data[self.pos]
        except IndexError:
            raise CodecError("truncated frame: expected a tag byte") from None
        self.pos += 1
        return byte

    def read_bytes(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise CodecError(
                f"truncated frame: wanted {count} bytes, "
                f"{len(self.data) - self.pos} left"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def read_uvarint(self) -> int:
        # Fast path: almost every varint on the wire (collection
        # lengths, string lengths, small identifiers) fits one byte.
        data = self.data
        pos = self.pos
        try:
            byte = data[pos]
        except IndexError:
            raise CodecError("truncated frame: expected a varint") from None
        if byte < 0x80:
            self.pos = pos + 1
            return byte
        value = 0
        shift = 0
        while True:
            byte = self.read_byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def read_int(self) -> int:
        zigzag = self.read_uvarint()
        return zigzag >> 1 if not zigzag & 1 else -((zigzag + 1) >> 1)


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------

_ENCODERS: dict[type, Callable[[bytearray, Any], None]] = {}
_DECODERS: dict[int, Callable[[_Reader], Any]] = {}

#: Flat dispatch table mirroring ``_DECODERS``: indexing a 256-slot
#: list by the tag byte beats a dict probe on the hottest call in the
#: whole receive path (one lookup per decoded value).
_DECODER_TABLE: list[Optional[Callable[[_Reader], Any]]] = [None] * 256


def _set_decoder(tag: int, decoder: Callable[[_Reader], Any]) -> None:
    _DECODERS[tag] = decoder
    _DECODER_TABLE[tag] = decoder


#: Record tag -> field count, for structural skips that must step over
#: a record without building it (:func:`skip_value`).
_ARITY_BY_TAG: dict[int, int] = {}


def skip_value(data: bytes, pos: int) -> int:
    """Advance past one encoded value without materializing it.

    The structural twin of ``_decode_value``: every tag's body length
    is derivable from the bytes alone (varints self-terminate, blobs
    carry their length, containers and records their arity), so a
    relay can locate field boundaries inside a payload it never
    decodes.  Returns the position just past the value; raises
    :class:`CodecError` on truncation or an unknown tag.

    Iterative on purpose: skipping never needs the nesting structure,
    only the total count of values still to step over, so one pending
    counter replaces recursion (and its per-value call overhead) on
    what is the hottest loop of the relay path.
    """
    size = len(data)
    arity_by_tag = _ARITY_BY_TAG
    pending = 1
    while pending:
        pending -= 1
        if pos >= size:
            raise CodecError("truncated frame: expected a tag byte")
        tag = data[pos]
        pos += 1
        if tag <= _TAG_FALSE:  # none / true / false: the tag is the value
            continue
        if tag == _TAG_INT:
            while True:
                if pos >= size:
                    raise CodecError("truncated frame: expected a varint")
                byte = data[pos]
                pos += 1
                if byte < 0x80:
                    break
            continue
        if tag == _TAG_FLOAT:
            pos += 8
            if pos > size:
                raise CodecError("truncated frame: value body cut short")
            continue
        if tag == _TAG_STR or tag == _TAG_BYTES:
            length = 0
            shift = 0
            while True:
                if pos >= size:
                    raise CodecError("truncated frame: expected a varint")
                byte = data[pos]
                pos += 1
                length |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
            pos += length
            if pos > size:
                raise CodecError("truncated frame: value body cut short")
            continue
        if tag == _TAG_TUPLE or tag == _TAG_LIST or tag == _TAG_DICT:
            count = 0
            shift = 0
            while True:
                if pos >= size:
                    raise CodecError("truncated frame: expected a varint")
                byte = data[pos]
                pos += 1
                count |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
            pending += count * 2 if tag == _TAG_DICT else count
            continue
        arity = arity_by_tag.get(tag, -1)
        if arity < 0:
            raise CodecError(f"unknown value tag 0x{tag:02X}")
        pending += arity
    return pos

# Encode-side memoization (wire bytes are identical with or without it).
#
# Small values recur constantly on the hot path — relation and
# attribute names, message-type strings, query keys, Chord identifiers
# in a narrow band, tuple values from a bounded Zipf domain — so their
# fully-encoded forms (tag + varint length + body) are cached and
# appended with one ``bytearray.__iadd__`` instead of re-deriving them
# per frame.  Both caches are bounded: the int table is precomputed for
# the densest band, the string memo stops admitting entries at a fixed
# cap (hits keep working; misses just encode normally).

_STR_MEMO: dict[str, bytes] = {}
_STR_MEMO_MAX_LEN = 64
_STR_MEMO_MAX_ENTRIES = 4096


def _precompute_int_memo() -> dict[int, bytes]:
    table: dict[int, bytes] = {}
    for value in range(-128, 4097):
        scratch = bytearray((_TAG_INT,))
        _write_int(scratch, value)
        table[value] = bytes(scratch)
    return table


_INT_MEMO = _precompute_int_memo()


def _encode_value(out: bytearray, obj: Any) -> None:
    encoder = _ENCODERS.get(type(obj))
    if encoder is None:
        raise CodecError(f"cannot serialize {type(obj).__name__}: {obj!r}")
    encoder(out, obj)


def _decode_value(reader: _Reader) -> Any:
    pos = reader.pos
    try:
        tag = reader.data[pos]
    except IndexError:
        raise CodecError("truncated frame: expected a tag byte") from None
    reader.pos = pos + 1
    decoder = _DECODER_TABLE[tag]
    if decoder is None:
        raise CodecError(f"unknown value tag 0x{tag:02X}")
    return decoder(reader)


def _encode_none(out, obj):
    out.append(_TAG_NONE)


def _encode_bool(out, obj):
    out.append(_TAG_TRUE if obj else _TAG_FALSE)


def _encode_int(out, obj):
    memo = _INT_MEMO.get(obj)
    if memo is not None:
        out += memo
        return
    out.append(_TAG_INT)
    _write_int(out, obj)


def _encode_float(out, obj):
    out.append(_TAG_FLOAT)
    out += _DOUBLE.pack(obj)


def _encode_str(out, obj):
    memo = _STR_MEMO.get(obj)
    if memo is not None:
        out += memo
        return
    data = obj.encode("utf-8")
    length = len(data)
    if length < 0x80:
        encoded = bytes((_TAG_STR, length)) + data
    else:
        scratch = bytearray((_TAG_STR,))
        _write_uvarint(scratch, length)
        scratch += data
        encoded = bytes(scratch)
    out += encoded
    if length <= _STR_MEMO_MAX_LEN and len(_STR_MEMO) < _STR_MEMO_MAX_ENTRIES:
        _STR_MEMO[obj] = encoded


def _encode_bytes(out, obj):
    out.append(_TAG_BYTES)
    _write_uvarint(out, len(obj))
    out += obj


def _encode_tuple(out, obj):
    out.append(_TAG_TUPLE)
    _write_uvarint(out, len(obj))
    for item in obj:
        _encode_value(out, item)


def _encode_list(out, obj):
    out.append(_TAG_LIST)
    _write_uvarint(out, len(obj))
    for item in obj:
        _encode_value(out, item)


def _encode_dict(out, obj):
    out.append(_TAG_DICT)
    _write_uvarint(out, len(obj))
    for key, value in obj.items():
        _encode_value(out, key)
        _encode_value(out, value)


_ENCODERS[type(None)] = _encode_none
_ENCODERS[bool] = _encode_bool
_ENCODERS[int] = _encode_int
_ENCODERS[float] = _encode_float
_ENCODERS[str] = _encode_str
_ENCODERS[bytes] = _encode_bytes
_ENCODERS[tuple] = _encode_tuple
_ENCODERS[list] = _encode_list
_ENCODERS[dict] = _encode_dict

_set_decoder(_TAG_NONE, lambda reader: None)
_set_decoder(_TAG_TRUE, lambda reader: True)
_set_decoder(_TAG_FALSE, lambda reader: False)
_set_decoder(_TAG_INT, _Reader.read_int)
_set_decoder(
    _TAG_FLOAT, lambda reader: _DOUBLE.unpack(reader.read_bytes(8))[0]
)

#: Decode-side twin of ``_STR_MEMO``: raw utf-8 chunk -> the decoded
#: (and thereby interned) string, so the relation/attribute/message
#: names that appear in every frame skip ``bytes.decode`` and share
#: one str object process-wide.
_STR_DECODE_MEMO: dict[bytes, str] = {}


def _decode_str(reader: _Reader) -> str:
    length = reader.read_uvarint()
    chunk = reader.read_bytes(length)
    if length <= _STR_MEMO_MAX_LEN:
        cached = _STR_DECODE_MEMO.get(chunk)
        if cached is not None:
            return cached
        value = chunk.decode("utf-8")
        if len(_STR_DECODE_MEMO) < _STR_MEMO_MAX_ENTRIES:
            _STR_DECODE_MEMO[chunk] = value
        return value
    return chunk.decode("utf-8")


def _decode_bytes(reader: _Reader) -> bytes:
    return reader.read_bytes(reader.read_uvarint())


def _decode_tuple(reader: _Reader) -> tuple:
    # A list comprehension materialised into tuple() beats feeding a
    # generator to tuple() — no frame suspension per element.
    return tuple([_decode_value(reader) for _ in range(reader.read_uvarint())])


def _decode_list(reader: _Reader) -> list:
    return [_decode_value(reader) for _ in range(reader.read_uvarint())]


def _decode_dict(reader: _Reader) -> dict:
    return {
        _decode_value(reader): _decode_value(reader)
        for _ in range(reader.read_uvarint())
    }


_set_decoder(_TAG_STR, _decode_str)
_set_decoder(_TAG_BYTES, _decode_bytes)
_set_decoder(_TAG_TUPLE, _decode_tuple)
_set_decoder(_TAG_LIST, _decode_list)
_set_decoder(_TAG_DICT, _decode_dict)


# ----------------------------------------------------------------------
# Pre-PR codec emulation (benchmark baseline only)
# ----------------------------------------------------------------------
# The load generator's ``per_frame`` baseline reproduces the live path
# exactly as it existed before the throughput work, and the codec is
# the largest share of that path's CPU — so the baseline must also run
# the *seed* codec: no value memoisation, no buffer pool, dict (not
# table) decoder dispatch, generator-fed tuples, per-frame
# header+payload concatenation.  These are verbatim copies of the seed
# implementations; :func:`use_legacy_codec` swaps them in and out at
# runtime.  Wire bytes are identical in both modes (tests assert it) —
# only the work to produce and consume them differs.  Nothing outside
# benchmark baselines should ever enable this.

_LEGACY_CODEC = False

_READ_UVARINT_FAST = _Reader.read_uvarint
_DECODE_VALUE_FAST = _decode_value


def _encode_int_legacy(out, obj):
    out.append(_TAG_INT)
    _write_int(out, obj)


def _encode_str_legacy(out, obj):
    out.append(_TAG_STR)
    data = obj.encode("utf-8")
    _write_uvarint(out, len(data))
    out += data


def _decode_str_legacy(reader: _Reader) -> str:
    length = reader.read_uvarint()
    return reader.read_bytes(length).decode("utf-8")


def _decode_tuple_legacy(reader: _Reader) -> tuple:
    return tuple(_decode_value(reader) for _ in range(reader.read_uvarint()))


def _read_uvarint_legacy(self: _Reader) -> int:
    value = 0
    shift = 0
    while True:
        byte = self.read_byte()
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7


def _decode_value_legacy(reader: _Reader) -> Any:
    tag = reader.read_byte()
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown value tag 0x{tag:02X}")
    return decoder(reader)


def legacy_codec_active() -> bool:
    """True while :func:`use_legacy_codec` has the seed paths installed.

    The transport checks this to also disable its post-seed I/O fast
    paths (direct ``readexactly``, skipped no-op drains) so a baseline
    run reproduces the pre-PR behaviour end to end.
    """
    return _LEGACY_CODEC


def use_legacy_codec(enabled: bool) -> None:
    """Swap the hot codec paths for their seed (pre-PR) versions.

    Benchmark-baseline plumbing, not a feature: the load generator
    enables it around ``per_frame`` runs so the measured speedup is
    the whole PR, then always restores the fast paths.
    """
    global _LEGACY_CODEC, _decode_value
    if enabled == _LEGACY_CODEC:
        return
    _LEGACY_CODEC = enabled
    if enabled:
        _ENCODERS[int] = _encode_int_legacy
        _ENCODERS[str] = _encode_str_legacy
        _set_decoder(_TAG_STR, _decode_str_legacy)
        _set_decoder(_TAG_TUPLE, _decode_tuple_legacy)
        _Reader.read_uvarint = _read_uvarint_legacy
        _decode_value = _decode_value_legacy
        for cls, tag, _fast_enc, enc, _fast_dec, dec in _RECORD_CODECS:
            _ENCODERS[cls] = enc
            _set_decoder(tag, dec)
    else:
        _ENCODERS[int] = _encode_int
        _ENCODERS[str] = _encode_str
        _set_decoder(_TAG_STR, _decode_str)
        _set_decoder(_TAG_TUPLE, _decode_tuple)
        _Reader.read_uvarint = _READ_UVARINT_FAST
        _decode_value = _DECODE_VALUE_FAST
        for cls, tag, fast_enc, _enc, fast_dec, _dec in _RECORD_CODECS:
            _ENCODERS[cls] = fast_enc
            _set_decoder(tag, fast_dec)


# ----------------------------------------------------------------------
# Record registry
# ----------------------------------------------------------------------

#: Every registered record's codec variants, so
#: :func:`use_legacy_codec` can swap them wholesale:
#: ``(cls, tag, fast_encoder, seed_encoder, fast_decoder, seed_decoder)``.
_RECORD_CODECS: list[tuple] = []


def register_record(
    cls: type,
    tag: int,
    fields: tuple[str, ...],
    *,
    build: Optional[Callable[..., Any]] = None,
) -> None:
    """Register a dataclass-like record under a wire tag.

    ``fields`` are read with ``getattr`` at encode time and passed (in
    order, as keywords) to ``build`` — the class itself by default — at
    decode time.  A record is free to omit fields that must not travel
    (e.g. ``RateProbeMessage.reply_box``) by leaving them out of
    ``fields`` and letting the constructor default them.
    """
    if tag in _DECODERS:
        raise CodecError(f"wire tag 0x{tag:02X} registered twice")
    if type(cls) is not type:
        raise CodecError(f"record class expected, got {cls!r}")
    builder = build if build is not None else cls

    def encode_record(out: bytearray, obj: Any, _tag=tag, _fields=fields) -> None:
        out.append(_tag)
        for name in _fields:
            _encode_value(out, getattr(obj, name))

    def decode_record(reader: _Reader, _builder=builder, _fields=fields) -> Any:
        kwargs = {name: _decode_value(reader) for name in _fields}
        return _builder(**kwargs)

    # Fast variants (same bytes, same objects — less interpreter work):
    # one C-level attrgetter replaces the per-field getattr loop, and a
    # positional constructor call replaces the kwargs dict whenever the
    # wire fields are a declaration-order prefix of the dataclass (the
    # decoded-value list is already in that order).  The seed-faithful
    # closures above survive for :func:`use_legacy_codec`.
    if not fields:

        def encode_record_fast(
            out: bytearray, obj: Any, _tag=tag
        ) -> None:
            out.append(_tag)

    elif len(fields) == 1:

        def encode_record_fast(
            out: bytearray, obj: Any, _tag=tag,
            _get=operator.attrgetter(fields[0]),
        ) -> None:
            out.append(_tag)
            _encode_value(out, _get(obj))

    else:

        def encode_record_fast(
            out: bytearray, obj: Any, _tag=tag,
            _get=operator.attrgetter(*fields),
        ) -> None:
            out.append(_tag)
            for value in _get(obj):
                _encode_value(out, value)

    decode_record_fast = decode_record
    if build is None and dataclasses.is_dataclass(cls):
        declared = tuple(f.name for f in dataclasses.fields(cls))
        if declared[: len(fields)] == fields:

            def decode_record_fast(
                reader: _Reader, _builder=builder, _count=len(fields)
            ) -> Any:
                return _builder(
                    *[_decode_value(reader) for _ in range(_count)]
                )

    _RECORD_CODECS.append(
        (cls, tag, encode_record_fast, encode_record,
         decode_record_fast, decode_record)
    )
    if _LEGACY_CODEC:
        _ENCODERS[cls] = encode_record
        _set_decoder(tag, decode_record)
    else:
        _ENCODERS[cls] = encode_record_fast
        _set_decoder(tag, decode_record_fast)
    _ARITY_BY_TAG[tag] = len(fields)


# -- payload records ---------------------------------------------------

#: Decode-side intern cache: one ``Relation`` object per (name, attrs)
#: per process, so positional bindings (``Relation._positions`` lookups
#: cached on rewrite plans) stay hot across decoded tuples.
_RELATION_CACHE: dict[tuple[str, tuple[str, ...]], Relation] = {}


def _build_relation(*, name: str, attributes: tuple[str, ...]) -> Relation:
    key = (name, attributes)
    relation = _RELATION_CACHE.get(key)
    if relation is None:
        relation = Relation(name, attributes)
        _RELATION_CACHE[key] = relation
    return relation


register_record(Relation, TAG_RELATION, ("name", "attributes"), build=_build_relation)
register_record(DataTuple, TAG_DATA_TUPLE, ("relation", "values", "pub_time"))
register_record(
    ProjectedTuple, TAG_PROJECTED_TUPLE, ("relation_name", "items", "pub_time")
)
register_record(Const, TAG_CONST, ("value",))
register_record(AttrRef, TAG_ATTR_REF, ("relation", "attribute"))
register_record(BinaryOp, TAG_BINARY_OP, ("op", "left", "right"))
register_record(Negate, TAG_NEGATE, ("operand",))
register_record(LocalFilter, TAG_LOCAL_FILTER, ("attribute", "value"))
register_record(QuerySide, TAG_QUERY_SIDE, ("relation", "expr", "filters"))
register_record(Subscriber, TAG_SUBSCRIBER, ("key", "ident", "ip"))
register_record(
    JoinQuery,
    TAG_JOIN_QUERY,
    ("select", "left", "right", "key", "insertion_time", "subscriber"),
)
register_record(BoundValue, TAG_BOUND_VALUE, ("value",))
register_record(PendingAttr, TAG_PENDING_ATTR, ("attribute",))
register_record(
    RewrittenQuery,
    TAG_REWRITTEN_QUERY,
    (
        "key",
        "original_key",
        "group_signature",
        "subscriber",
        "insertion_time",
        "relation",
        "expr",
        "required_value",
        "dis_attribute",
        "dis_value",
        "filters",
        "select",
        "trigger_pub_time",
    ),
)
register_record(
    Notification,
    TAG_NOTIFICATION,
    (
        "query_key",
        "subscriber_ident",
        "row",
        "join_value_repr",
        "trigger_pub_time",
        "match_pub_time",
        "created_at",
    ),
)

# -- overlay messages --------------------------------------------------

register_record(Message, TAG_MESSAGE, ())
register_record(
    QueryIndexMessage,
    TAG_QUERY_INDEX,
    ("query", "index_side", "routing_ident", "refresh"),
)
register_record(
    ALIndexMessage, TAG_AL_INDEX, ("tuple", "index_attribute", "refresh")
)
register_record(
    VLIndexMessage, TAG_VL_INDEX, ("tuple", "index_attribute", "refresh")
)
register_record(JoinMessage, TAG_JOIN_MSG, ("rewritten", "projections"))
register_record(
    NotificationMessage,
    TAG_NOTIFICATION_MSG,
    ("notifications", "subscriber_ident"),
)
register_record(UnsubscribeMessage, TAG_UNSUBSCRIBE, ("query_key",))
# reply_box is a local mutable answer slot; it never travels.
register_record(RateProbeMessage, TAG_RATE_PROBE, ("relation", "attribute"))

#: Message wire tag -> its accounting ``type`` label, so a relay can
#: bill a raw-forwarded frame to the right traffic bucket without
#: decoding the message (see :func:`repro.net.frames.peek_route`).
MESSAGE_TYPE_BY_TAG: dict[int, str] = {
    TAG_MESSAGE: Message.type,
    TAG_QUERY_INDEX: QueryIndexMessage.type,
    TAG_AL_INDEX: ALIndexMessage.type,
    TAG_VL_INDEX: VLIndexMessage.type,
    TAG_JOIN_MSG: JoinMessage.type,
    TAG_NOTIFICATION_MSG: NotificationMessage.type,
    TAG_UNSUBSCRIBE: UnsubscribeMessage.type,
    TAG_RATE_PROBE: RateProbeMessage.type,
}


# ----------------------------------------------------------------------
# Public payload/frame API
# ----------------------------------------------------------------------

def encode(obj: Any) -> bytes:
    """Serialize one value/record/message to payload bytes (no header)."""
    out = bytearray()
    _encode_value(out, obj)
    return bytes(out)


def decode(payload: bytes) -> Any:
    """Inverse of :func:`encode`; raises :class:`CodecError` on junk."""
    reader = _Reader(payload)
    obj = _decode_value(reader)
    if reader.pos != len(payload):
        raise CodecError(
            f"{len(payload) - reader.pos} trailing bytes after payload"
        )
    return obj


def decode_value_at(data: bytes, pos: int) -> tuple[Any, int]:
    """Decode the single value starting at ``pos`` inside ``data``.

    Returns ``(value, end_position)``.  Lets a relay that located a
    field with :func:`skip_value` materialize just that field — e.g. a
    delivering multisend hop decoding only the pair messages it owns —
    without decoding the surrounding frame.
    """
    reader = _Reader(data)
    reader.pos = pos
    return _decode_value(reader), reader.pos


def frame_for_payload(payload: bytes) -> bytes:
    """Wrap already-encoded payload bytes in a wire header.

    The splice fast path builds payloads from verbatim slices of an
    inbound frame; this is the header step :func:`encode_frame` would
    have done had the payload been re-encoded.
    """
    if len(payload) > MAX_PAYLOAD:
        raise CodecError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD"
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, len(payload)) + payload


#: Free-list of scratch buffers for :func:`encode_frame`, so steady-
#: state frame encoding reuses ``bytearray`` objects instead of
#: allocating one per frame.  Process-local and deliberately tiny; a
#: buffer that grew beyond the cap is dropped rather than pooled.
_BUFFER_POOL: list[bytearray] = []
_BUFFER_POOL_MAX = 8
_BUFFER_POOL_CAP = 1 << 20

_HEADER_PLACEHOLDER = bytes(HEADER_SIZE)


def encode_frame_into(out: bytearray, obj: Any) -> int:
    """Append one complete wire frame for ``obj`` to ``out``.

    The header is reserved in place and patched once the payload
    length is known — header and payload share one buffer, so the
    per-frame ``header + payload`` concatenation (and its second
    allocation) never happens.  Returns the frame's size in bytes;
    the produced bytes are identical to :func:`encode_frame`.
    """
    start = len(out)
    out += _HEADER_PLACEHOLDER
    try:
        _encode_value(out, obj)
    except Exception:
        del out[start:]  # leave the caller's buffer frame-aligned
        raise
    length = len(out) - start - HEADER_SIZE
    if length > MAX_PAYLOAD:
        del out[start:]
        raise CodecError(f"payload of {length} bytes exceeds MAX_PAYLOAD")
    _HEADER.pack_into(out, start, MAGIC, PROTOCOL_VERSION, length)
    return HEADER_SIZE + length


def encode_frame(obj: Any) -> bytes:
    """Serialize ``obj`` to a complete wire frame (header + payload)."""
    if _LEGACY_CODEC:
        # The seed path: encode the payload to its own bytes object,
        # then concatenate the packed header in front (two allocations
        # and a copy per frame).
        payload = encode(obj)
        if len(payload) > MAX_PAYLOAD:
            raise CodecError(
                f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD"
            )
        return _HEADER.pack(MAGIC, PROTOCOL_VERSION, len(payload)) + payload
    perf = PERF.enabled
    buffer = _BUFFER_POOL.pop() if _BUFFER_POOL else bytearray()
    timer = PERF.timer("codec.encode") if perf else None
    if timer is not None:
        timer.__enter__()
    try:
        encode_frame_into(buffer, obj)
        frame = bytes(buffer)
    finally:
        if timer is not None:
            timer.__exit__(None, None, None)
        if (
            len(_BUFFER_POOL) < _BUFFER_POOL_MAX
            and len(buffer) <= _BUFFER_POOL_CAP
        ):
            del buffer[:]
            _BUFFER_POOL.append(buffer)
    if perf:
        PERF.count("codec.frames_encoded")
        PERF.count("codec.bytes_encoded", len(frame))
    return frame


def decode_header(header: bytes) -> int:
    """Validate a frame header and return the payload length."""
    if len(header) != HEADER_SIZE:
        raise CodecError(
            f"truncated header: {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise CodecError(
            f"unsupported protocol version {version} "
            f"(this peer speaks {PROTOCOL_VERSION})"
        )
    if length > MAX_PAYLOAD:
        raise CodecError(f"frame length {length} exceeds MAX_PAYLOAD")
    return length


async def read_frame_raw(
    reader, *, timeout: Optional[float] = None
) -> tuple[bytes, bytes]:
    """Read exactly one frame off an asyncio stream *without* decoding.

    Returns ``(header, payload)`` as raw bytes — the zero-copy-ish
    half of the receive path: a relay that only forwards the frame can
    ship these bytes onward verbatim and never pay for a decode (see
    :meth:`repro.net.peer.NetPeer._relay_raw`).  Error contract is
    identical to :func:`read_frame`: clean EOF at a frame boundary is
    :class:`EOFError`, death mid-frame is ``asyncio.
    IncompleteReadError``, a corrupt header is :class:`~repro.errors.
    CodecError`.
    """
    # ``wait_for`` wraps its awaitable in a fresh Task even with no
    # timeout — measurable per-frame overhead on the serve loop — so
    # the unbounded case awaits the stream read directly.  The legacy
    # flag restores the seed's unconditional wrapping, so the pre-PR
    # benchmark baseline pays the same per-read cost the seed did.
    fast = timeout is None and not _LEGACY_CODEC
    try:
        if fast:
            header = await reader.readexactly(HEADER_SIZE)
        else:
            header = await asyncio.wait_for(
                reader.readexactly(HEADER_SIZE), timeout
            )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed at a frame boundary") from None
        raise
    length = decode_header(header)
    if fast:
        payload = await reader.readexactly(length)
    else:
        payload = await asyncio.wait_for(reader.readexactly(length), timeout)
    return header, payload


def decode_frame_payload(payload: bytes) -> Any:
    """Decode one frame payload, with :func:`read_frame`'s accounting."""
    if not PERF.enabled:
        return decode(payload)
    with PERF.timer("codec.decode"):
        obj = decode(payload)
    PERF.count("codec.frames_decoded")
    PERF.count("codec.bytes_decoded", HEADER_SIZE + len(payload))
    return obj


async def read_frame(reader, *, timeout: Optional[float] = None) -> Any:
    """Read and decode exactly one frame from an asyncio stream reader.

    The single hardened entry point for streaming reads: a clean EOF at
    a frame boundary surfaces as :class:`EOFError`; a connection that
    dies mid-frame surfaces as ``asyncio.IncompleteReadError``; corrupt
    bytes (bad magic/version/length, undecodable payload) surface as
    :class:`~repro.errors.CodecError`.  Callers must treat ``CodecError``
    as fatal for the *connection* — the stream position is unknown after
    corrupt bytes, so the only safe recovery is to drop the connection
    and let the sender's retry path re-establish it.
    """
    _, payload = await read_frame_raw(reader, timeout=timeout)
    obj = decode_frame_payload(payload)
    return obj


def decode_frame(data: bytes) -> tuple[Any, int]:
    """Decode one frame from ``data``; returns ``(obj, bytes_consumed)``.

    ``data`` must contain at least one complete frame (streaming reads
    should use :func:`decode_header` + exact payload reads instead).
    """
    length = decode_header(data[:HEADER_SIZE])
    end = HEADER_SIZE + length
    if len(data) < end:
        raise CodecError(
            f"truncated frame: payload wants {length} bytes, "
            f"{len(data) - HEADER_SIZE} available"
        )
    return decode(data[HEADER_SIZE:end]), end
