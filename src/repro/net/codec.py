"""Versioned, length-prefixed binary wire codec for overlay messages.

Frame layout (all integers big-endian)::

    +-------+---------+------------------+---------------------+
    | magic | version | payload length   | payload             |
    | 2B    | 1B      | 4B unsigned      | <length> bytes      |
    +-------+---------+------------------+---------------------+

The magic is ``b"RJ"`` (repro-join); the version byte is
:data:`PROTOCOL_VERSION` and lets future revisions evolve the payload
format without ambiguity — a peer receiving an unknown version raises
:class:`~repro.errors.CodecError` instead of misparsing.

The payload is one *value* in a tagged, self-describing encoding:

* primitives — ``None``, booleans, arbitrary-precision integers
  (zigzag + LEB128 varint, large enough for 2**160 Chord identifiers),
  IEEE-754 doubles, UTF-8 strings, bytes;
* containers — tuples, lists, dicts (recursively encoded);
* records — every dataclass that can appear in a message: schema
  objects, tuples, expressions, queries, rewritten queries,
  notifications, the :mod:`repro.sim.messages` hierarchy and the
  :mod:`repro.net.frames` envelopes.  A record is its tag byte followed
  by its fields in declaration order, each encoded as a value.

Records are registered via :func:`register_record`, which derives the
encoder/decoder from a field list; payload classes round-trip through
their constructors, so schema validation (``__post_init__``) re-runs on
the receiving peer — a malformed frame fails loudly at decode time, not
deep inside a handler.

Python-specific caveats handled here:

* ``bool`` is a subclass of ``int`` — dispatch is on ``type(obj)``
  exactly, so ``True`` encodes as a boolean, never as ``1``;
* ``int`` and ``float`` encode distinctly even for equal values
  (``2 != 2.0`` on the wire) because identifier hashing stringifies
  values and ``str(2) != str(2.0)``;
* :class:`~repro.sql.schema.Relation` decoding interns through a small
  cache so every tuple of a relation shares one schema object per
  process — handlers and rewrite plans bind positional lookups to the
  relation *object* (see ``RewritePlan.bind_positions``).
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable, Optional

from ..core.notifications import Notification
from ..errors import CodecError
from ..sim.messages import (
    ALIndexMessage,
    JoinMessage,
    Message,
    NotificationMessage,
    QueryIndexMessage,
    RateProbeMessage,
    UnsubscribeMessage,
    VLIndexMessage,
)
from ..sql.expr import AttrRef, BinaryOp, Const, Negate
from ..sql.query import (
    BoundValue,
    JoinQuery,
    LocalFilter,
    PendingAttr,
    QuerySide,
    RewrittenQuery,
    Subscriber,
)
from ..sql.schema import Relation
from ..sql.tuples import DataTuple, ProjectedTuple

#: Wire protocol version; bump when the payload encoding changes.
PROTOCOL_VERSION = 1

MAGIC = b"RJ"

_HEADER = struct.Struct(">2sBI")
HEADER_SIZE = _HEADER.size

#: Upper bound on a single frame's payload — a corrupt length prefix
#: must not make a peer try to buffer gigabytes.
MAX_PAYLOAD = 16 * 1024 * 1024

_DOUBLE = struct.Struct(">d")

# ----------------------------------------------------------------------
# Value tags
# ----------------------------------------------------------------------

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09

# Record tags: 0x10–0x1F payload records, 0x20–0x2F overlay messages,
# 0x30–0x3F net control frames (registered by repro.net.frames).
TAG_RELATION = 0x10
TAG_DATA_TUPLE = 0x11
TAG_PROJECTED_TUPLE = 0x12
TAG_CONST = 0x13
TAG_ATTR_REF = 0x14
TAG_BINARY_OP = 0x15
TAG_NEGATE = 0x16
TAG_LOCAL_FILTER = 0x17
TAG_QUERY_SIDE = 0x18
TAG_SUBSCRIBER = 0x19
TAG_JOIN_QUERY = 0x1A
TAG_BOUND_VALUE = 0x1B
TAG_PENDING_ATTR = 0x1C
TAG_REWRITTEN_QUERY = 0x1D
TAG_NOTIFICATION = 0x1E

TAG_MESSAGE = 0x20
TAG_QUERY_INDEX = 0x21
TAG_AL_INDEX = 0x22
TAG_VL_INDEX = 0x23
TAG_JOIN_MSG = 0x24
TAG_NOTIFICATION_MSG = 0x25
TAG_UNSUBSCRIBE = 0x26
TAG_RATE_PROBE = 0x27


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------

def _write_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint (7 bits per byte, msb = continuation)."""
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_int(out: bytearray, value: int) -> None:
    """Zigzag-mapped varint: small magnitudes of either sign stay small."""
    zigzag = value << 1 if value >= 0 else (-value << 1) - 1
    _write_uvarint(out, zigzag)


class _Reader:
    """Cursor over a payload with truncation-checked reads."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read_byte(self) -> int:
        try:
            byte = self.data[self.pos]
        except IndexError:
            raise CodecError("truncated frame: expected a tag byte") from None
        self.pos += 1
        return byte

    def read_bytes(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise CodecError(
                f"truncated frame: wanted {count} bytes, "
                f"{len(self.data) - self.pos} left"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def read_uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.read_byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def read_int(self) -> int:
        zigzag = self.read_uvarint()
        return zigzag >> 1 if not zigzag & 1 else -((zigzag + 1) >> 1)


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------

_ENCODERS: dict[type, Callable[[bytearray, Any], None]] = {}
_DECODERS: dict[int, Callable[[_Reader], Any]] = {}


def _encode_value(out: bytearray, obj: Any) -> None:
    encoder = _ENCODERS.get(type(obj))
    if encoder is None:
        raise CodecError(f"cannot serialize {type(obj).__name__}: {obj!r}")
    encoder(out, obj)


def _decode_value(reader: _Reader) -> Any:
    tag = reader.read_byte()
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown value tag 0x{tag:02X}")
    return decoder(reader)


def _encode_none(out, obj):
    out.append(_TAG_NONE)


def _encode_bool(out, obj):
    out.append(_TAG_TRUE if obj else _TAG_FALSE)


def _encode_int(out, obj):
    out.append(_TAG_INT)
    _write_int(out, obj)


def _encode_float(out, obj):
    out.append(_TAG_FLOAT)
    out += _DOUBLE.pack(obj)


def _encode_str(out, obj):
    out.append(_TAG_STR)
    data = obj.encode("utf-8")
    _write_uvarint(out, len(data))
    out += data


def _encode_bytes(out, obj):
    out.append(_TAG_BYTES)
    _write_uvarint(out, len(obj))
    out += obj


def _encode_tuple(out, obj):
    out.append(_TAG_TUPLE)
    _write_uvarint(out, len(obj))
    for item in obj:
        _encode_value(out, item)


def _encode_list(out, obj):
    out.append(_TAG_LIST)
    _write_uvarint(out, len(obj))
    for item in obj:
        _encode_value(out, item)


def _encode_dict(out, obj):
    out.append(_TAG_DICT)
    _write_uvarint(out, len(obj))
    for key, value in obj.items():
        _encode_value(out, key)
        _encode_value(out, value)


_ENCODERS[type(None)] = _encode_none
_ENCODERS[bool] = _encode_bool
_ENCODERS[int] = _encode_int
_ENCODERS[float] = _encode_float
_ENCODERS[str] = _encode_str
_ENCODERS[bytes] = _encode_bytes
_ENCODERS[tuple] = _encode_tuple
_ENCODERS[list] = _encode_list
_ENCODERS[dict] = _encode_dict

_DECODERS[_TAG_NONE] = lambda reader: None
_DECODERS[_TAG_TRUE] = lambda reader: True
_DECODERS[_TAG_FALSE] = lambda reader: False
_DECODERS[_TAG_INT] = _Reader.read_int
_DECODERS[_TAG_FLOAT] = lambda reader: _DOUBLE.unpack(reader.read_bytes(8))[0]


def _decode_str(reader: _Reader) -> str:
    length = reader.read_uvarint()
    return reader.read_bytes(length).decode("utf-8")


def _decode_bytes(reader: _Reader) -> bytes:
    return reader.read_bytes(reader.read_uvarint())


def _decode_tuple(reader: _Reader) -> tuple:
    return tuple(_decode_value(reader) for _ in range(reader.read_uvarint()))


def _decode_list(reader: _Reader) -> list:
    return [_decode_value(reader) for _ in range(reader.read_uvarint())]


def _decode_dict(reader: _Reader) -> dict:
    return {
        _decode_value(reader): _decode_value(reader)
        for _ in range(reader.read_uvarint())
    }


_DECODERS[_TAG_STR] = _decode_str
_DECODERS[_TAG_BYTES] = _decode_bytes
_DECODERS[_TAG_TUPLE] = _decode_tuple
_DECODERS[_TAG_LIST] = _decode_list
_DECODERS[_TAG_DICT] = _decode_dict


# ----------------------------------------------------------------------
# Record registry
# ----------------------------------------------------------------------

def register_record(
    cls: type,
    tag: int,
    fields: tuple[str, ...],
    *,
    build: Optional[Callable[..., Any]] = None,
) -> None:
    """Register a dataclass-like record under a wire tag.

    ``fields`` are read with ``getattr`` at encode time and passed (in
    order, as keywords) to ``build`` — the class itself by default — at
    decode time.  A record is free to omit fields that must not travel
    (e.g. ``RateProbeMessage.reply_box``) by leaving them out of
    ``fields`` and letting the constructor default them.
    """
    if tag in _DECODERS:
        raise CodecError(f"wire tag 0x{tag:02X} registered twice")
    if type(cls) is not type:
        raise CodecError(f"record class expected, got {cls!r}")
    builder = build if build is not None else cls

    def encode_record(out: bytearray, obj: Any, _tag=tag, _fields=fields) -> None:
        out.append(_tag)
        for name in _fields:
            _encode_value(out, getattr(obj, name))

    def decode_record(reader: _Reader, _builder=builder, _fields=fields) -> Any:
        kwargs = {name: _decode_value(reader) for name in _fields}
        return _builder(**kwargs)

    _ENCODERS[cls] = encode_record
    _DECODERS[tag] = decode_record


# -- payload records ---------------------------------------------------

#: Decode-side intern cache: one ``Relation`` object per (name, attrs)
#: per process, so positional bindings (``Relation._positions`` lookups
#: cached on rewrite plans) stay hot across decoded tuples.
_RELATION_CACHE: dict[tuple[str, tuple[str, ...]], Relation] = {}


def _build_relation(*, name: str, attributes: tuple[str, ...]) -> Relation:
    key = (name, attributes)
    relation = _RELATION_CACHE.get(key)
    if relation is None:
        relation = Relation(name, attributes)
        _RELATION_CACHE[key] = relation
    return relation


register_record(Relation, TAG_RELATION, ("name", "attributes"), build=_build_relation)
register_record(DataTuple, TAG_DATA_TUPLE, ("relation", "values", "pub_time"))
register_record(
    ProjectedTuple, TAG_PROJECTED_TUPLE, ("relation_name", "items", "pub_time")
)
register_record(Const, TAG_CONST, ("value",))
register_record(AttrRef, TAG_ATTR_REF, ("relation", "attribute"))
register_record(BinaryOp, TAG_BINARY_OP, ("op", "left", "right"))
register_record(Negate, TAG_NEGATE, ("operand",))
register_record(LocalFilter, TAG_LOCAL_FILTER, ("attribute", "value"))
register_record(QuerySide, TAG_QUERY_SIDE, ("relation", "expr", "filters"))
register_record(Subscriber, TAG_SUBSCRIBER, ("key", "ident", "ip"))
register_record(
    JoinQuery,
    TAG_JOIN_QUERY,
    ("select", "left", "right", "key", "insertion_time", "subscriber"),
)
register_record(BoundValue, TAG_BOUND_VALUE, ("value",))
register_record(PendingAttr, TAG_PENDING_ATTR, ("attribute",))
register_record(
    RewrittenQuery,
    TAG_REWRITTEN_QUERY,
    (
        "key",
        "original_key",
        "group_signature",
        "subscriber",
        "insertion_time",
        "relation",
        "expr",
        "required_value",
        "dis_attribute",
        "dis_value",
        "filters",
        "select",
        "trigger_pub_time",
    ),
)
register_record(
    Notification,
    TAG_NOTIFICATION,
    (
        "query_key",
        "subscriber_ident",
        "row",
        "join_value_repr",
        "trigger_pub_time",
        "match_pub_time",
        "created_at",
    ),
)

# -- overlay messages --------------------------------------------------

register_record(Message, TAG_MESSAGE, ())
register_record(
    QueryIndexMessage,
    TAG_QUERY_INDEX,
    ("query", "index_side", "routing_ident", "refresh"),
)
register_record(
    ALIndexMessage, TAG_AL_INDEX, ("tuple", "index_attribute", "refresh")
)
register_record(
    VLIndexMessage, TAG_VL_INDEX, ("tuple", "index_attribute", "refresh")
)
register_record(JoinMessage, TAG_JOIN_MSG, ("rewritten", "projections"))
register_record(
    NotificationMessage,
    TAG_NOTIFICATION_MSG,
    ("notifications", "subscriber_ident"),
)
register_record(UnsubscribeMessage, TAG_UNSUBSCRIBE, ("query_key",))
# reply_box is a local mutable answer slot; it never travels.
register_record(RateProbeMessage, TAG_RATE_PROBE, ("relation", "attribute"))


# ----------------------------------------------------------------------
# Public payload/frame API
# ----------------------------------------------------------------------

def encode(obj: Any) -> bytes:
    """Serialize one value/record/message to payload bytes (no header)."""
    out = bytearray()
    _encode_value(out, obj)
    return bytes(out)


def decode(payload: bytes) -> Any:
    """Inverse of :func:`encode`; raises :class:`CodecError` on junk."""
    reader = _Reader(payload)
    obj = _decode_value(reader)
    if reader.pos != len(payload):
        raise CodecError(
            f"{len(payload) - reader.pos} trailing bytes after payload"
        )
    return obj


def encode_frame(obj: Any) -> bytes:
    """Serialize ``obj`` to a complete wire frame (header + payload)."""
    payload = encode(obj)
    if len(payload) > MAX_PAYLOAD:
        raise CodecError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD"
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, len(payload)) + payload


def decode_header(header: bytes) -> int:
    """Validate a frame header and return the payload length."""
    if len(header) != HEADER_SIZE:
        raise CodecError(
            f"truncated header: {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise CodecError(
            f"unsupported protocol version {version} "
            f"(this peer speaks {PROTOCOL_VERSION})"
        )
    if length > MAX_PAYLOAD:
        raise CodecError(f"frame length {length} exceeds MAX_PAYLOAD")
    return length


async def read_frame(reader, *, timeout: Optional[float] = None) -> Any:
    """Read and decode exactly one frame from an asyncio stream reader.

    The single hardened entry point for streaming reads: a clean EOF at
    a frame boundary surfaces as :class:`EOFError`; a connection that
    dies mid-frame surfaces as ``asyncio.IncompleteReadError``; corrupt
    bytes (bad magic/version/length, undecodable payload) surface as
    :class:`~repro.errors.CodecError`.  Callers must treat ``CodecError``
    as fatal for the *connection* — the stream position is unknown after
    corrupt bytes, so the only safe recovery is to drop the connection
    and let the sender's retry path re-establish it.
    """
    try:
        header = await asyncio.wait_for(
            reader.readexactly(HEADER_SIZE), timeout
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed at a frame boundary") from None
        raise
    payload = await asyncio.wait_for(
        reader.readexactly(decode_header(header)), timeout
    )
    return decode(payload)


def decode_frame(data: bytes) -> tuple[Any, int]:
    """Decode one frame from ``data``; returns ``(obj, bytes_consumed)``.

    ``data`` must contain at least one complete frame (streaming reads
    should use :func:`decode_header` + exact payload reads instead).
    """
    length = decode_header(data[:HEADER_SIZE])
    end = HEADER_SIZE + length
    if len(data) < end:
        raise CodecError(
            f"truncated frame: payload wants {length} bytes, "
            f"{len(data) - HEADER_SIZE} available"
        )
    return decode(data[HEADER_SIZE:end]), end
