"""Latency-gated live load generator (``python -m repro.net.loadgen``).

The cluster driver (:meth:`repro.net.cluster.LiveCluster.run`) proves
*correctness*: it drains the whole cluster after every workload event,
so each event's causal cascade lands before the next fires — faithful
to the simulator, and deliberately slow.  This module measures
*throughput*: the same seeded workload is pushed through the same live
cluster **pipelined**, gated only by the in-flight credit budget, while
every delivered notification is timestamped against the wall-clock
instant its triggering tuple was published.

What it records, per algorithm:

* **notifications/sec** and events/sec over the tuple-stream phase
  (monotonic clocks, installs excluded);
* **p50/p95/p99 end-to-end latency** — tuple publish to subscriber
  notification, measured at the moment the subscriber-side handler
  records the delivery.  A join answer needs *two* tuples; latency is
  measured from the publish of the **later** one (the publish that
  completed the answer), which is the instant the system could first
  have known it;
* wire/frame/batch counters and the delivered-notification digest.

Why pipelining cannot change the answers: the digest is a *set* digest
(:func:`repro.bench.macro.notification_digest`), queries are fully
installed (and drained) before the stream starts, and every tuple
carries its own ``pub_time``, so answer identity never depends on
arrival order.  One wrinkle remains: DAI-Q and DAI-T each disable one
of the two value-level match directions to keep notifications
exactly-once (see :mod:`repro.core.dai_base`), which makes a *pair*
race possible under pipelining — both tuples' one-shot probes can
overtake the other tuple's store, and the match is found by neither
side.  The drain-per-event driver serializes publishes and never hits
this; the pipelined driver closes it the way the paper's soft-state
model does, with one anti-entropy pass (``refresh_leases`` replays the
tuples, re-probing with full duplicate suppression) after the stream
drains.  The settle is timed separately and the handful of recovered
answers is reported.  ``--compare-sim`` asserts the resulting set is
digest-identical to the simulator oracle.

Two drive modes bracket this PR's work:

* ``per_frame`` — the **pre-PR live path**, reproduced faithfully:
  ``max_batch_frames=1`` (every frame pays its own ``write(); await
  drain()``), the drain-per-event driver (the only driver that
  existed before the load generator), no ``TCP_NODELAY``, and the
  seed codec (:func:`repro.net.codec.use_legacy_codec` — no memo
  tables, no buffer pool, per-frame header concatenation);
* ``batched`` — this PR's path: the outbox coalesces queued frames
  into multi-frame writes with one drain per batch, and the driver
  pipelines events up to the in-flight credit budget.

``--both`` measures the two back to back; the committed
``BENCH_net_seed.json`` stores both so the CI gate (``--compare``) can
demand that today's batched path never falls back to — or below — the
per-frame baseline, mirroring the macro-benchmark's wall-drift gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..workload.generator import Workload, WorkloadParams, build_workload
from .cluster import ClusterConfig, LiveCluster, simulate_reference
from .codec import use_legacy_codec
from .loop import loop_label, maybe_install_uvloop
from .peer import NetConfig

#: Algorithms measured by the committed baseline, in presentation order.
ALGORITHMS = ("sai", "dai-q", "dai-t", "dai-v")

#: Name recorded in the JSON so unrelated baselines never compare.
BASELINE_NAME = "net-loadgen-v1"

#: Allowed fractional wall regression of the batched path versus the
#: committed *per-frame* wall before the gate fails.  The per-frame
#: baseline is ≥2x slower than the batched path it gates, so — exactly
#: like the macro-benchmark gate — the alarm only sounds once the
#: entire batching speedup has been eaten back, and runner-speed
#: variance alone cannot trip it.
DEFAULT_THRESHOLD = 0.25

#: Latency percentiles reported, as fractions.
PERCENTILES = (0.50, 0.95, 0.99)


@dataclass
class LoadgenConfig:
    """Shape of one load-generator run."""

    algorithm: str = "sai"
    n_nodes: int = 4
    n_queries: int = 15
    n_tuples: int = 80
    domain_size: int = 40
    #: Zipf exponent of the generated values (the WorkloadParams
    #: default, so committed baselines are unaffected).
    zipf_s: float = 0.9
    seed: int = 1
    #: Pre-batching transport (``max_batch_frames=1``) when False.
    batched: bool = True
    #: Pipelined driver (credit-gated, no per-event drain) when True;
    #: the pre-PR drain-per-event driver when False.
    pipelined: bool = True
    #: Run the seed (pre-PR) codec paths — baseline measurement only.
    legacy_codec: bool = False
    #: Credit budget gating the pipelined driver; smaller = saner
    #: latency tails, larger = deeper pipelining.
    inflight_budget: int = 256
    #: Full cluster drain every N tuple events (0 = only at stream end).
    drain_every: int = 0
    quiesce_timeout: float = 60.0
    host: str = "127.0.0.1"
    engine_overrides: dict = field(default_factory=dict)

    def workload(self) -> Workload:
        return build_workload(
            WorkloadParams(
                n_queries=self.n_queries,
                n_tuples=self.n_tuples,
                domain_size=self.domain_size,
                zipf_s=self.zipf_s,
                seed=self.seed,
            )
        )

    def net_config(self) -> NetConfig:
        # The per-frame baseline also runs without TCP_NODELAY: the
        # pre-PR transport never set it, so its numbers include
        # Nagle's tax, exactly as the seed behaved.
        return NetConfig(
            credit_budget=self.inflight_budget,
            max_batch_frames=64 if self.batched else 1,
            nodelay=self.batched,
            raw_relay=self.batched,
        )


@dataclass
class LatencySummary:
    """Wall-clock publish-to-notification latency, in milliseconds."""

    samples: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float

    @classmethod
    def of(cls, seconds: list[float]) -> "LatencySummary":
        if not seconds:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(seconds)
        p50, p95, p99 = (_percentile(ordered, q) for q in PERCENTILES)
        return cls(
            samples=len(ordered),
            p50_ms=round(p50 * 1e3, 3),
            p95_ms=round(p95 * 1e3, 3),
            p99_ms=round(p99 * 1e3, 3),
            mean_ms=round(sum(ordered) / len(ordered) * 1e3, 3),
            max_ms=round(ordered[-1] * 1e3, 3),
        )

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
        }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of a sorted sample."""
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass
class LoadReport:
    """One algorithm's measured run."""

    algorithm: str
    batched: bool
    pipelined: bool
    n_nodes: int
    n_queries: int
    n_tuples: int
    seed: int
    install_seconds: float
    stream_seconds: float
    settle_seconds: float
    notifications: int
    recovered_notifications: int
    notifications_per_sec: float
    events_per_sec: float
    frames_sent: int
    bytes_sent: int
    batches_sent: int
    frames_shed: int
    peak_in_flight: int
    digest: str
    latency: LatencySummary

    def mode(self) -> str:
        if self.batched and self.pipelined:
            return "batched"
        if not self.batched and not self.pipelined:
            return "per_frame"
        return "mixed"

    def as_dict(self) -> dict:
        return {
            "wall_seconds": round(self.stream_seconds, 4),
            "install_seconds": round(self.install_seconds, 4),
            "settle_seconds": round(self.settle_seconds, 4),
            "recovered_notifications": self.recovered_notifications,
            "notifications_per_sec": round(self.notifications_per_sec, 1),
            "events_per_sec": round(self.events_per_sec, 1),
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "batches_sent": self.batches_sent,
            "frames_shed": self.frames_shed,
            "peak_in_flight": self.peak_in_flight,
            "latency_ms": self.latency.as_dict(),
        }

    def to_row(self) -> dict:
        """Stable JSON-safe dict shared with the :mod:`repro.expdb`
        writer: the invariant answer-set columns under the same names
        as the simulator rows, the live-only measurements nested."""
        from ..bench.rows import ROW_VERSION

        return {
            "row_version": ROW_VERSION,
            "kind": "live",
            "notifications_delivered": self.notifications,
            "notification_digest": self.digest,
            "mode": self.mode(),
            "live": self.as_dict(),
        }

    def summary(self) -> str:
        lat = self.latency
        return (
            f"{self.algorithm:6s} [{self.mode():9s}] "
            f"{self.notifications_per_sec:9.1f} notif/s  "
            f"{self.events_per_sec:8.1f} events/s  "
            f"p50 {lat.p50_ms:7.2f}ms  p95 {lat.p95_ms:7.2f}ms  "
            f"p99 {lat.p99_ms:7.2f}ms  "
            f"({self.notifications} notifications, "
            f"{self.frames_sent} frames, {self.batches_sent} batches, "
            f"{self.stream_seconds:.3f}s)"
        )


async def run_load(config: LoadgenConfig) -> LoadReport:
    """Drive one pipelined load run; returns the measured report."""
    workload = config.workload()
    cluster = LiveCluster(
        ClusterConfig(
            algorithm=config.algorithm,
            n_nodes=config.n_nodes,
            seed=config.seed,
            host=config.host,
            quiesce_timeout=config.quiesce_timeout,
            engine_overrides=dict(config.engine_overrides),
            net=config.net_config(),
        )
    )
    use_legacy_codec(config.legacy_codec)
    try:
        await cluster.start()
        try:
            return await _drive(cluster, workload, config)
        finally:
            await cluster.stop()
    finally:
        use_legacy_codec(False)


async def _drive(
    cluster: LiveCluster, workload: Workload, config: LoadgenConfig
) -> LoadReport:
    engine = cluster.engine
    rng = random.Random(config.seed)
    clock = time.perf_counter

    query_events = [event for event in workload if event.kind == "query"]
    tuple_events = [event for event in workload if event.kind == "tuple"]

    # Publish wall times by sim pub_time; a notification's latency is
    # measured from the *later* of its two contributing publishes.
    publish_wall: dict[float, float] = {}
    latencies: list[float] = []

    def on_notification(notification) -> None:
        started = publish_wall.get(
            max(
                notification.trigger_pub_time, notification.match_pub_time
            )
        )
        if started is not None:
            latencies.append(clock() - started)

    # Pre-PR emulation quiesces after every event; the pipelined
    # driver only drains every ``drain_every`` events (0 = stream end).
    drain_every = config.drain_every if config.pipelined else 1

    # -- install phase: queries land (and drain) before the stream -----
    install_start = clock()
    for event in query_events:
        await cluster.in_flight.wait_below_budget(config.quiesce_timeout)
        engine.clock.advance_to(event.time)
        origin = cluster.network.random_node(rng)
        bound = engine.subscribe(origin, event.payload)
        engine.add_notification_listener(bound.key, on_notification)
        if drain_every == 1:
            await cluster.drain()
    await cluster.drain()
    install_seconds = clock() - install_start

    # -- stream phase: the measured tuple stream ------------------------
    stream_start = clock()
    since_drain = 0
    for event in tuple_events:
        await cluster.in_flight.wait_below_budget(config.quiesce_timeout)
        engine.clock.advance_to(event.time)
        origin = cluster.network.random_node(rng)
        relation, values = event.payload
        publish_wall[event.time] = clock()
        engine.publish(origin, relation, values)
        if drain_every > 0:
            since_drain += 1
            if since_drain >= drain_every:
                await cluster.drain()
                since_drain = 0
    await cluster.drain()
    stream_seconds = clock() - stream_start

    stream_notifications = sum(
        len(batch) for batch in engine.delivered.values()
    )

    # -- settle phase: one anti-entropy pass closes pipeline races ------
    # DAI-Q/DAI-T probe each value node exactly once per pair side, so
    # two pipelined publishes can both probe before the other's store
    # lands and the answer is created by neither.  Replaying the soft
    # state (the paper's lease/republish model) re-probes with full
    # duplicate suppression: raced pairs surface, everything else is a
    # no-op.  The drain-per-event driver cannot race, so the per-frame
    # baseline skips the settle and its digest is unaffected.
    settle_seconds = 0.0
    if config.pipelined:
        settle_start = clock()
        for _, replay in engine.lease_refresh_steps():
            await cluster.in_flight.wait_below_budget(config.quiesce_timeout)
            replay()
        await cluster.drain()
        settle_seconds = clock() - settle_start

    from ..bench.macro import notification_digest

    notifications = sum(len(batch) for batch in engine.delivered.values())
    peers = cluster.peers.values()
    return LoadReport(
        algorithm=config.algorithm,
        batched=config.batched,
        pipelined=config.pipelined,
        n_nodes=config.n_nodes,
        n_queries=workload.n_queries,
        n_tuples=workload.n_tuples,
        seed=config.seed,
        install_seconds=install_seconds,
        stream_seconds=stream_seconds,
        settle_seconds=settle_seconds,
        notifications=notifications,
        recovered_notifications=notifications - stream_notifications,
        notifications_per_sec=(
            stream_notifications / stream_seconds if stream_seconds > 0 else 0.0
        ),
        events_per_sec=(
            len(tuple_events) / stream_seconds if stream_seconds > 0 else 0.0
        ),
        frames_sent=sum(peer.frames_sent for peer in peers),
        bytes_sent=sum(peer.bytes_sent for peer in peers),
        batches_sent=sum(peer.batches_sent for peer in peers),
        frames_shed=sum(peer.frames_shed for peer in peers),
        peak_in_flight=cluster.in_flight.peak,
        digest=notification_digest(engine),
        latency=LatencySummary.of(latencies),
    )


def run_load_sync(config: LoadgenConfig) -> LoadReport:
    """:func:`run_load` under ``asyncio.run`` (convenience for tests)."""
    return asyncio.run(run_load(config))


# ----------------------------------------------------------------------
# Baseline reports and the CI gate
# ----------------------------------------------------------------------

def build_report(
    point: LoadgenConfig,
    *,
    algorithms: Sequence[str] = ALGORITHMS,
    modes: Sequence[str] = ("batched",),
    check_sim: bool = False,
    repeats: int = 1,
) -> dict:
    """Measure ``algorithms`` x ``modes`` at one point; returns the
    JSON-ready report (the ``BENCH_net_seed.json`` shape).

    ``repeats`` runs each (algorithm, mode) cell that many times and
    keeps the fastest stream wall — live localhost runs are noisy, and
    best-of-N measures the code, not the machine's mood (same policy
    as the micro-benchmark harness).  With ``check_sim`` every measured
    digest is additionally compared against the simulator oracle; a
    mismatch raises ``RuntimeError`` (throughput work must never
    change semantics).
    """
    entries: dict[str, dict] = {}
    for algorithm in algorithms:
        entry: dict = {}
        digest: Optional[str] = None
        for mode in modes:
            config = LoadgenConfig(
                **{
                    **point.__dict__,
                    "algorithm": algorithm,
                    "batched": mode == "batched",
                    "pipelined": mode == "batched",
                    "legacy_codec": mode != "batched",
                }
            )
            report = run_load_sync(config)
            for _ in range(max(0, repeats - 1)):
                candidate = run_load_sync(config)
                if candidate.digest != report.digest:
                    raise RuntimeError(
                        f"{algorithm}: repeated {mode} runs disagree on "
                        f"the notification digest — the live path is "
                        f"not deterministic"
                    )
                if candidate.stream_seconds < report.stream_seconds:
                    report = candidate
            entry[mode] = report.as_dict()
            entry["notifications"] = report.notifications
            if digest is None:
                digest = report.digest
            elif digest != report.digest:
                raise RuntimeError(
                    f"{algorithm}: per-frame and batched runs disagree "
                    f"on the notification digest — batching changed "
                    f"semantics"
                )
        entry["digest"] = digest
        if check_sim:
            sim_digest, sim_delivered = simulate_reference(
                point.workload(),
                algorithm=algorithm,
                n_nodes=point.n_nodes,
                seed=point.seed,
            )
            entry["sim_digest"] = sim_digest
            if sim_digest != digest:
                raise RuntimeError(
                    f"{algorithm}: live loadgen digest {digest[:12]} != "
                    f"simulator digest {sim_digest[:12]}"
                )
            if sim_delivered != entry["notifications"]:
                raise RuntimeError(
                    f"{algorithm}: live delivered {entry['notifications']} "
                    f"!= simulator {sim_delivered}"
                )
        if "per_frame" in entry and "batched" in entry:
            per_frame = entry["per_frame"]["notifications_per_sec"]
            batched = entry["batched"]["notifications_per_sec"]
            if per_frame > 0:
                entry["batched_speedup"] = round(batched / per_frame, 2)
        entries[algorithm] = entry
    return {
        "name": BASELINE_NAME,
        "point": {
            "n_nodes": point.n_nodes,
            "n_queries": point.n_queries,
            "n_tuples": point.n_tuples,
            "domain_size": point.domain_size,
            "seed": point.seed,
            "inflight_budget": point.inflight_budget,
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "loop": loop_label(),
        "algorithms": entries,
    }


def compare_reports(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Gate ``current`` against a committed baseline; [] means green.

    Semantics gate: every algorithm's digest must match the baseline's
    exactly (the workload point and seed are pinned, so the digest is
    machine-independent).  Drift gate: the current batched wall may not
    exceed the baseline's **per-frame** wall by more than ``threshold``
    — i.e. the gate trips only once the entire batching speedup has
    regressed away, mirroring the macro-benchmark gate's headroom.
    """
    problems: list[str] = []
    if current.get("name") != baseline.get("name"):
        problems.append(
            f"benchmark mismatch: {current.get('name')!r} vs "
            f"{baseline.get('name')!r} — refusing to compare"
        )
        return problems
    if current.get("point") != baseline.get("point"):
        problems.append(
            "workload point mismatch — baselines are only comparable on "
            "the identical seeded point"
        )
        return problems
    for algorithm, base_entry in baseline.get("algorithms", {}).items():
        entry = current.get("algorithms", {}).get(algorithm)
        if entry is None:
            problems.append(f"algorithm {algorithm!r} missing from current run")
            continue
        if entry.get("digest") != base_entry.get("digest"):
            problems.append(
                f"{algorithm}: notification digest changed: "
                f"{base_entry.get('digest')!r} -> {entry.get('digest')!r} "
                f"— the live path no longer reproduces the recorded "
                f"answer set"
            )
        if entry.get("notifications") != base_entry.get("notifications"):
            problems.append(
                f"{algorithm}: delivered notification count changed: "
                f"{base_entry.get('notifications')} -> "
                f"{entry.get('notifications')}"
            )
        reference = base_entry.get("per_frame") or base_entry.get("batched")
        measured = entry.get("batched") or entry.get("per_frame")
        if not reference or not measured:
            continue
        budget = reference["wall_seconds"] * (1.0 + threshold)
        if measured["wall_seconds"] > budget:
            problems.append(
                f"{algorithm}: throughput regression: batched stream "
                f"took {measured['wall_seconds']:.3f}s > per-frame "
                f"baseline {reference['wall_seconds']:.3f}s * "
                f"(1 + {threshold:.0%}) = {budget:.3f}s"
            )
    return problems


# ----------------------------------------------------------------------
# Command line
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.loadgen",
        description="Pipelined live-cluster load generator: "
        "notifications/sec + p50/p95/p99 latency per algorithm, with "
        "an optional digest/throughput gate against a committed "
        "baseline (BENCH_net_seed.json).",
    )
    parser.add_argument(
        "--algorithms",
        default="all",
        help="comma-separated subset of sai,dai-q,dai-t,dai-v or 'all'",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--domain-size", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--inflight-budget",
        type=int,
        default=None,
        help="credit budget gating the pipelined driver (default 256)",
    )
    parser.add_argument(
        "--per-frame",
        action="store_true",
        help="measure only the pre-PR path (per-frame drains, "
        "drain-per-event driver)",
    )
    parser.add_argument(
        "--both",
        action="store_true",
        help="measure per-frame AND batched (baseline generation)",
    )
    parser.add_argument(
        "--compare-sim",
        action="store_true",
        help="fail unless every live digest matches the simulator's",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="gate digests and throughput drift against a committed "
        "baseline JSON; its recorded point supplies any unset "
        "point parameters",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional wall drift vs the per-frame baseline "
        "(default 0.25)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH", help="write the report JSON"
    )
    parser.add_argument(
        "--uvloop",
        action="store_true",
        help="use uvloop if installed (falls back to asyncio silently)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="best-of-N stream walls per (algorithm, mode) cell "
        "(default 1; baseline generation should use 3+)",
    )
    parser.add_argument("--json", action="store_true", help="print raw JSON")
    args = parser.parse_args(argv)

    maybe_install_uvloop(True if args.uvloop else None)

    baseline = None
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    defaults = LoadgenConfig()
    base_point = (baseline or {}).get("point", {})

    def pick(cli_value, key, fallback):
        if cli_value is not None:
            return cli_value
        if key in base_point:
            return base_point[key]
        return fallback

    point = LoadgenConfig(
        n_nodes=pick(args.nodes, "n_nodes", defaults.n_nodes),
        n_queries=pick(args.queries, "n_queries", defaults.n_queries),
        n_tuples=pick(args.tuples, "n_tuples", defaults.n_tuples),
        domain_size=pick(
            args.domain_size, "domain_size", defaults.domain_size
        ),
        seed=pick(args.seed, "seed", defaults.seed),
        inflight_budget=pick(
            args.inflight_budget, "inflight_budget", defaults.inflight_budget
        ),
    )

    if args.algorithms.strip().lower() == "all":
        algorithms: Sequence[str] = ALGORITHMS
    else:
        algorithms = tuple(
            name.strip() for name in args.algorithms.split(",") if name.strip()
        )
        unknown = set(algorithms) - set(ALGORITHMS)
        if unknown:
            parser.error(f"unknown algorithm(s): {sorted(unknown)}")

    if args.both:
        modes: Sequence[str] = ("per_frame", "batched")
    elif args.per_frame:
        modes = ("per_frame",)
    else:
        modes = ("batched",)

    try:
        report = build_report(
            point,
            algorithms=algorithms,
            modes=modes,
            check_sim=args.compare_sim,
            repeats=max(1, args.repeats),
        )
    except RuntimeError as exc:
        print(f"LOADGEN FAIL: {exc}", file=sys.stderr)
        return 1

    rendered = json.dumps(report, indent=2, sort_keys=False)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.json:
        print(rendered)
    else:
        for algorithm, entry in report["algorithms"].items():
            for mode in ("per_frame", "batched"):
                stats = entry.get(mode)
                if not stats:
                    continue
                lat = stats["latency_ms"]
                print(
                    f"{algorithm:6s} [{mode:9s}] "
                    f"{stats['notifications_per_sec']:9.1f} notif/s  "
                    f"p50 {lat['p50_ms']:7.2f}ms  "
                    f"p95 {lat['p95_ms']:7.2f}ms  "
                    f"p99 {lat['p99_ms']:7.2f}ms  "
                    f"({stats['wall_seconds']:.3f}s stream, "
                    f"{stats['frames_sent']} frames, "
                    f"{stats['batches_sent']} batches)"
                )
            if "batched_speedup" in entry:
                print(
                    f"{algorithm:6s} batched speedup vs per-frame: "
                    f"{entry['batched_speedup']:.2f}x"
                )

    if baseline is not None:
        problems = compare_reports(report, baseline, args.threshold)
        if problems:
            for problem in problems:
                print(f"NET PERF GATE FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            "net perf gate: OK (digests identical, wall within budget)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
