"""Heartbeat-based failure detection for live peers.

Every peer with health enabled runs one :class:`FailureDetector`: a
periodic task that (a) sends a weightless :class:`~repro.net.frames.
Heartbeat` frame to every peer in its address book and (b) checks how
long ago it last *heard* from each of them.  "Heard" means any of: a
heartbeat frame arrived from that peer, a frame write to that peer
succeeded, or a reconnection probe reached its server.  A peer that has
been silent longer than ``suspicion_timeout`` — or whose writes failed
``failure_threshold`` times in a row — becomes **suspect**:

* routing stops using it as a forwarding hop (the next-hop rule falls
  back to the successor, exactly like the simulator's
  :class:`~repro.chord.routing.Router` treats a dead finger);
* a probe task starts re-dialing its server with jittered exponential
  backoff (jitter seeded from the fault plan's RNG when chaos is
  installed) until a connect succeeds, at which point the peer is
  restored and pooled connections re-establish lazily on the next
  write.

Because heartbeats are one-way, an *asymmetric* partition is detected
on exactly the side that matters: if A can no longer reach B, B stops
hearing A's heartbeats and suspects A, while A learns the same from its
own failing writes toward B.

Detection is advisory, never authoritative: a suspect peer's frames are
still retried (a false suspicion costs only a detour through the
successor), and the definitive state — membership, key ownership —
stays with the ring and its stabilization protocol.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .codec import encode_frame
from .frames import Heartbeat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .peer import NetPeer

#: Detector states for one remote peer.
ALIVE = "alive"
SUSPECT = "suspect"


@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the per-peer failure detector.

    The defaults are tuned for localhost test clusters (tens of
    milliseconds); a WAN deployment would scale every field up
    together.
    """

    #: Period of the heartbeat/suspicion-check loop.
    heartbeat_interval: float = 0.05
    #: Silence longer than this marks a peer suspect.
    suspicion_timeout: float = 0.3
    #: Consecutive write failures that mark a peer suspect immediately.
    failure_threshold: int = 2
    #: First reconnection-probe pause; doubles per failed probe.
    probe_backoff_base: float = 0.05
    #: Ceiling on the probe pause.
    probe_backoff_max: float = 1.0
    #: Per-probe connect timeout.
    probe_timeout: float = 1.0

    def __post_init__(self):
        if self.heartbeat_interval <= 0 or self.suspicion_timeout <= 0:
            raise ValueError("heartbeat_interval/suspicion_timeout must be > 0")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")


class FailureDetector:
    """One peer's view of which neighbours are alive.

    Owned by a :class:`~repro.net.peer.NetPeer`; all state transitions
    happen on the event loop, so no locking is needed.
    """

    def __init__(self, peer: "NetPeer", config: HealthConfig):
        self.peer = peer
        self.config = config
        self._loop = asyncio.get_running_loop()
        now = self._loop.time()
        #: ident -> monotonic timestamp of the last sign of life.
        self.last_heard: dict[int, float] = {
            ident: now for ident in peer.book if ident != peer.node.ident
        }
        self._failures: dict[int, int] = {}
        self._suspects: set[int] = set()
        self._probes: dict[int, asyncio.Task] = {}
        self._task: Optional[asyncio.Task] = None
        #: Counters surfaced in reports/tests.
        self.suspicions = 0
        self.recoveries = 0
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = self._loop.create_task(self._run())

    async def stop(self) -> None:
        tasks = list(self._probes.values())
        if self._task is not None:
            tasks.append(self._task)
            self._task = None
        self._probes.clear()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def note_alive(self, ident: int) -> None:
        """Any proof of life: heartbeat received, write or probe landed."""
        if ident == self.peer.node.ident:
            return
        self.last_heard[ident] = self._loop.time()
        self._failures[ident] = 0
        if ident in self._suspects:
            self._restore(ident)

    def note_failure(self, ident: int) -> None:
        """One failed write/connect toward ``ident``."""
        count = self._failures.get(ident, 0) + 1
        self._failures[ident] = count
        if count >= self.config.failure_threshold:
            self._suspect(ident)

    def is_suspect(self, ident: int) -> bool:
        return ident in self._suspects

    @property
    def suspects(self) -> frozenset[int]:
        return frozenset(self._suspects)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _suspect(self, ident: int) -> None:
        if ident in self._suspects or ident == self.peer.node.ident:
            return
        self._suspects.add(ident)
        self.suspicions += 1
        # Tear the pooled connection down now; it is re-established
        # (against the *current* address-book entry) by the next write
        # after the probe restores the peer.
        self.peer.reset_connection(ident)
        if ident not in self._probes:
            self._probes[ident] = self._loop.create_task(self._probe(ident))

    def _restore(self, ident: int) -> None:
        self._suspects.discard(ident)
        self.recoveries += 1
        probe = self._probes.pop(ident, None)
        if probe is not None and probe is not asyncio.current_task():
            probe.cancel()

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        config = self.config
        while True:
            await asyncio.sleep(config.heartbeat_interval)
            now = self._loop.time()
            for ident in list(self.peer.book):
                if ident == self.peer.node.ident or ident in self._suspects:
                    continue
                if self.peer.cluster.is_dead(ident):
                    # An announced crash: no point heartbeating; writes
                    # already fail fast and the restart path revives it.
                    continue
                last = self.last_heard.setdefault(ident, now)
                if now - last > config.suspicion_timeout:
                    self._suspect(ident)
                    continue
                self.peer.post_heartbeat(ident)
                self.heartbeats_sent += 1

    async def _probe(self, ident: int) -> None:
        """Re-dial a suspect until its server answers, then restore it."""
        from .peer import set_nodelay  # circular at module import time

        config = self.config
        attempt = 1
        beacon = encode_frame(Heartbeat(sender=self.peer.node.ident))
        while ident in self._suspects:
            pause = min(
                config.probe_backoff_base * (2 ** (attempt - 1)),
                config.probe_backoff_max,
            )
            await asyncio.sleep(self.peer.cluster.jittered(pause))
            info = self.peer.book.get(ident)
            if info is None or self.peer.cluster.is_dead(ident):
                attempt += 1
                continue
            chaos = self.peer.cluster.chaos
            if chaos is not None and chaos.blocked(self.peer.node.ident, ident):
                # Probes honour an injected partition: they model real
                # dials, which a blocked link would also swallow.
                attempt += 1
                continue
            writer = None
            try:
                _, writer = await asyncio.wait_for(
                    asyncio.open_connection(info.host, info.port),
                    config.probe_timeout,
                )
                set_nodelay(writer)
                writer.write(beacon)
                await asyncio.wait_for(writer.drain(), config.probe_timeout)
            except (OSError, asyncio.TimeoutError):
                attempt += 1
                continue
            finally:
                if writer is not None:
                    writer.close()
            self.note_alive(ident)
            return
