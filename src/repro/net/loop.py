"""Optional ``uvloop`` acceleration for the live transport.

``uvloop`` (libuv-backed event loop) roughly halves the per-operation
cost of asyncio socket I/O, which matters once the outbox batcher has
squeezed the Python-level overhead out of the write path.  It is an
*optional* dependency: nothing in this repository requires it, CI does
not install it, and every code path must behave identically without it
(the event-loop policy changes, the protocol does not).

Activation is explicit, never automatic:

* set ``REPRO_NET_UVLOOP=1`` in the environment, or
* pass ``--uvloop`` to ``python -m repro.net.cluster`` /
  ``python -m repro.net.loadgen``.

When requested but not importable, :func:`maybe_install_uvloop` falls
back to the stock asyncio loop and reports that it did, so benchmark
reports can record which loop actually ran.
"""

from __future__ import annotations

import os
from typing import Optional

ENV_VAR = "REPRO_NET_UVLOOP"

__all__ = ["ENV_VAR", "loop_label", "maybe_install_uvloop"]

_installed = False


def _env_requested() -> bool:
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


def maybe_install_uvloop(force: Optional[bool] = None) -> bool:
    """Install uvloop's event-loop policy if requested and available.

    ``force=True`` requests it unconditionally (the ``--uvloop`` flag),
    ``force=False`` refuses it even if the environment asks, ``None``
    defers to ``REPRO_NET_UVLOOP``.  Returns True when uvloop is the
    active policy after the call; a missing or broken uvloop install is
    a graceful no-op, not an error.
    """
    global _installed
    want = _env_requested() if force is None else force
    if not want:
        return _installed
    if _installed:
        return True
    try:
        import uvloop  # type: ignore[import-not-found]
    except Exception:
        return False
    uvloop.install()
    _installed = True
    return True


def loop_label() -> str:
    """``"uvloop"`` or ``"asyncio"`` — for benchmark report metadata."""
    return "uvloop" if _installed else "asyncio"
