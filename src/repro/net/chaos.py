"""Chaos over TCP: seeded wire faults + crash/restart for live clusters.

The simulator's fault framework (PR-1, :mod:`repro.faults`) injects
*logical* faults — message drops, delays, node crashes — under the
routing layer.  This module is its live-transport counterpart: the same
seeded :class:`~repro.faults.plan.FaultPlan` drives faults at the **TCP
boundary** of a :class:`~repro.net.cluster.LiveCluster`:

* **connect refusals** — a dial attempt fails as if the listener were
  down (``plan.net.connect_refusal_probability``);
* **frame faults** (``plan.net.frame_fault_probability``) — before a
  frame's clean bytes hit the wire the connection is *reset*, the frame
  is *truncated* mid-write, or it is *garbled* (full length, corrupted
  payload, so the receiver's decoder — not just ``readexactly`` — must
  cope);
* **partitions** — an (optionally asymmetric) set of blocked
  ``(src, dst)`` edges whose writes fail like timeouts;
* **live crash/restart** — a peer's server dies, its pooled
  connections are aborted, its queued frames are settled as lost, the
  ring repairs around it (:class:`~repro.faults.recovery.ChaosHarness`
  is the ring-side half), and later the node rejoins through the
  bootstrap handshake on a fresh port.

Every fault is decided *before* clean bytes are written, so a faulted
attempt was certainly not delivered and the retry path cannot create
duplicates; exactly-once delivery then rests on the same soft-state
recovery model the simulator proves out — leases, windowed
republication, and subscriber-side dedup.

The proof obligation is :func:`run_chaos_soak`: replay a workload under
sustained faults, heal, recover, and end with a notification digest
**equal to the fault-free simulator's** (same workload, same seed,
same origin-selection RNG stream), zero duplicate notifications, and a
peak in-flight load within the configured credit budget.  Runnable via
``python -m repro.net.cluster --chaos default --compare-sim``.

Determinism note: the fault *plan* is seeded, and victim selection,
schedule placement and origin picks replay exactly; the per-write fault
draws happen in event-loop completion order, which the OS scheduler
perturbs.  The guarantee is therefore *convergence* (digest equality
after recovery), not a bit-identical fault trace — matching the PR-1
framework's contract.
"""

from __future__ import annotations

import asyncio
import json
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from ..chord.network import ChordNetwork
from ..core.engine import ContinuousQueryEngine, EngineConfig
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, NetFaultSpec
from ..faults.recovery import ChaosHarness
from ..workload.generator import Workload, WorkloadParams, build_workload
from .codec import HEADER_SIZE
from .health import HealthConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.node import ChordNode
    from .cluster import ClusterConfig, LiveCluster


class LiveChaos:
    """The wire-fault layer a cluster consults on every send.

    Owns the :class:`~repro.faults.injector.FaultInjector` whose seeded
    RNG decides refusals and frame faults, plus the current partition
    (a set of blocked directed edges).  Installed on a cluster with
    :meth:`~repro.net.cluster.LiveCluster.install_chaos` **before**
    ``start()``.
    """

    def __init__(self, plan: FaultPlan, injector: Optional[FaultInjector] = None):
        self.plan = plan
        self.injector = injector if injector is not None else FaultInjector(plan)
        self._blocked: set[tuple[int, int]] = set()
        self.counters: Counter = Counter()

    # -- hooks called from the outbound write path ---------------------
    def blocked(self, src_ident: int, dst_ident: int) -> bool:
        if (src_ident, dst_ident) in self._blocked:
            self.counters["blocked_sends"] += 1
            return True
        return False

    def should_refuse_connection(self) -> bool:
        self.counters["connect_attempts"] += 1
        if self.injector.should_refuse_connection():
            self.counters["connects_refused"] += 1
            return True
        return False

    _FAULT_COUNTERS = {
        "reset": "frames_reset",
        "truncate": "frames_truncated",
        "garble": "frames_garbled",
    }

    def sample_frame_fault(self) -> Optional[str]:
        self.counters["write_attempts"] += 1
        fault = self.injector.sample_frame_fault()
        if fault is not None:
            self.counters[self._FAULT_COUNTERS[fault]] += 1
        return fault

    def corrupt(self, data: bytes) -> bytes:
        """Garble a frame: intact header, poisoned payload.

        The length header is preserved so the receiver reads a
        complete frame and must fail in the *decoder* — the payload's
        first byte becomes ``0xFF``, which is no registered codec tag,
        so decoding deterministically raises ``CodecError``.
        """
        if len(data) <= HEADER_SIZE:  # pragma: no cover - frames never empty
            return data
        body = bytearray(data)
        body[HEADER_SIZE] = 0xFF
        return bytes(body)

    # -- partitions ----------------------------------------------------
    def partition(
        self,
        side_a: Sequence[int],
        side_b: Sequence[int],
        *,
        asymmetric: bool = False,
    ) -> None:
        """Block every edge from ``side_a`` to ``side_b`` (and back,
        unless ``asymmetric`` — then B can still reach A, the case only
        one-way heartbeats detect)."""
        edges = {(a, b) for a in side_a for b in side_b if a != b}
        if not asymmetric:
            edges |= {(b, a) for a in side_a for b in side_b if a != b}
        self._blocked |= edges
        self.counters["partitions"] += 1

    def heal(self) -> None:
        self._blocked.clear()

    @property
    def partitioned(self) -> bool:
        return bool(self._blocked)

    def snapshot(self) -> dict:
        data = dict(self.counters)
        data["partitioned"] = self.partitioned
        return data


# ----------------------------------------------------------------------
# Soak schedule and driver
# ----------------------------------------------------------------------

@dataclass
class SoakSettings:
    """Shape of one chaos soak (what happens beyond the fault plan)."""

    #: Live crash/restart cycles spread across the workload.
    crashes: int = 2
    #: Workload events between a crash and its restart (0 = auto).
    restart_lag: int = 0
    #: Inject one partition episode.
    partition: bool = True
    #: One-way partition (B still reaches A) instead of a full split.
    asymmetric: bool = True
    #: Fraction of the workload at which the partition opens/closes.
    partition_start: float = 0.45
    partition_length: float = 0.15
    #: Size of the protected subscriber pool queries originate from.
    subscribers: int = 2
    #: Ceiling on post-workload recovery rounds.
    settle_rounds: int = 8

    def __post_init__(self):
        if self.crashes < 0:
            raise ValueError("crashes must be >= 0")
        if self.subscribers < 1:
            raise ValueError("subscribers must be >= 1")
        if not 0 < self.partition_start < 1 or not 0 < self.partition_length < 1:
            raise ValueError("partition window fractions must be in (0, 1)")


@dataclass
class ChaosSoakReport:
    """Outcome of one soak, with everything the acceptance gate checks."""

    algorithm: str
    n_nodes: int
    n_events: int
    notifications_delivered: int
    notification_digest: str
    #: Duplicate identities in the *delivered* streams — the
    #: exactly-once gate; must be zero.
    duplicate_deliveries: int
    #: Re-created answers that arrived at the subscriber twice and were
    #: dropped by the identity check.  Over real sockets this is the
    #: dedup machinery *working*, not a violation: two evaluators can
    #: emit the same recovered answer while neither emission has landed
    #: yet, so the sender-side filter cannot be current the way it is
    #: in the synchronous simulator.
    redundant_arrivals: int
    suppressed_renotifications: int
    peak_in_flight: int
    credit_budget: Optional[int]
    frames_shed: int
    crashes: int
    restarts: int
    suspicions: int
    crash_frame_losses: int
    frames_written_off: int
    absorbed_faults: int
    chaos: dict = field(default_factory=dict)
    reference_digest: Optional[str] = None
    matches_reference: Optional[bool] = None

    @property
    def within_budget(self) -> bool:
        return self.credit_budget is None or self.peak_in_flight <= self.credit_budget

    def summary(self) -> str:
        lines = [
            f"chaos soak {self.algorithm}: {self.n_nodes} nodes, "
            f"{self.n_events} events, {self.crashes} crashes / "
            f"{self.restarts} restarts, "
            f"{self.chaos.get('partitions', 0)} partition episode(s)",
            f"  wire: {self.chaos.get('connects_refused', 0)} refusals, "
            f"{self.chaos.get('frames_reset', 0)} resets, "
            f"{self.chaos.get('frames_truncated', 0)} truncations, "
            f"{self.chaos.get('frames_garbled', 0)} garbles, "
            f"{self.chaos.get('blocked_sends', 0)} partition-blocked sends",
            f"  recovery: {self.crash_frame_losses} crash losses, "
            f"{self.frames_written_off} written off, "
            f"{self.absorbed_faults} absorbed faults, "
            f"{self.suspicions} suspicions, "
            f"{self.suppressed_renotifications} re-notifications suppressed",
            f"  result: {self.notifications_delivered} notifications, "
            f"{self.duplicate_deliveries} duplicates "
            f"({self.redundant_arrivals} redundant arrivals deduped), "
            f"peak in-flight "
            f"{self.peak_in_flight}/{self.credit_budget}, "
            f"digest {self.notification_digest[:12]}",
        ]
        if self.matches_reference is not None:
            verdict = "MATCH" if self.matches_reference else "MISMATCH"
            lines.append(
                f"  fault-free reference {str(self.reference_digest)[:12]} "
                f"-> {verdict}"
            )
        return "\n".join(lines)


def delivered_duplicates(engine: ContinuousQueryEngine) -> int:
    """Duplicate identities that made it into the delivered streams.

    The exactly-once property as the application observes it; the
    subscriber-side identity check makes this structurally zero — a
    nonzero count means the dedup machinery itself broke.
    """
    duplicates = 0
    for batch in engine.delivered.values():
        identities = [notification.identity for notification in batch]
        duplicates += len(identities) - len(set(identities))
    return duplicates


def subscriber_pool(network: ChordNetwork, size: int) -> list["ChordNode"]:
    """The fixed, protected pool every query originates from.

    Query keys embed the origin's node key, so the live run and the
    fault-free reference must pick origins from an identical,
    membership-independent pool with an identical RNG stream — and the
    pool must be protected from crashes (a subscriber holds the query
    leases and the delivered-identity sets that make recovery
    exactly-once).  ``network.nodes`` is identifier-sorted and
    ``ChordNetwork.build`` is deterministic, so the first ``size``
    nodes are the same in both worlds.
    """
    nodes = network.nodes
    return nodes[: max(1, min(size, len(nodes)))]


def drive_event(engine: ContinuousQueryEngine, event, rng, pool) -> None:
    """One workload event, identically in the live soak and reference.

    Exactly one RNG draw per event (the origin pick over the fixed
    pool), so the streams cannot diverge however the memberships do.
    """
    engine.clock.advance_to(event.time)
    origin = pool[rng.randrange(len(pool))]
    if event.kind == "query":
        engine.subscribe(origin, event.payload)
    else:
        relation, values = event.payload
        engine.publish(origin, relation, values)


def soak_reference(
    workload: Workload,
    *,
    algorithm: str,
    n_nodes: int,
    seed: int,
    subscribers: int = 2,
    engine_overrides: Optional[dict] = None,
    evict_every: int = 64,
) -> tuple[str, int]:
    """The fault-free oracle for a soak: same loop, simulator transport."""
    from ..bench.macro import notification_digest

    engine = ContinuousQueryEngine(
        ChordNetwork.build(n_nodes),
        EngineConfig(algorithm=algorithm, seed=seed, **(engine_overrides or {})),
    )
    rng = random.Random(seed)
    pool = subscriber_pool(engine.network, subscribers)
    events_since_evict = 0
    for event in workload:
        drive_event(engine, event, rng, pool)
        events_since_evict += 1
        if engine.config.window is not None and events_since_evict >= evict_every:
            engine.evict_expired()
            events_since_evict = 0
    if engine.config.window is not None:
        engine.evict_expired()
    delivered = sum(len(batch) for batch in engine.delivered.values())
    return notification_digest(engine), delivered


class ChaosController:
    """Sequences the two halves of live crash/restart and partitions.

    A crash is ring-side bookkeeping (``ChaosHarness.crash``: fail the
    node, stabilize, inherit key ranges) **and** socket-side demolition
    (freeze the peer, abort its connections, settle doomed frames).
    Getting the order right — mark dead, freeze, repair the ring, then
    settle — is this class's whole job, plus the deterministic victim
    stream (its own seeded RNG, because wire-fault draws happen in
    event-loop order and would perturb a shared stream).
    """

    def __init__(
        self,
        cluster: "LiveCluster",
        harness: ChaosHarness,
        chaos: LiveChaos,
    ):
        self.cluster = cluster
        self.harness = harness
        self.chaos = chaos
        self.victim_rng = random.Random(chaos.plan.seed ^ 0xC4A54)
        self.crashes = 0
        self.restarts = 0

    async def crash(self, node: Optional["ChordNode"] = None) -> Optional["ChordNode"]:
        """Kill one live node: server down, state gone, ring repaired."""
        if node is None:
            node = self.harness.choose_victim(self.victim_rng)
        if node is None:
            return None
        peer = self.cluster.peers.pop(node.ident, None)
        if peer is None:  # pragma: no cover - defensive
            return None
        self.cluster.dead.add(node.ident)
        peer.freeze()
        # Ring-side half while the socket side is frozen: membership,
        # finger repair, key-range inheritance.
        self.harness.crash(node)
        await peer.abort()
        self.crashes += 1
        return node

    async def restart(self) -> Optional["ChordNode"]:
        """Rejoin the oldest crashed node: ring first, then sockets,
        then a lease refresh so its inherited ranges repopulate."""
        if not self.harness.crashed_keys:
            return None
        node = self.harness.restart()
        if node is None:  # pragma: no cover - defensive
            return None
        await self.cluster.restart_peer(node)
        self.restarts += 1
        self.cluster.engine.refresh_leases()
        await self.cluster.drain(tolerate_failures=True)
        return node

    async def restart_all(self) -> list["ChordNode"]:
        restarted = []
        while self.harness.crashed_keys:
            node = await self.restart()
            if node is None:  # pragma: no cover - defensive
                break
            restarted.append(node)
        return restarted

    def begin_partition(self, *, asymmetric: bool = True) -> None:
        """Split the current ring in half (identifier order)."""
        idents = [node.ident for node in self.cluster.network.nodes]
        half = max(1, len(idents) // 2)
        self.chaos.partition(idents[:half], idents[half:], asymmetric=asymmetric)

    def heal_partition(self) -> None:
        self.chaos.heal()

    async def settle(self, *, max_rounds: int = 8) -> str:
        """Refresh-and-drain until the digest is stable and a whole
        round passed without absorbing any new fault.  Plan faults stay
        active throughout — the retry path absorbs them — exactly like
        ``ChaosHarness.settle`` keeps drops active in the simulator."""
        from ..bench.macro import notification_digest

        cluster = self.cluster
        engine = cluster.engine
        previous = None
        digest = notification_digest(engine)
        for _ in range(max(1, max_rounds)):
            faults_before = len(cluster.fault_log)
            cluster.network.run_stabilization(2, fix_all_fingers=True)
            engine.refresh_leases()
            await cluster.drain(tolerate_failures=True)
            digest = notification_digest(engine)
            clean = len(cluster.fault_log) == faults_before
            if digest == previous and clean and cluster.in_flight.count == 0:
                break
            previous = digest
        return digest


async def run_chaos_soak(
    workload: Workload,
    *,
    config: "ClusterConfig",
    plan: FaultPlan,
    settings: Optional[SoakSettings] = None,
) -> ChaosSoakReport:
    """Replay ``workload`` on a live ring under sustained chaos.

    Faults run for the whole workload; crashes and the partition episode
    are placed at fixed event indexes; afterwards everything heals,
    every crashed node restarts, and recovery rounds run until the
    delivered-notification digest is stable.  The caller checks the
    report against :func:`soak_reference` (the CLI and CI do).
    """
    from ..bench.macro import notification_digest
    from .cluster import LiveCluster

    settings = settings if settings is not None else SoakSettings()
    chaos = LiveChaos(plan)
    cluster = LiveCluster(config)
    cluster.install_chaos(chaos)
    await cluster.start()
    try:
        engine = cluster.engine
        pool = subscriber_pool(cluster.network, settings.subscribers)
        harness = ChaosHarness(
            engine, chaos.injector, protect=[node.ident for node in pool]
        )
        controller = ChaosController(cluster, harness, chaos)

        events = list(workload)
        total = len(events)
        rng = random.Random(config.seed)

        crash_at: Counter = Counter()
        restart_at: Counter = Counter()
        unprotected = config.n_nodes - len(pool)
        crashes = min(settings.crashes, max(0, unprotected - 1))
        if crashes and total:
            lag = settings.restart_lag or max(3, total // 8)
            for index in range(crashes):
                at = min(total - 1, round(total * (index + 1) / (crashes + 1)))
                crash_at[at] += 1
                if at + lag < total:
                    restart_at[at + lag] += 1
        part_open = part_close = None
        if settings.partition and total >= 4:
            part_open = int(total * settings.partition_start)
            part_close = min(
                total - 1,
                part_open + max(1, int(total * settings.partition_length)),
            )

        events_since_evict = 0
        for index, event in enumerate(events):
            await cluster.in_flight.wait_below_budget(config.quiesce_timeout)
            drive_event(engine, event, rng, pool)
            await cluster.drain(tolerate_failures=True)
            events_since_evict += 1
            if (
                engine.config.window is not None
                and events_since_evict >= 64
            ):
                engine.evict_expired()
                events_since_evict = 0
            if index == part_open:
                controller.begin_partition(asymmetric=settings.asymmetric)
            if index == part_close:
                controller.heal_partition()
            for _ in range(crash_at.get(index, 0)):
                await controller.crash()
            for _ in range(restart_at.get(index, 0)):
                await controller.restart()
        if engine.config.window is not None:
            engine.evict_expired()

        controller.heal_partition()
        await controller.restart_all()
        digest = await controller.settle(max_rounds=settings.settle_rounds)

        suspicions = sum(
            peer.detector.suspicions
            for peer in cluster.peers.values()
            if peer.detector is not None
        )
        return ChaosSoakReport(
            algorithm=engine.config.algorithm,
            n_nodes=config.n_nodes,
            n_events=total,
            notifications_delivered=sum(
                len(batch) for batch in engine.delivered.values()
            ),
            notification_digest=digest,
            duplicate_deliveries=delivered_duplicates(engine),
            redundant_arrivals=engine.duplicate_deliveries,
            suppressed_renotifications=engine.suppressed_renotifications,
            peak_in_flight=cluster.in_flight.peak,
            credit_budget=cluster.in_flight.budget,
            frames_shed=sum(
                peer.frames_shed for peer in cluster.peers.values()
            ),
            crashes=controller.crashes,
            restarts=controller.restarts,
            suspicions=suspicions,
            crash_frame_losses=cluster.crash_frame_losses,
            frames_written_off=cluster.frames_written_off,
            absorbed_faults=len(cluster.fault_log),
            chaos=chaos.snapshot(),
        )
    finally:
        await cluster.stop()


# ----------------------------------------------------------------------
# CLI plumbing (python -m repro.net.cluster --chaos SPEC)
# ----------------------------------------------------------------------

_SPEC_KEYS = {
    "frame", "connect", "seed", "attempts", "backoff", "jitter",
    "crashes", "partition", "subscribers", "lag", "settle",
}


def parse_chaos_spec(spec: str) -> tuple[FaultPlan, SoakSettings]:
    """``--chaos`` argument -> (fault plan, soak settings).

    ``"default"`` (or an empty string) is the acceptance preset: 5%
    connect refusals, 5% frame faults, jittered 4-attempt retries, two
    crash/restart cycles and one asymmetric partition episode.
    Key=value pairs override individual knobs, e.g.
    ``--chaos frame=0.1,crashes=3,seed=42``.
    """
    values: dict[str, str] = {}
    if spec and spec != "default":
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in _SPEC_KEYS:
                raise ValueError(
                    f"bad --chaos entry {part!r}; known keys: "
                    f"{', '.join(sorted(_SPEC_KEYS))}"
                )
            values[key] = raw.strip()

    def fget(key: str, default: float) -> float:
        return float(values.get(key, default))

    def iget(key: str, default: int) -> int:
        return int(values.get(key, default))

    plan = FaultPlan(
        seed=iget("seed", 17),
        max_attempts=iget("attempts", 4),
        backoff_base=fget("backoff", 0.02),
        backoff_jitter=fget("jitter", 0.5),
        net=NetFaultSpec(
            connect_refusal_probability=fget("connect", 0.05),
            frame_fault_probability=fget("frame", 0.05),
        ),
    )
    settings = SoakSettings(
        crashes=iget("crashes", 2),
        restart_lag=iget("lag", 0),
        partition=bool(iget("partition", 1)),
        subscribers=iget("subscribers", 2),
        settle_rounds=iget("settle", 8),
    )
    return plan, settings


def run_soak_cli(args) -> int:
    """Back half of ``python -m repro.net.cluster --chaos ...``."""
    from .cluster import ClusterConfig
    from .peer import NetConfig

    plan, settings = parse_chaos_spec(args.chaos)
    workload = build_workload(
        WorkloadParams(
            n_queries=args.queries,
            n_tuples=args.tuples,
            domain_size=args.domain_size,
            seed=args.seed,
        )
    )
    config = ClusterConfig(
        algorithm=args.algorithm,
        n_nodes=args.nodes,
        seed=args.seed,
        net=NetConfig.from_fault_plan(plan),
        health=HealthConfig(),
    )
    report = asyncio.run(
        run_chaos_soak(workload, config=config, plan=plan, settings=settings)
    )
    if args.compare_sim:
        reference_digest, _ = soak_reference(
            workload,
            algorithm=args.algorithm,
            n_nodes=args.nodes,
            seed=args.seed,
            subscribers=settings.subscribers,
        )
        report.reference_digest = reference_digest
        report.matches_reference = (
            reference_digest == report.notification_digest
        )

    exactly_once = report.duplicate_deliveries == 0
    ok = (
        exactly_once
        and report.within_budget
        and report.matches_reference is not False
    )
    if args.json:
        payload = {
            "algorithm": report.algorithm,
            "n_nodes": report.n_nodes,
            "n_events": report.n_events,
            "notifications_delivered": report.notifications_delivered,
            "notification_digest": report.notification_digest,
            "duplicate_deliveries": report.duplicate_deliveries,
            "redundant_arrivals": report.redundant_arrivals,
            "suppressed_renotifications": report.suppressed_renotifications,
            "peak_in_flight": report.peak_in_flight,
            "credit_budget": report.credit_budget,
            "frames_shed": report.frames_shed,
            "crashes": report.crashes,
            "restarts": report.restarts,
            "suspicions": report.suspicions,
            "crash_frame_losses": report.crash_frame_losses,
            "frames_written_off": report.frames_written_off,
            "absorbed_faults": report.absorbed_faults,
            "chaos": report.chaos,
            "reference_digest": report.reference_digest,
            "matches_reference": report.matches_reference,
            "ok": ok,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary())
        if not exactly_once:
            print(f"FAIL: {report.duplicate_deliveries} duplicate deliveries")
        if not report.within_budget:
            print(
                f"FAIL: peak in-flight {report.peak_in_flight} exceeded "
                f"budget {report.credit_budget}"
            )
    return 0 if ok else 1
