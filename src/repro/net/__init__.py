"""repro.net — live asyncio transport for the overlay.

The simulator (:mod:`repro.sim`) delivers messages by direct Python
calls; this package runs the *same* engine and algorithms over real TCP
sockets.  The pieces:

* :mod:`repro.net.codec` — versioned, length-prefixed binary wire
  format for every overlay message and its payload records;
* :mod:`repro.net.frames` — routing envelopes and the bootstrap/join
  control frames exchanged between peers;
* :mod:`repro.net.peer` — one asyncio peer per overlay node: TCP
  server, pooled outbound connections, timeouts, retry/backoff with
  successor fallback, and the bounded in-flight credit ledger;
* :mod:`repro.net.health` — heartbeat failure detection: suspect silent
  peers, route around them, probe until they return;
* :mod:`repro.net.chaos` — seeded TCP-level fault injection (resets,
  refusals, truncation/garbling, partitions, live crash/restart) and
  the soak that proves exactly-once delivery under all of it;
* :mod:`repro.net.cluster` — spin up an N-node localhost ring, drive a
  workload through it and compare against the simulator oracle
  (``python -m repro.net.cluster``, ``--chaos`` for the fault soak);
* :mod:`repro.net.loadgen` — sustained live load generator: pipelined
  tuple/query streams, notifications/sec and p50/p95/p99 end-to-end
  latency, and the committed ``BENCH_net_seed.json`` throughput gate
  (``python -m repro.net.loadgen``);
* :mod:`repro.net.loop` — optional ``uvloop`` event-loop acceleration
  behind ``REPRO_NET_UVLOOP`` / ``--uvloop`` with graceful fallback.

The seam that makes this possible is :class:`repro.transport.Transport`:
the engine sends through ``engine.transport`` and never notices whether
the implementation is the simulator's :class:`repro.chord.routing.Router`
or :class:`repro.net.peer.SocketTransport`.
"""

from .codec import (
    PROTOCOL_VERSION,
    decode,
    decode_frame,
    encode,
    encode_frame,
    encode_frame_into,
)
from .loop import maybe_install_uvloop

__all__ = [
    "PROTOCOL_VERSION",
    "decode",
    "decode_frame",
    "encode",
    "encode_frame",
    "encode_frame_into",
    "maybe_install_uvloop",
]
