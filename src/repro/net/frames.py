"""Wire envelopes: routing frames and bootstrap control frames.

Application messages (:mod:`repro.sim.messages`) never travel bare; a
peer wraps them in one of three envelopes that mirror the simulator's
routing primitives (Section 2.3):

* :class:`RouteFrame` — ``send(msg, I)``: forwarded hop by hop along
  real finger tables until the node owning ``target_ident`` delivers;
* :class:`MultiFrame` — recursive ``multisend(M, L)``: the pair list is
  sorted clockwise from the source, every peer on the sweep strips and
  delivers the pairs it owns and forwards the remainder;
* :class:`DirectFrame` — ``send_direct``: one TCP hop to a peer whose
  address is already known (notification delivery, JFRT hits).

The bootstrap handshake uses three more frames: a starting peer sends
:class:`JoinRequest` with its own :class:`PeerInfo` to the bootstrap
peer, which answers with a :class:`JoinReply` listing every member it
knows and fans a :class:`MemberUpdate` out to the existing members so
all address books converge before the workload starts.

All frames are codec records (tags ``0x30``–``0x3F``) so the one wire
format of :mod:`repro.net.codec` covers control and data traffic alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .codec import (
    _TAG_INT,
    _TAG_TUPLE,
    _Reader,
    _write_int,
    _write_uvarint,
    register_record,
    skip_value,
)
from ..errors import CodecError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.messages import Message

TAG_PEER_INFO = 0x30
TAG_ROUTE_FRAME = 0x31
TAG_MULTI_FRAME = 0x32
TAG_DIRECT_FRAME = 0x33
TAG_JOIN_REQUEST = 0x34
TAG_JOIN_REPLY = 0x35
TAG_MEMBER_UPDATE = 0x36
TAG_HEARTBEAT = 0x37


@dataclass(frozen=True, slots=True)
class PeerInfo:
    """One peer's overlay identifier and socket address."""

    ident: int
    host: str
    port: int


@dataclass(frozen=True, slots=True)
class RouteFrame:
    """``send(msg, I)`` in flight: deliver at ``Successor(target_ident)``.

    ``hops`` counts the TCP forwards taken so far — diagnostic only,
    but also the loop guard: a frame whose hop count exceeds the
    routing bound is dropped with an error instead of orbiting forever.
    """

    target_ident: int
    message: "Message"
    hops: int = 0


@dataclass(frozen=True, slots=True)
class MultiFrame:
    """A recursive-multisend sweep: ``(ident, message)`` pairs sorted
    clockwise from the originating node."""

    pairs: tuple[tuple[int, "Message"], ...]
    hops: int = 0


@dataclass(frozen=True, slots=True)
class DirectFrame:
    """One-hop delivery to the receiving peer's node."""

    message: "Message"


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """Announce a new peer to the bootstrap peer."""

    info: PeerInfo


@dataclass(frozen=True, slots=True)
class JoinReply:
    """Bootstrap's answer: every member known so far (joiner included)."""

    members: tuple[PeerInfo, ...]


@dataclass(frozen=True, slots=True)
class MemberUpdate:
    """Membership broadcast keeping older peers' address books current.

    Entries *overwrite* stale address-book rows: a node that crashed
    and rejoined (possibly on a new port) announces its new socket
    address through the bootstrap peer's fan-out, and every receiver
    must prefer the fresh address over the dead one.
    """

    members: tuple[PeerInfo, ...]


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Liveness beacon for the failure detector (:mod:`repro.net.health`).

    One-way and weightless: heartbeats never enter the in-flight
    delivery accounting and carry no application payload — receiving
    one merely proves the *sender* is alive and can reach this peer,
    which is exactly the asymmetric-partition semantics a detector
    needs.
    """

    sender: int


register_record(PeerInfo, TAG_PEER_INFO, ("ident", "host", "port"))
register_record(RouteFrame, TAG_ROUTE_FRAME, ("target_ident", "message", "hops"))
register_record(MultiFrame, TAG_MULTI_FRAME, ("pairs", "hops"))
register_record(DirectFrame, TAG_DIRECT_FRAME, ("message",))
register_record(JoinRequest, TAG_JOIN_REQUEST, ("info",))
register_record(JoinReply, TAG_JOIN_REPLY, ("members",))
register_record(MemberUpdate, TAG_MEMBER_UPDATE, ("members",))
register_record(Heartbeat, TAG_HEARTBEAT, ("sender",))


# ----------------------------------------------------------------------
# Raw-relay structural peeks
# ----------------------------------------------------------------------
# Both routed envelopes register ``hops`` as their LAST field, so their
# wire layouts end in the one field a pure relay rewrites:
#
#   RouteFrame: [TAG_ROUTE_FRAME][TAG_INT <target zigzag>]
#               [<message record>][TAG_INT <hops zigzag>]
#   MultiFrame: [TAG_MULTI_FRAME][TAG_TUPLE <count> <pairs...>]
#               [TAG_INT <hops zigzag>]
#
# A relay that owns none of the targets rewrites exactly the trailing
# hop counter, so it never needs the messages decoded: these helpers
# read the target identifiers (skipping structurally over the message
# bytes), check the trailing hop byte, and rebuild the forwarded frame
# from the original wire bytes.  The hop counter's zigzag stays a
# single byte up to 63 hops, far above any routing bound this repo
# configures; anything structurally off returns ``None`` and the
# caller falls back to the full-decode path.


def peek_route(payload: bytes) -> Optional[tuple[int, int, int]]:
    """``(target_ident, message_tag, hops)`` of a RouteFrame payload.

    Touches only the payload's head and tail — the message in the
    middle is never decoded.  Returns ``None`` whenever the payload is
    not a RouteFrame with a single-byte hop varint (the caller must
    then decode normally); never raises on junk bytes.
    """
    if (
        len(payload) < 6
        or payload[0] != TAG_ROUTE_FRAME
        or payload[1] != _TAG_INT
    ):
        return None
    reader = _Reader(payload)
    reader.pos = 2
    try:
        target = reader.read_int()
    except CodecError:
        return None
    last = payload[-1]
    if reader.pos >= len(payload) - 2 or payload[-2] != _TAG_INT:
        return None
    if last & 1 or last >= 0x80:
        # Multi-byte or negative hop varint: a continuation byte has
        # its msb set, so payload[-2] above already rejects that shape;
        # this arm only guards a final byte that is itself suspicious.
        return None
    return target, payload[reader.pos], last >> 1


#: Structural-peek memo for :func:`peek_multi`, keyed by the payload
#: minus its final (hop varint) byte.  Bounded; cleared wholesale when
#: full — entries describe transient in-flight sweeps, so losing them
#: only costs a re-walk.
_PEEK_MEMO: dict[bytes, tuple[list, list, list, list]] = {}
_PEEK_MEMO_MAX = 8192


def peek_multi(
    payload: bytes,
) -> Optional[tuple[list[int], list[int], list[int], list[int], int]]:
    """``(idents, message_tags, message_starts, pair_starts, hops)``.

    Walks a MultiFrame payload's pair list structurally — each
    message's bytes are *skipped*, never decoded — collecting per pair
    its target identifier, the leading record tag of its message, the
    byte offset of the message, and the byte offset of the pair record
    itself (so :func:`splice_multi` can carve out verbatim pair
    slices).  Returns ``None`` whenever the payload is not a
    MultiFrame with the expected shape and a single-byte hop varint;
    never raises on junk bytes.
    """
    if (
        len(payload) < 7
        or payload[0] != TAG_MULTI_FRAME
        or payload[1] != _TAG_TUPLE
    ):
        return None
    last = payload[-1]
    if last & 1 or last >= 0x80:
        return None
    # Every relay of a sweep sees the same bytes except the trailing
    # hop varint, and all the cluster's peers share this process — so
    # the structural walk is memoized on the hop-independent prefix:
    # hop k+1's peek of a frame hop k already walked is a dict hit.
    key = payload[:-1]
    cached = _PEEK_MEMO.get(key)
    if cached is not None:
        idents, tags, message_starts, pair_starts = cached
        return idents, tags, message_starts, pair_starts, last >> 1
    reader = _Reader(payload)
    reader.pos = 2
    idents = []
    tags = []
    message_starts = []
    pair_starts = []
    try:
        count = reader.read_uvarint()
        for _ in range(count):
            pos = reader.pos
            # Each pair is a 2-tuple; uvarint(2) is always one byte.
            if payload[pos] != _TAG_TUPLE or payload[pos + 1] != 2:
                return None
            if payload[pos + 2] != _TAG_INT:
                return None
            pair_starts.append(pos)
            reader.pos = pos + 3
            idents.append(reader.read_int())
            message_starts.append(reader.pos)
            tags.append(payload[reader.pos])
            reader.pos = skip_value(payload, reader.pos)
    except (CodecError, IndexError):
        return None
    pos = reader.pos
    if pos != len(payload) - 2 or payload[pos] != _TAG_INT:
        return None
    if len(_PEEK_MEMO) >= _PEEK_MEMO_MAX:
        _PEEK_MEMO.clear()
    _PEEK_MEMO[key] = (idents, tags, message_starts, pair_starts)
    return idents, tags, message_starts, pair_starts, last >> 1


def splice_multi(
    payload: bytes, pair_starts: list[int], keep: list[int], hops: int
) -> bytes:
    """A MultiFrame payload carrying only ``keep``'s pairs, hops + 1.

    The kept pairs are copied as verbatim byte slices out of the
    original payload (boundaries courtesy of :func:`peek_multi`), so a
    delivering multisend hop forwards the remainder without re-encoding
    a single message.  The produced bytes are identical to encoding
    ``MultiFrame(tuple(kept_pairs), hops + 1)`` from scratch.
    """
    out = bytearray((TAG_MULTI_FRAME, _TAG_TUPLE))
    _write_uvarint(out, len(keep))
    end = len(payload) - 2
    n = len(pair_starts)
    for i in keep:
        stop = pair_starts[i + 1] if i + 1 < n else end
        out += payload[pair_starts[i]:stop]
    out.append(_TAG_INT)
    _write_int(out, hops + 1)
    return bytes(out)


def bump_route_hops(header: bytes, payload: bytes) -> Optional[bytes]:
    """The complete wire bytes of ``payload``'s frame with ``hops + 1``.

    Works for both routed envelopes — RouteFrame and MultiFrame alike
    register ``hops`` as their final field.

    The hop counter is the only rewritten field and its varint must
    stay a single byte, so the frame length — and therefore ``header``
    — is reused verbatim.  Returns ``None`` when the incremented
    counter would not fit the fast path.
    """
    last = payload[-1]
    if payload[-2] != _TAG_INT or last & 1 or last >= 0x7E:
        return None
    return b"".join((header, payload[:-1], bytes((last + 2,))))
