"""Wire envelopes: routing frames and bootstrap control frames.

Application messages (:mod:`repro.sim.messages`) never travel bare; a
peer wraps them in one of three envelopes that mirror the simulator's
routing primitives (Section 2.3):

* :class:`RouteFrame` — ``send(msg, I)``: forwarded hop by hop along
  real finger tables until the node owning ``target_ident`` delivers;
* :class:`MultiFrame` — recursive ``multisend(M, L)``: the pair list is
  sorted clockwise from the source, every peer on the sweep strips and
  delivers the pairs it owns and forwards the remainder;
* :class:`DirectFrame` — ``send_direct``: one TCP hop to a peer whose
  address is already known (notification delivery, JFRT hits).

The bootstrap handshake uses three more frames: a starting peer sends
:class:`JoinRequest` with its own :class:`PeerInfo` to the bootstrap
peer, which answers with a :class:`JoinReply` listing every member it
knows and fans a :class:`MemberUpdate` out to the existing members so
all address books converge before the workload starts.

All frames are codec records (tags ``0x30``–``0x3F``) so the one wire
format of :mod:`repro.net.codec` covers control and data traffic alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .codec import register_record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.messages import Message

TAG_PEER_INFO = 0x30
TAG_ROUTE_FRAME = 0x31
TAG_MULTI_FRAME = 0x32
TAG_DIRECT_FRAME = 0x33
TAG_JOIN_REQUEST = 0x34
TAG_JOIN_REPLY = 0x35
TAG_MEMBER_UPDATE = 0x36
TAG_HEARTBEAT = 0x37


@dataclass(frozen=True, slots=True)
class PeerInfo:
    """One peer's overlay identifier and socket address."""

    ident: int
    host: str
    port: int


@dataclass(frozen=True, slots=True)
class RouteFrame:
    """``send(msg, I)`` in flight: deliver at ``Successor(target_ident)``.

    ``hops`` counts the TCP forwards taken so far — diagnostic only,
    but also the loop guard: a frame whose hop count exceeds the
    routing bound is dropped with an error instead of orbiting forever.
    """

    target_ident: int
    message: "Message"
    hops: int = 0


@dataclass(frozen=True, slots=True)
class MultiFrame:
    """A recursive-multisend sweep: ``(ident, message)`` pairs sorted
    clockwise from the originating node."""

    pairs: tuple[tuple[int, "Message"], ...]
    hops: int = 0


@dataclass(frozen=True, slots=True)
class DirectFrame:
    """One-hop delivery to the receiving peer's node."""

    message: "Message"


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """Announce a new peer to the bootstrap peer."""

    info: PeerInfo


@dataclass(frozen=True, slots=True)
class JoinReply:
    """Bootstrap's answer: every member known so far (joiner included)."""

    members: tuple[PeerInfo, ...]


@dataclass(frozen=True, slots=True)
class MemberUpdate:
    """Membership broadcast keeping older peers' address books current.

    Entries *overwrite* stale address-book rows: a node that crashed
    and rejoined (possibly on a new port) announces its new socket
    address through the bootstrap peer's fan-out, and every receiver
    must prefer the fresh address over the dead one.
    """

    members: tuple[PeerInfo, ...]


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Liveness beacon for the failure detector (:mod:`repro.net.health`).

    One-way and weightless: heartbeats never enter the in-flight
    delivery accounting and carry no application payload — receiving
    one merely proves the *sender* is alive and can reach this peer,
    which is exactly the asymmetric-partition semantics a detector
    needs.
    """

    sender: int


register_record(PeerInfo, TAG_PEER_INFO, ("ident", "host", "port"))
register_record(RouteFrame, TAG_ROUTE_FRAME, ("target_ident", "message", "hops"))
register_record(MultiFrame, TAG_MULTI_FRAME, ("pairs", "hops"))
register_record(DirectFrame, TAG_DIRECT_FRAME, ("message",))
register_record(JoinRequest, TAG_JOIN_REQUEST, ("info",))
register_record(JoinReply, TAG_JOIN_REPLY, ("members",))
register_record(MemberUpdate, TAG_MEMBER_UPDATE, ("members",))
register_record(Heartbeat, TAG_HEARTBEAT, ("sender",))
