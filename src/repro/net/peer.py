"""One asyncio peer per overlay node, plus the socket transport.

A :class:`NetPeer` gives its :class:`~repro.chord.node.ChordNode` a real
TCP presence: a listening server (ephemeral port on localhost), an
address book mapping overlay identifiers to socket addresses, and a
pool of outbound connections — one persistent connection per target
peer, fed by a queue and flushed by a writer task, so frames to the
same peer never interleave and never handshake twice.

:class:`SocketTransport` implements the :class:`~repro.transport.Transport`
contract over those peers.  Delivery semantics:

* routed frames travel **hop by hop** along the nodes' real finger
  tables — each TCP forward is one overlay hop, billed to the shared
  :class:`~repro.sim.stats.TrafficStats`;
* handlers run synchronously at the receiving peer, exactly as in the
  simulator; frames they emit are queued before the triggering
  delivery is marked done, so the cluster-wide :class:`InFlight`
  counter reaches zero only when an event's full causal cascade has
  landed;
* write failures retry with the fault-injection backoff shape of PR-1
  (``backoff_base * 2**(attempt-1)``, optionally jittered, up to
  ``max_attempts``); exhausted *routed* frames fall back to the
  target's ring successor (mirroring the simulator Router's
  successor-list fallback) before surfacing as a
  :class:`~repro.errors.DeliveryError` collected by the cluster
  (asynchronous failure cannot raise into the synchronous sender).

Backpressure (DESIGN.md §12): in-flight deliveries are **credited**
against a cluster-wide budget — the driver gates new workload events on
available credit, synchronous handler cascades may transiently overdraw
(they cannot block), and the observed peak is recorded and asserted
against the budget.  Each outbound queue additionally has a bounded
**send window**: when a slow or partitioned peer's queue is full, new
data frames are shed (settled as failed, to be re-created by the
soft-state lease refresh) instead of growing memory without bound.

Known single-process shortcut: the *return value* of ``send``/
``multisend`` (the responsible node) and ``lookup`` come from the
in-process ring oracle and router, while payloads genuinely travel over
TCP.  A routing bug therefore shows up as a missing or misdelivered
frame — the notification digest catches it — not as a wrong return
value.  See DESIGN.md §11.
"""

from __future__ import annotations

import asyncio
import socket
from collections import Counter
from contextlib import suppress
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..chord.routing import Router
from ..perf import PERF
from ..errors import (
    CodecError,
    DeliveryError,
    NetworkError,
    QuiesceTimeout,
    RoutingError,
)
from ..transport import Transport
from ..sim.messages import Message
from .codec import (
    HEADER_SIZE,
    MESSAGE_TYPE_BY_TAG,
    decode,
    decode_frame_payload,
    decode_value_at,
    encode_frame,
    frame_for_payload,
    legacy_codec_active,
    read_frame,
    read_frame_raw,
)
from .frames import (
    DirectFrame,
    Heartbeat,
    JoinReply,
    JoinRequest,
    MemberUpdate,
    MultiFrame,
    PeerInfo,
    RouteFrame,
    TAG_MULTI_FRAME,
    TAG_ROUTE_FRAME,
    bump_route_hops,
    peek_multi,
    peek_route,
    splice_multi,
)
from .health import FailureDetector, HealthConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.node import ChordNode
    from .cluster import LiveCluster


class InjectedWireFault(Exception):
    """A chaos-layer decision dressed up as a socket failure.

    Raised inside the outbound write path when the installed
    :class:`~repro.net.chaos.LiveChaos` refuses a connect, resets or
    corrupts a frame, or blocks a partitioned edge; handled by exactly
    the same retry/backoff/fallback code as a real ``OSError``.
    """


def set_nodelay(writer: asyncio.StreamWriter, enabled: bool = True) -> None:
    """Disable Nagle's algorithm on a stream's underlying socket.

    Batching is *our* policy (the outbox coalesces frames explicitly);
    letting the kernel hold small writes back as well would stack an
    uncontrolled delay on top and put latency numbers at Nagle's mercy.
    Applied to every accepted and outbound TCP connection; a transport
    without a real socket (tests, non-TCP) is silently left alone.
    ``enabled=False`` is a no-op — it exists so the load generator's
    pre-PR baseline mode can run with the socket options the seed
    transport actually had (:class:`NetConfig` ``nodelay``).
    """
    if not enabled:
        return
    sock = writer.get_extra_info("socket")
    if sock is None:
        return
    with suppress(OSError, AttributeError):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


@dataclass
class NetConfig:
    """Socket-layer knobs of a live cluster.

    The retry shape mirrors the PR-1 fault plan
    (:class:`repro.faults.plan.FaultPlan`): up to ``max_attempts``
    delivery attempts with exponential backoff
    ``backoff_base * 2**(attempt-1)`` between them (each pause
    stretched by up to ``backoff_jitter`` of itself, so synchronized
    retries after a partition heal spread out), then successor fallback
    and a typed :class:`~repro.errors.DeliveryError` — except the
    sleeps are real seconds and the drops are real socket errors, not
    injected ones.
    """

    connect_timeout: float = 5.0
    #: Per-frame write/drain timeout (also the bootstrap reply timeout).
    io_timeout: float = 10.0
    max_attempts: int = 3
    backoff_base: float = 0.05
    #: Uniform multiplicative jitter on retry pauses (0 = deterministic).
    backoff_jitter: float = 0.0
    #: Per-peer outbound queue bound; data frames beyond it are shed
    #: (and recovered by the lease refresh) instead of buffered forever.
    send_window: int = 1024
    #: Cluster-wide ceiling on in-flight deliveries (the credit budget).
    credit_budget: int = 4096
    #: Most frames coalesced into one socket write (1 = per-frame
    #: writes with one drain each, the pre-batching behaviour).  Chaos
    #: runs always deliver per-frame so the seeded per-frame fault
    #: decisions keep their exact semantics.
    max_batch_frames: int = 64
    #: Byte ceiling on one coalesced write; a batch stops growing once
    #: it would exceed this (the frame that crossed the line still
    #: ships with the batch, so a single frame may exceed it alone).
    max_batch_bytes: int = 256 * 1024
    #: How long (seconds) a non-full batch waits for more frames after
    #: the queue runs dry.  0 (default) never waits: batching then only
    #: coalesces what handler cascades already queued, adding no
    #: latency on an idle connection.
    batch_linger: float = 0.0
    #: Set ``TCP_NODELAY`` on every accepted and outbound socket.
    #: Always leave this on; ``False`` exists only so the load
    #: generator's pre-PR baseline can measure Nagle's tax.
    nodelay: bool = True
    #: Handle routed frames structurally wherever possible: pass-through
    #: RouteFrames/MultiFrames forward as raw wire bytes (hop counter
    #: bumped in place), and delivering multisend hops decode only the
    #: pair messages they own, splicing the remainder onward as verbatim
    #: byte slices.  ``False`` exists only for the pre-PR benchmark
    #: baseline; chaos runs disable the fast path automatically either
    #: way.
    raw_relay: bool = True

    @classmethod
    def from_fault_plan(cls, plan, **overrides) -> "NetConfig":
        """Lift the retry knobs off a fault plan (same names, same shape)."""
        overrides.setdefault("max_attempts", plan.max_attempts)
        overrides.setdefault("backoff_base", plan.backoff_base)
        overrides.setdefault("backoff_jitter", plan.backoff_jitter)
        return cls(**overrides)


class InFlight:
    """Cluster-wide credit ledger of posted-but-unhandled deliveries.

    The workload driver posts one event's messages and awaits zero.
    Handlers run synchronously at the receiving peer and post any
    cascade frames *before* their own delivery decrements, so the
    counter can only reach zero once the event's entire causal tree has
    been handled — the live analogue of the simulator completing an
    event's synchronous call chain.

    Beyond the bare counter this tracks, per message label, what is
    still outstanding (the :class:`~repro.errors.QuiesceTimeout`
    diagnostic), the high-water mark against an optional credit
    ``budget``, and — for chaos runs only (``allow_slack``) — absorbs
    the accounting noise a mid-flight node crash inevitably produces
    (a frame can be settled as lost by the dying peer in the same
    instant its sender completes the write).
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        self._count = 0
        self._labels: Counter = Counter()
        self._zero = asyncio.Event()
        self._zero.set()
        self._below = asyncio.Event()
        self._below.set()
        self.budget = budget
        self.peak = 0
        #: Chaos mode only: tolerate double-settled crash casualties.
        self.allow_slack = False
        self.slack_absorbed = 0
        self._debt = 0

    @property
    def count(self) -> int:
        return self._count

    def pending(self) -> dict[str, int]:
        """Outstanding deliveries by label (diagnostic)."""
        return {label: n for label, n in self._labels.items() if n}

    def inc(self, label: str = "control", n: int = 1) -> None:
        self._count += n
        self._labels[label] += n
        if self._count > self.peak:
            self.peak = self._count
        if self._count:
            self._zero.clear()
        if self.budget is not None and self._count >= self.budget:
            self._below.clear()

    def dec(self, label: str = "control", n: int = 1) -> None:
        self._labels[label] -= n
        if self._labels[label] == 0:
            del self._labels[label]
        taken = min(n, self._count)
        self._count -= taken
        leftover = n - taken
        if leftover:
            absorbed = min(leftover, self._debt)
            self._debt -= absorbed
            leftover -= absorbed
        if leftover:
            if not self.allow_slack:
                raise RuntimeError("in-flight delivery counter went negative")
            self.slack_absorbed += leftover
        if self._count == 0:
            self._zero.set()
        if self.budget is None or self._count < self.budget:
            self._below.set()

    def write_off(self) -> dict[str, int]:
        """Forgive everything outstanding (chaos-crash leak settlement).

        Returns what was written off and arms a matching *debt* so the
        late arrival of a forgiven delivery does not push the counter
        negative.  Only the chaos drain path uses this; a benign run
        that needs it has a real accounting bug and should fail loudly
        instead (``allow_slack`` stays False there).
        """
        pending = self.pending()
        self._debt += self._count
        self._count = 0
        self._labels.clear()
        self._zero.set()
        self._below.set()
        return pending

    async def wait_zero(self, timeout: Optional[float] = None) -> None:
        if self._zero.is_set():
            return
        try:
            await asyncio.wait_for(self._zero.wait(), timeout)
        except asyncio.TimeoutError:
            raise QuiesceTimeout(
                timeout if timeout is not None else 0.0, self.pending()
            ) from None

    async def wait_below_budget(self, timeout: Optional[float] = None) -> None:
        """Credit gate for work *sources* (the workload driver).

        Returns immediately while in-flight deliveries are under the
        budget; otherwise waits until enough have settled.  Handler
        cascades never wait here — blocking them would deadlock the
        very processing that frees credits.
        """
        if self.budget is None or self._below.is_set():
            return
        try:
            await asyncio.wait_for(self._below.wait(), timeout)
        except asyncio.TimeoutError:
            raise QuiesceTimeout(
                timeout if timeout is not None else 0.0, self.pending()
            ) from None


def _frame_labels(frame, weight: int) -> tuple[str, ...]:
    """The per-delivery labels a frame's settlement must balance."""
    kind = type(frame)
    if kind is RouteFrame or kind is DirectFrame:
        return (frame.message.type,)
    if kind is MultiFrame:
        return tuple(message.type for _, message in frame.pairs)
    return ("control",) * weight


def _frame_label(frame) -> str:
    """The message type a frame's failure should be billed to."""
    if type(frame) is RouteFrame or type(frame) is DirectFrame:
        return frame.message.type
    if type(frame) is MultiFrame:
        return "multisend"
    return "control"


class _RawFrame:
    """A relayed frame that was never decoded (raw wire bytes only).

    The happy path — write the bytes to the next hop — needs nothing
    else; only the rare retry-exhausted fallback needs the frame
    object, and :meth:`materialize` decodes it on demand.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    def materialize(self):
        return decode(self.data[HEADER_SIZE:])


class _OutItem:
    """One queued frame: the object (for fallback rerouting), its wire
    bytes, and the delivery accounting it must settle."""

    __slots__ = ("frame", "data", "weight", "labels", "fallback")

    def __init__(self, frame, data: bytes, weight: int, labels, fallback: bool):
        self.frame = frame
        self.data = data
        self.weight = weight
        self.labels = labels
        self.fallback = fallback


class _Outbox:
    """One persistent outbound connection: queue + batching writer task.

    The connection is (re-)established lazily against the *current*
    address-book entry, so a peer that restarted on a new port is
    reached as soon as the membership update lands.  A connection the
    remote side dropped (EOF seen, or transport closing) is detected
    before the next write instead of silently swallowing frames.

    The writer coalesces queued frames into multi-frame socket writes
    with a **single drain per batch** (DESIGN.md §13): whatever a
    synchronous handler cascade queued in one event-loop turn usually
    ships as one ``write()``.  Batches are bounded by frame count and
    byte size (:class:`NetConfig`); with a chaos layer installed the
    writer falls back to strict per-frame delivery so the seeded
    per-frame fault decisions (reset/truncate/garble *this* frame)
    keep their exact semantics.
    """

    def __init__(self, peer: "NetPeer", target_ident: int):
        self.peer = peer
        self.target_ident = target_ident
        self.queue: asyncio.Queue = asyncio.Queue()
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        #: Frames taken off the queue but not yet settled (current batch).
        self.current: list[_OutItem] = []
        self.task = asyncio.get_running_loop().create_task(self._run())

    @property
    def depth(self) -> int:
        return self.queue.qsize() + len(self.current)

    async def close(self) -> None:
        await self.queue.put(None)
        await self.task

    def abort(self) -> list[_OutItem]:
        """Crash teardown: cancel the writer, return the doomed items."""
        items = list(self.current)
        self.current.clear()
        while not self.queue.empty():
            item = self.queue.get_nowait()
            if item is not None:
                items.append(item)
        self.task.cancel()
        self.reset(abort=True)
        return items

    def reset(self, *, abort: bool = False) -> None:
        """Drop the pooled connection (next write re-establishes it)."""
        writer = self.writer
        self.reader = None
        self.writer = None
        if writer is None:
            return
        if abort:
            transport = writer.transport
            if transport is not None:
                transport.abort()
        else:
            writer.close()

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        config = self.peer.cluster.net_config
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    return
                batch = self.current
                batch.append(item)
                closing = self._fill_batch(batch, config)
                if len(batch) == 1:
                    await self._deliver(item, config)
                    batch.clear()
                else:
                    await self._deliver_batch(batch, config)
                if closing:
                    return
        finally:
            self.reset()

    def _fill_batch(self, batch: list[_OutItem], config: NetConfig) -> bool:
        """Greedily take more queued frames into ``batch`` (no awaits).

        Returns True when the close sentinel was consumed while
        filling, so the caller ships the batch and then exits.  With
        chaos installed, or ``max_batch_frames <= 1``, the batch stays
        at one frame and delivery keeps its per-frame semantics.
        """
        if self.peer.cluster.chaos is not None:
            return False
        max_frames = config.max_batch_frames
        max_bytes = config.max_batch_bytes
        if max_frames <= 1:
            return False
        nbytes = len(batch[0].data)
        queue = self.queue
        while len(batch) < max_frames and nbytes < max_bytes:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is None:
                return True
            batch.append(item)
            nbytes += len(item.data)
        return False

    async def _deliver_batch(
        self, batch: list[_OutItem], config: NetConfig
    ) -> None:
        """One coalesced write + one drain for the whole batch.

        A failed batch write falls back to the per-frame path: every
        frame of the batch then gets the full retry/backoff/fallback
        treatment individually, exactly as if batching were disabled.
        (Benign runs never take that path — a localhost write only
        fails under injected faults or a genuinely dead peer.)
        """
        peer = self.peer
        linger = config.batch_linger
        if linger > 0.0 and len(batch) < config.max_batch_frames:
            # Time threshold: give an almost-empty batch one bounded
            # chance to pick up stragglers before paying the write.
            with suppress(asyncio.TimeoutError):
                while len(batch) < config.max_batch_frames:
                    item = await asyncio.wait_for(self.queue.get(), linger)
                    if item is None:
                        self.queue.put_nowait(None)
                        break
                    batch.append(item)
        try:
            await self._attempt_batch(batch, config)
            batch.clear()
            return
        except (OSError, asyncio.TimeoutError, InjectedWireFault):
            self.reset()
            peer.note_send_failure(self.target_ident)
        while batch:
            await self._deliver(batch[0], config)
            batch.pop(0)

    async def _attempt_batch(
        self, batch: list[_OutItem], config: NetConfig
    ) -> None:
        peer = self.peer
        cluster = peer.cluster
        if cluster.is_dead(self.target_ident):
            raise InjectedWireFault(f"peer {self.target_ident} crashed")
        if (
            self.writer is None
            or self.writer.is_closing()
            or (self.reader is not None and self.reader.at_eof())
        ):
            self.reset()
            await self._connect(config)
        data = b"".join(item.data for item in batch)
        self.writer.write(data)
        # ``drain()`` below the high-water mark is a no-op, but
        # ``wait_for`` still builds a Task and a timer per call — on
        # the hot path that is most of the flush cost.  When the
        # kernel took the whole write synchronously there is nothing
        # to wait for; any connection failure surfaces on the next
        # write or on the serve side.
        if self.writer.transport.get_write_buffer_size():
            await asyncio.wait_for(self.writer.drain(), config.io_timeout)
        peer.bytes_sent += len(data)
        peer.batches_sent += 1
        peer.note_send_success(self.target_ident)
        if PERF.enabled:
            PERF.count("net.writes")
            PERF.count("net.batches")
            PERF.count("net.frames_flushed", len(batch))
            PERF.count("net.bytes_flushed", len(data))

    async def _deliver(self, item: _OutItem, config: NetConfig) -> None:
        peer = self.peer
        cluster = peer.cluster
        heartbeat = type(item.frame) is Heartbeat
        attempt = 1
        while True:
            try:
                await self._attempt(item, config)
                return
            except (OSError, asyncio.TimeoutError, InjectedWireFault):
                self.reset()
                peer.note_send_failure(self.target_ident)
                if heartbeat:
                    return  # one-shot beacon; the detector saw the failure
                if attempt >= config.max_attempts:
                    peer._exhausted(self.target_ident, item, attempt)
                    return
                cluster.stats.record_retry(
                    item.labels[0] if item.labels else "control"
                )
                await asyncio.sleep(
                    cluster.jittered(
                        config.backoff_base * (2 ** (attempt - 1))
                    )
                )
                attempt += 1

    async def _attempt(self, item: _OutItem, config: NetConfig) -> None:
        peer = self.peer
        cluster = peer.cluster
        if cluster.is_dead(self.target_ident):
            raise InjectedWireFault(f"peer {self.target_ident} crashed")
        chaos = cluster.chaos
        if chaos is not None and chaos.blocked(
            peer.node.ident, self.target_ident
        ):
            raise InjectedWireFault("link partitioned")
        if (
            self.writer is None
            or self.writer.is_closing()
            or (self.reader is not None and self.reader.at_eof())
        ):
            self.reset()
            await self._connect(config)
        # Chaos faults are decided *before* any clean byte hits the
        # wire, so a faulted attempt was certainly not delivered and
        # can be retried without risking a duplicate.
        fault = chaos.sample_frame_fault() if chaos is not None else None
        if fault == "reset":
            self.reset(abort=True)
            raise InjectedWireFault("connection reset")
        if fault == "truncate":
            self.writer.write(item.data[: max(1, len(item.data) // 2)])
            with suppress(OSError, asyncio.TimeoutError):
                await asyncio.wait_for(self.writer.drain(), config.io_timeout)
            self.reset(abort=True)
            raise InjectedWireFault("frame truncated on the wire")
        if fault == "garble":
            self.writer.write(chaos.corrupt(item.data))
            with suppress(OSError, asyncio.TimeoutError):
                await asyncio.wait_for(self.writer.drain(), config.io_timeout)
            # The receiver will fail decoding and drop the connection.
            self.reset()
            raise InjectedWireFault("frame garbled on the wire")
        self.writer.write(item.data)
        # Same no-op-drain elision as the batch path, but only outside
        # chaos and baseline-emulation runs: chaos semantics lean on a
        # drain per faulted attempt, and the pre-PR transport always
        # paid the ``wait_for`` (see ``legacy_codec_active``).
        if (
            chaos is not None
            or legacy_codec_active()
            or self.writer.transport.get_write_buffer_size()
        ):
            await asyncio.wait_for(self.writer.drain(), config.io_timeout)
        peer.bytes_sent += len(item.data)
        peer.note_send_success(self.target_ident)
        if PERF.enabled:
            PERF.count("net.writes")
            PERF.count("net.frames_flushed")
            PERF.count("net.bytes_flushed", len(item.data))

    async def _connect(self, config: NetConfig) -> None:
        cluster = self.peer.cluster
        chaos = cluster.chaos
        if chaos is not None and chaos.should_refuse_connection():
            raise InjectedWireFault("connection refused (injected)")
        info = self.peer.book.get(self.target_ident)
        if info is None:
            raise InjectedWireFault(
                f"no address for peer {self.target_ident}"
            )
        self.reader, self.writer = await asyncio.wait_for(
            asyncio.open_connection(info.host, info.port),
            config.connect_timeout,
        )
        set_nodelay(self.writer, config.nodelay)


class NetPeer:
    """The live (socket) half of one overlay node."""

    def __init__(self, node: "ChordNode", cluster: "LiveCluster"):
        self.node = node
        self.cluster = cluster
        self.info: Optional[PeerInfo] = None
        #: Overlay identifier -> socket address, filled by the
        #: bootstrap handshake (each peer keeps its own book).
        self.book: dict[int, PeerInfo] = {}
        self._outboxes: dict[int, _Outbox] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._serve_tasks: set[asyncio.Task] = set()
        self._inbound: set[asyncio.StreamWriter] = set()
        self.detector: Optional[FailureDetector] = None
        #: Set by :meth:`freeze`; a frozen peer settles inbound frames
        #: as crash casualties instead of delivering them.
        self.crashed = False
        self._last_inbound = 0.0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_shed = 0
        #: Coalesced multi-frame writes that went out with one drain.
        self.batches_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> PeerInfo:
        """Bind the TCP server (``port=0`` = ephemeral)."""
        self._server = await asyncio.start_server(self._serve, host, port)
        bound = self._server.sockets[0].getsockname()[1]
        self.info = PeerInfo(self.node.ident, host, bound)
        self.book[self.node.ident] = self.info
        self.crashed = False
        return self.info

    async def stop_server(self) -> None:
        """Kill just the TCP server (and live inbound connections).

        The peer object, its node, its address book and its outboxes
        all survive — this models a listener outage, not a crash.
        Senders notice on their next write (connection reset / refused)
        and retry; calling :meth:`start` again with the old port brings
        the peer back on the same address, so no membership update is
        needed for routing to resume.
        """
        if self._server is not None:
            self._server.close()
            with suppress(OSError):
                await self._server.wait_closed()
            self._server = None
        for writer in list(self._inbound):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._serve_tasks:
            await asyncio.gather(*self._serve_tasks, return_exceptions=True)
            self._serve_tasks.clear()

    def enable_health(self, config: HealthConfig) -> FailureDetector:
        """Attach and start a failure detector for this peer."""
        self.detector = FailureDetector(self, config)
        self.detector.start()
        return self.detector

    async def stop(self) -> None:
        """Flush outboxes, stop listening, hang up inbound connections.

        Inbound handlers are not cancelled — their sockets are closed,
        so each reader loop sees EOF and exits on its own; the gather
        then merely waits for that, leaving nothing for the event-loop
        teardown to cancel.
        """
        if self.detector is not None:
            await self.detector.stop()
            self.detector = None
        for outbox in self._outboxes.values():
            await outbox.close()
        self._outboxes.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._inbound):
            writer.close()
        if self._serve_tasks:
            await asyncio.gather(*self._serve_tasks, return_exceptions=True)
            self._serve_tasks.clear()

    def freeze(self) -> None:
        """Phase one of a crash: stop listening, stop delivering.

        Synchronous on purpose — from the instant it returns (still
        inside the same event-loop turn) every inbound frame is settled
        as lost instead of handled, so the ring-side ``network.fail``
        and this socket-side freeze happen atomically with respect to
        all peer tasks.
        """
        self.crashed = True
        self._last_inbound = asyncio.get_running_loop().time()
        if self._server is not None:
            self._server.close()

    async def abort(self) -> None:
        """Phase two of a crash: settle doomed frames, hang everything up.

        Outbound queues are cancelled and every queued frame is settled
        as a crash casualty.  Inbound connections are then given a
        short idle window so frames already buffered in the kernel are
        *consumed and settled* (not delivered — the node is dead) by
        the frozen dispatch path; without that window their in-flight
        credits would leak and the cluster could never quiesce again.
        """
        if self.detector is not None:
            await self.detector.stop()
            self.detector = None
        lost: list[_OutItem] = []
        for outbox in self._outboxes.values():
            lost.extend(outbox.abort())
        self._outboxes.clear()
        for item in lost:
            if item.weight:
                self.cluster.frame_lost(
                    f"queued at crashed node {self.node.ident}", item.labels
                )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 0.6
        quiet = 0.06
        while loop.time() < deadline:
            if loop.time() - self._last_inbound >= quiet:
                break
            await asyncio.sleep(0.02)
        if self._server is not None:
            with suppress(OSError):
                await self._server.wait_closed()
            self._server = None
        for writer in list(self._inbound):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._serve_tasks:
            await asyncio.gather(*self._serve_tasks, return_exceptions=True)
            self._serve_tasks.clear()

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def post(
        self, target_ident: int, frame, *, weight: int, fallback: bool = False
    ) -> None:
        """Queue a frame for ``target_ident``; never blocks the caller."""
        info = self.book.get(target_ident)
        if info is None:
            self.cluster.frame_failed(
                NetworkError(
                    f"peer {self.node.ident} has no address for "
                    f"{target_ident} in its book"
                ),
                _frame_labels(frame, weight),
            )
            return
        outbox = self._outboxes.get(target_ident)
        if outbox is None:
            outbox = _Outbox(self, target_ident)
            self._outboxes[target_ident] = outbox
        labels = _frame_labels(frame, weight)
        window = self.cluster.net_config.send_window
        kind = type(frame)
        sheddable = kind is RouteFrame or kind is MultiFrame or kind is DirectFrame
        if sheddable and window > 0 and outbox.queue.qsize() >= window:
            # Bounded backpressure: a saturated peer sheds instead of
            # buffering without bound; the lease refresh re-creates
            # whatever the shed frames would have built.
            self.frames_shed += 1
            self.cluster.frame_failed(
                NetworkError(
                    f"send window to peer {target_ident} full "
                    f"({window} frames); shed {_frame_label(frame)}"
                ),
                labels,
            )
            return
        self.frames_sent += 1
        outbox.queue.put_nowait(
            _OutItem(frame, encode_frame(frame), weight, labels, fallback)
        )

    def post_raw(
        self,
        target_ident: int,
        data: bytes,
        labels: tuple[str, ...],
        weight: int,
    ) -> None:
        """Queue pre-encoded wire bytes (the raw-relay fast path).

        Mirrors :meth:`post` — address check, shed-on-saturation,
        counters — but skips :func:`encode_frame` entirely: ``data``
        is the original frame as read off the inbound socket, hop
        counter already bumped.  ``labels``/``weight`` carry the same
        settlement accounting the decoded path would have derived from
        the frame (one label per delivery the frame still owes).
        """
        info = self.book.get(target_ident)
        if info is None:
            self.cluster.frame_failed(
                NetworkError(
                    f"peer {self.node.ident} has no address for "
                    f"{target_ident} in its book"
                ),
                labels,
            )
            return
        outbox = self._outboxes.get(target_ident)
        if outbox is None:
            outbox = _Outbox(self, target_ident)
            self._outboxes[target_ident] = outbox
        window = self.cluster.net_config.send_window
        if window > 0 and outbox.queue.qsize() >= window:
            self.frames_shed += 1
            self.cluster.frame_failed(
                NetworkError(
                    f"send window to peer {target_ident} full "
                    f"({window} frames); shed {labels[0] if labels else 'control'}"
                ),
                labels,
            )
            return
        self.frames_sent += 1
        outbox.queue.put_nowait(
            _OutItem(_RawFrame(data), data, weight, labels, False)
        )

    def post_heartbeat(self, target_ident: int) -> None:
        """Queue a weightless liveness beacon (single attempt, no retry)."""
        if self.crashed or target_ident not in self.book:
            return
        outbox = self._outboxes.get(target_ident)
        if outbox is None:
            outbox = _Outbox(self, target_ident)
            self._outboxes[target_ident] = outbox
        frame = Heartbeat(sender=self.node.ident)
        outbox.queue.put_nowait(
            _OutItem(frame, encode_frame(frame), 0, (), False)
        )

    def reset_connection(self, target_ident: int) -> None:
        """Drop the pooled connection to one peer (queue survives)."""
        outbox = self._outboxes.get(target_ident)
        if outbox is not None:
            outbox.reset()

    def note_send_success(self, target_ident: int) -> None:
        if self.detector is not None:
            self.detector.note_alive(target_ident)

    def note_send_failure(self, target_ident: int) -> None:
        if self.detector is not None:
            self.detector.note_failure(target_ident)

    def _exhausted(self, target_ident: int, item: _OutItem, attempts: int) -> None:
        """All write attempts to one peer failed; fall back or give up.

        Mirrors the simulator Router: a routed frame gets one shot at
        the target's ring successor (the node that owns, or will own
        after stabilization, the dead target's range — and, for a
        merely *suspected* target, a relay that can usually still reach
        it).  Direct and control frames have no overlay fallback.
        """
        label = item.labels[0] if item.labels else "control"
        if not item.fallback:
            frame = item.frame
            if type(frame) is _RawFrame:
                frame = frame.materialize()
            alternative = self.cluster.fallback_ident(frame, target_ident)
            if alternative is not None and alternative != target_ident:
                self.cluster.stats.record_retry(label)
                if alternative == self.node.ident:
                    self._accept_fallback(frame)
                else:
                    self.post(
                        alternative, frame, weight=item.weight,
                        fallback=True,
                    )
                return
        self.cluster.frame_failed(
            DeliveryError(label, target_ident, attempts), item.labels
        )

    def _accept_fallback(self, frame) -> None:
        """This peer itself is the fallback owner; dispatch locally."""
        kind = type(frame)
        if kind is RouteFrame:
            self.route(frame)
        elif kind is MultiFrame:
            self.route_multi(frame)
        elif kind is DirectFrame:
            self.handle_delivery(frame.message)

    # ------------------------------------------------------------------
    # Routing (one forwarding step per peer, as the protocol prescribes)
    # ------------------------------------------------------------------
    def _next_hop(self, ident: int) -> "ChordNode":
        """The simulator router's forwarding rule, one step at a time.

        A hop the failure detector currently suspects is treated like a
        dead finger (fall back to the successor) — the same rule the
        simulator Router applies to ``not next_hop.alive``.
        """
        node = self.node
        successor = node.successor
        if successor is node:
            return node
        low = node.ident
        size = node.space.size
        if low == successor.ident or 0 < (ident - low) % size <= (
            successor.ident - low
        ) % size:
            return successor
        next_hop = node.closest_preceding_finger(ident)
        detector = self.detector
        if (
            next_hop is node
            or not next_hop.alive
            or (detector is not None and detector.is_suspect(next_hop.ident))
        ):
            next_hop = successor
        return next_hop

    def _relay_raw(self, header: bytes, payload: bytes) -> bool:
        """Forward a routed frame without ever decoding its messages.

        The zero-copy-ish half of :meth:`route` and
        :meth:`route_multi`: when this node is a pure relay — it owns
        neither a RouteFrame's target nor any of a MultiFrame's pair
        targets — the only field the protocol rewrites is the hop
        counter, so the original wire bytes are shipped onward with the
        trailing varint bumped in place — no payload decode, no
        re-encode, no second allocation of the message trees.  Returns
        False whenever the slow path must run instead: the structural
        peek failed, this node owns a target (local delivery), the
        hop bound is exceeded (the decoded path raises the proper
        RoutingError), or chaos is installed (fault injection reasons
        about decoded frames, so soaks keep the seed semantics).
        """
        cluster = self.cluster
        if (
            not cluster.net_config.raw_relay
            or cluster.chaos is not None
            or self.crashed
        ):
            return False
        tag = payload[0] if payload else 0
        if tag == TAG_ROUTE_FRAME:
            peeked = peek_route(payload)
            if peeked is None:
                return False
            target_ident, message_tag, hops = peeked
            if self.node.owns(target_ident):
                return False
            if hops >= cluster.max_hops:
                return False
            data = bump_route_hops(header, payload)
            if data is None:  # pragma: no cover - peek already bounds hops
                return False
            mtype = MESSAGE_TYPE_BY_TAG.get(message_tag, "message")
            cluster.stats.record_hops(mtype, 1)
            if PERF.enabled:
                PERF.count("net.frames_relayed_raw")
            self.post_raw(
                self._next_hop(target_ident).ident, data, (mtype,), 1
            )
            return True
        if tag == TAG_MULTI_FRAME:
            peeked_multi = peek_multi(payload)
            if peeked_multi is None:
                return False
            idents, message_tags, message_starts, pair_starts, hops = (
                peeked_multi
            )
            owns = self.node.owns
            owned: list[int] = []
            keep: list[int] = []
            for i, ident in enumerate(idents):
                (owned if owns(ident) else keep).append(i)
            if keep and hops >= cluster.max_hops + 2 * len(idents):
                # Sweep bound exceeded: the decoded path delivers the
                # owned pairs and raises the proper RoutingError for
                # the remainder.
                return False
            if not owned:
                # Pure relay: original bytes onward, hop byte bumped.
                data = bump_route_hops(header, payload)
                if data is None:  # pragma: no cover - peek bounds hops
                    return False
                if PERF.enabled:
                    PERF.count("net.frames_relayed_raw")
            else:
                # Delivering hop: materialize ONLY the owned messages;
                # the rest of the sweep travels on as verbatim slices,
                # so across a whole sweep each pair's message is
                # decoded exactly once — at its owner.
                for i in owned:
                    message, _ = decode_value_at(payload, message_starts[i])
                    self.handle_delivery(message)
                if not keep:
                    return True
                data = frame_for_payload(
                    splice_multi(payload, pair_starts, keep, hops)
                )
                if PERF.enabled:
                    PERF.count("net.frames_spliced")
            labels = tuple(
                MESSAGE_TYPE_BY_TAG.get(message_tags[i], "message")
                for i in keep
            )
            cluster.stats.record_hops("multisend", 1)
            self.post_raw(
                self._next_hop(idents[keep[0]]).ident, data, labels, len(keep)
            )
            return True
        return False

    def route(self, frame: RouteFrame) -> None:
        """Deliver or forward a ``send()`` frame."""
        if self.node.owns(frame.target_ident):
            self.handle_delivery(frame.message)
            return
        if frame.hops >= self.cluster.max_hops:
            self.cluster.frame_failed(
                RoutingError(
                    f"frame for {frame.target_ident} exceeded "
                    f"{self.cluster.max_hops} hops"
                ),
                (frame.message.type,),
            )
            return
        self.cluster.stats.record_hops(frame.message.type, 1)
        self.post(
            self._next_hop(frame.target_ident).ident,
            RouteFrame(frame.target_ident, frame.message, frame.hops + 1),
            weight=1,
        )

    def route_multi(self, frame: MultiFrame) -> None:
        """One step of the clockwise multisend sweep (Section 2.3):
        deliver the pairs this node owns, forward the remainder."""
        remaining = []
        for ident, message in frame.pairs:
            if self.node.owns(ident):
                self.handle_delivery(message)
            else:
                remaining.append((ident, message))
        if not remaining:
            return
        # The sweep visits every owner once, so the bound scales with
        # the batch on top of the single-target routing bound.
        if frame.hops >= self.cluster.max_hops + 2 * len(frame.pairs):
            self.cluster.frame_failed(
                RoutingError(
                    f"multisend sweep of {len(frame.pairs)} pairs exceeded "
                    f"its hop bound"
                ),
                tuple(message.type for _, message in remaining),
            )
            return
        self.cluster.stats.record_hops("multisend", 1)
        self.post(
            self._next_hop(remaining[0][0]).ident,
            MultiFrame(tuple(remaining), frame.hops + 1),
            weight=len(remaining),
        )

    def handle_delivery(self, message: Message) -> None:
        """Run the node's synchronous handler; always settle the counter."""
        try:
            self.node.deliver(message)
        except Exception as exc:  # surfaced by the next drain()
            self.cluster.handler_failed(exc)
        finally:
            self.cluster.in_flight.dec(message.type)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.add(task)
        self._inbound.add(writer)
        set_nodelay(writer, self.cluster.net_config.nodelay)
        loop = asyncio.get_running_loop()
        abort_connection = False
        try:
            while True:
                try:
                    header, payload = await read_frame_raw(reader)
                except asyncio.IncompleteReadError:
                    # Died mid-frame; must precede the EOFError arm
                    # (IncompleteReadError subclasses EOFError).
                    raise
                except EOFError:
                    break  # clean close at a frame boundary
                self._last_inbound = loop.time()
                if self._relay_raw(header, payload):
                    continue
                frame = decode_frame_payload(payload)
                await self._dispatch(frame, writer)
        except CodecError as exc:
            # Corrupt bytes poison the whole stream: the only safe
            # recovery is to abort this connection (the sender's next
            # write fails and its retry path re-establishes a clean
            # one) while this server keeps serving other connections.
            abort_connection = True
            self.cluster.note_codec_fault(exc)
        except (asyncio.IncompleteReadError, OSError) as exc:
            self.cluster.note_stream_break(exc)
        finally:
            self._inbound.discard(writer)
            if task is not None:
                self._serve_tasks.discard(task)
            if abort_connection and writer.transport is not None:
                writer.transport.abort()
            else:
                writer.close()
                with suppress(OSError, ConnectionError):
                    await writer.wait_closed()

    async def _dispatch(self, frame, writer: asyncio.StreamWriter) -> None:
        kind = type(frame)
        if kind is Heartbeat:
            if self.detector is not None:
                self.detector.note_alive(frame.sender)
            return
        if self.crashed:
            self._settle_lost(frame)
            return
        if kind is RouteFrame:
            self.route(frame)
        elif kind is MultiFrame:
            self.route_multi(frame)
        elif kind is DirectFrame:
            self.handle_delivery(frame.message)
        elif kind is JoinRequest:
            writer.write(encode_frame(self.admit(frame.info)))
            await writer.drain()
        elif kind is MemberUpdate:
            for info in frame.members:
                old = self.book.get(info.ident)
                self.book[info.ident] = info
                if old is not None and old != info:
                    # The peer moved (crash/restart): drop the stale
                    # pooled connection so the next write dials the
                    # fresh address.
                    self.reset_connection(info.ident)
            self.cluster.in_flight.dec("control")
        else:
            self.cluster.handler_failed(
                CodecError(f"unexpected top-level frame {kind.__name__}")
            )

    def _settle_lost(self, frame) -> None:
        """A frame reached this peer after it crashed: it dies here.

        Its in-flight credits are settled (so the cluster can quiesce)
        and the loss is recorded; the soft-state lease refresh is what
        brings the data back, exactly as in the simulator's recovery
        model.
        """
        kind = type(frame)
        if kind is MemberUpdate:
            self.cluster.in_flight.dec("control")
            return
        if kind is JoinRequest or kind is JoinReply:
            return
        weight = 1
        if kind is MultiFrame:
            weight = len(frame.pairs)
        self.cluster.frame_lost(
            f"delivered to crashed node {self.node.ident}",
            _frame_labels(frame, weight),
        )

    def admit(self, info: PeerInfo) -> JoinReply:
        """Bootstrap-side join: register the newcomer, reply with the
        membership, and fan a :class:`MemberUpdate` out to the peers
        that joined earlier so every address book converges.  A
        *returning* peer (same ident, new address after a crash) is
        fanned out too, overwriting the stale address everywhere."""
        changed = self.book.get(info.ident) != info
        self.book[info.ident] = info
        if changed:
            update = MemberUpdate(members=(info,))
            for member_ident in list(self.book):
                if member_ident in (info.ident, self.node.ident):
                    continue
                if self.cluster.is_dead(member_ident):
                    continue
                self.cluster.in_flight.inc("control")
                self.post(member_ident, update, weight=1)
        return JoinReply(
            members=tuple(self.book[ident] for ident in sorted(self.book))
        )


class SocketTransport(Transport):
    """:class:`~repro.transport.Transport` over live :class:`NetPeer` s."""

    def __init__(self, cluster: "LiveCluster"):
        self.cluster = cluster

    # -- Transport API -------------------------------------------------
    def send(self, source: "ChordNode", message: Message, ident: int) -> "ChordNode":
        cluster = self.cluster
        owner = cluster.network.responsible_node(ident)
        cluster.stats.record(message.type, 0)  # hops billed per forward
        cluster.in_flight.inc(message.type)
        cluster.peer_for(source).route(RouteFrame(target_ident=ident, message=message))
        return owner

    def send_direct(
        self, source: "ChordNode", message: Message, target: "ChordNode"
    ) -> None:
        cluster = self.cluster
        cluster.stats.record(message.type, 0 if source is target else 1)
        cluster.in_flight.inc(message.type)
        peer = cluster.peer_for(source)
        if target is source:
            peer.handle_delivery(message)
        else:
            peer.post(target.ident, DirectFrame(message=message), weight=1)

    def multisend(
        self,
        source: "ChordNode",
        messages: Sequence[Message] | Message,
        idents: Sequence[int],
        *,
        recursive: bool = True,
    ) -> list["ChordNode"]:
        cluster = self.cluster
        message_list = Router._pair_messages(messages, idents)
        owners = [cluster.network.responsible_node(ident) for ident in idents]
        if not idents:
            return owners
        if not recursive:
            for message, ident in zip(message_list, idents):
                self.send(source, message, ident)
            return owners
        size = cluster.network.space.size
        start = source.ident
        pairs = tuple(
            sorted(
                zip(idents, message_list),
                key=lambda pair: (pair[0] - start) % size,
            )
        )
        type_counts: dict[str, int] = {}
        for message in message_list:
            type_counts[message.type] = type_counts.get(message.type, 0) + 1
        for message_type, count in type_counts.items():
            cluster.stats.record_batch(message_type, count, 0)
            cluster.in_flight.inc(message_type, count)
        cluster.peer_for(source).route_multi(MultiFrame(pairs=pairs))
        return owners

    def lookup(
        self, origin: "ChordNode", ident: int, *, account: str = "lookup"
    ) -> "ChordNode":
        """A local finger-table walk via the in-process router.

        Rate probes (Section 4.3.6) read the probed node's arrival
        statistics in place, as in the simulator; a wire request/reply
        probe is future work (DESIGN.md §11).
        """
        return self.cluster.network.router.lookup(origin, ident, account=account)
