"""One asyncio peer per overlay node, plus the socket transport.

A :class:`NetPeer` gives its :class:`~repro.chord.node.ChordNode` a real
TCP presence: a listening server (ephemeral port on localhost), an
address book mapping overlay identifiers to socket addresses, and a
pool of outbound connections — one persistent connection per target
peer, fed by a queue and flushed by a writer task, so frames to the
same peer never interleave and never handshake twice.

:class:`SocketTransport` implements the :class:`~repro.transport.Transport`
contract over those peers.  Delivery semantics:

* routed frames travel **hop by hop** along the nodes' real finger
  tables — each TCP forward is one overlay hop, billed to the shared
  :class:`~repro.sim.stats.TrafficStats`;
* handlers run synchronously at the receiving peer, exactly as in the
  simulator; frames they emit are queued before the triggering
  delivery is marked done, so the cluster-wide :class:`InFlight`
  counter reaches zero only when an event's full causal cascade has
  landed;
* write failures retry with the fault-injection backoff shape of PR-1
  (``backoff_base * 2**(attempt-1)``, up to ``max_attempts``); an
  exhausted frame surfaces as a :class:`~repro.errors.DeliveryError`
  collected by the cluster (asynchronous failure cannot raise into the
  synchronous sender).

Known single-process shortcut: the *return value* of ``send``/
``multisend`` (the responsible node) and ``lookup`` come from the
in-process ring oracle and router, while payloads genuinely travel over
TCP.  A routing bug therefore shows up as a missing or misdelivered
frame — the notification digest catches it — not as a wrong return
value.  See DESIGN.md §11.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..chord.routing import Router
from ..errors import CodecError, DeliveryError, NetworkError, RoutingError
from ..transport import Transport
from ..sim.messages import Message
from .codec import HEADER_SIZE, decode, decode_header, encode_frame
from .frames import (
    DirectFrame,
    JoinReply,
    JoinRequest,
    MemberUpdate,
    MultiFrame,
    PeerInfo,
    RouteFrame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.node import ChordNode
    from .cluster import LiveCluster


@dataclass
class NetConfig:
    """Socket-layer knobs of a live cluster.

    The retry shape mirrors the PR-1 fault plan
    (:class:`repro.faults.plan.FaultPlan`): up to ``max_attempts``
    delivery attempts with exponential backoff
    ``backoff_base * 2**(attempt-1)`` between them, then a typed
    :class:`~repro.errors.DeliveryError` — except the sleeps are real
    seconds and the drops are real socket errors, not injected ones.
    """

    connect_timeout: float = 5.0
    #: Per-frame write/drain timeout (also the bootstrap reply timeout).
    io_timeout: float = 10.0
    max_attempts: int = 3
    backoff_base: float = 0.05

    @classmethod
    def from_fault_plan(cls, plan) -> "NetConfig":
        """Lift the retry knobs off a fault plan (same names, same shape)."""
        return cls(max_attempts=plan.max_attempts, backoff_base=plan.backoff_base)


class InFlight:
    """Cluster-wide count of posted-but-unhandled deliveries.

    The workload driver posts one event's messages and awaits zero.
    Handlers run synchronously at the receiving peer and post any
    cascade frames *before* their own delivery decrements, so the
    counter can only reach zero once the event's entire causal tree has
    been handled — the live analogue of the simulator completing an
    event's synchronous call chain.
    """

    def __init__(self) -> None:
        self._count = 0
        self._zero = asyncio.Event()
        self._zero.set()

    @property
    def count(self) -> int:
        return self._count

    def inc(self, n: int = 1) -> None:
        self._count += n
        if self._count:
            self._zero.clear()

    def dec(self, n: int = 1) -> None:
        self._count -= n
        if self._count < 0:
            raise RuntimeError("in-flight delivery counter went negative")
        if self._count == 0:
            self._zero.set()

    async def wait_zero(self, timeout: Optional[float] = None) -> None:
        await asyncio.wait_for(self._zero.wait(), timeout)


def _frame_label(frame) -> str:
    """The message type a frame's failure should be billed to."""
    if type(frame) is RouteFrame or type(frame) is DirectFrame:
        return frame.message.type
    if type(frame) is MultiFrame:
        return "multisend"
    return "control"


class _Outbox:
    """One persistent outbound connection: queue + writer task."""

    def __init__(self, peer: "NetPeer", target: PeerInfo):
        self.peer = peer
        self.target = target
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        await self.queue.put(None)
        await self.task

    async def _run(self) -> None:
        config = self.peer.cluster.net_config
        writer = None
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    return
                data, weight, label = item
                attempt = 1
                while True:
                    try:
                        if writer is None:
                            _, writer = await asyncio.wait_for(
                                asyncio.open_connection(
                                    self.target.host, self.target.port
                                ),
                                config.connect_timeout,
                            )
                        writer.write(data)
                        await asyncio.wait_for(writer.drain(), config.io_timeout)
                        self.peer.bytes_sent += len(data)
                        break
                    except (OSError, asyncio.TimeoutError):
                        if writer is not None:
                            writer.close()
                            writer = None
                        if attempt >= config.max_attempts:
                            self.peer.cluster.frame_failed(
                                DeliveryError(label, self.target.ident, attempt),
                                weight,
                            )
                            break
                        self.peer.cluster.stats.record_retry(label)
                        await asyncio.sleep(
                            config.backoff_base * (2 ** (attempt - 1))
                        )
                        attempt += 1
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):  # pragma: no cover
                    pass


class NetPeer:
    """The live (socket) half of one overlay node."""

    def __init__(self, node: "ChordNode", cluster: "LiveCluster"):
        self.node = node
        self.cluster = cluster
        self.info: Optional[PeerInfo] = None
        #: Overlay identifier -> socket address, filled by the
        #: bootstrap handshake (each peer keeps its own book).
        self.book: dict[int, PeerInfo] = {}
        self._outboxes: dict[int, _Outbox] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._serve_tasks: set[asyncio.Task] = set()
        self._inbound: set[asyncio.StreamWriter] = set()
        self.frames_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1") -> PeerInfo:
        """Bind the TCP server on an ephemeral port."""
        self._server = await asyncio.start_server(self._serve, host, 0)
        port = self._server.sockets[0].getsockname()[1]
        self.info = PeerInfo(self.node.ident, host, port)
        self.book[self.node.ident] = self.info
        return self.info

    async def stop(self) -> None:
        """Flush outboxes, stop listening, hang up inbound connections.

        Inbound handlers are not cancelled — their sockets are closed,
        so each reader loop sees EOF and exits on its own; the gather
        then merely waits for that, leaving nothing for the event-loop
        teardown to cancel.
        """
        for outbox in self._outboxes.values():
            await outbox.close()
        self._outboxes.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._inbound):
            writer.close()
        if self._serve_tasks:
            await asyncio.gather(*self._serve_tasks, return_exceptions=True)
            self._serve_tasks.clear()

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def post(self, target_ident: int, frame, *, weight: int) -> None:
        """Queue a frame for ``target_ident``; never blocks the caller."""
        info = self.book.get(target_ident)
        if info is None:
            self.cluster.frame_failed(
                NetworkError(
                    f"peer {self.node.ident} has no address for "
                    f"{target_ident} in its book"
                ),
                weight,
            )
            return
        outbox = self._outboxes.get(target_ident)
        if outbox is None:
            outbox = _Outbox(self, info)
            self._outboxes[target_ident] = outbox
        self.frames_sent += 1
        outbox.queue.put_nowait((encode_frame(frame), weight, _frame_label(frame)))

    # ------------------------------------------------------------------
    # Routing (one forwarding step per peer, as the protocol prescribes)
    # ------------------------------------------------------------------
    def _next_hop(self, ident: int) -> "ChordNode":
        """The simulator router's forwarding rule, one step at a time."""
        node = self.node
        successor = node.successor
        if successor is node:
            return node
        low = node.ident
        size = node.space.size
        if low == successor.ident or 0 < (ident - low) % size <= (
            successor.ident - low
        ) % size:
            return successor
        next_hop = node.closest_preceding_finger(ident)
        if next_hop is node or not next_hop.alive:
            next_hop = successor
        return next_hop

    def route(self, frame: RouteFrame) -> None:
        """Deliver or forward a ``send()`` frame."""
        if self.node.owns(frame.target_ident):
            self.handle_delivery(frame.message)
            return
        if frame.hops >= self.cluster.max_hops:
            self.cluster.frame_failed(
                RoutingError(
                    f"frame for {frame.target_ident} exceeded "
                    f"{self.cluster.max_hops} hops"
                ),
                1,
            )
            return
        self.cluster.stats.record_hops(frame.message.type, 1)
        self.post(
            self._next_hop(frame.target_ident).ident,
            RouteFrame(frame.target_ident, frame.message, frame.hops + 1),
            weight=1,
        )

    def route_multi(self, frame: MultiFrame) -> None:
        """One step of the clockwise multisend sweep (Section 2.3):
        deliver the pairs this node owns, forward the remainder."""
        remaining = []
        for ident, message in frame.pairs:
            if self.node.owns(ident):
                self.handle_delivery(message)
            else:
                remaining.append((ident, message))
        if not remaining:
            return
        # The sweep visits every owner once, so the bound scales with
        # the batch on top of the single-target routing bound.
        if frame.hops >= self.cluster.max_hops + 2 * len(frame.pairs):
            self.cluster.frame_failed(
                RoutingError(
                    f"multisend sweep of {len(frame.pairs)} pairs exceeded "
                    f"its hop bound"
                ),
                len(remaining),
            )
            return
        self.cluster.stats.record_hops("multisend", 1)
        self.post(
            self._next_hop(remaining[0][0]).ident,
            MultiFrame(tuple(remaining), frame.hops + 1),
            weight=len(remaining),
        )

    def handle_delivery(self, message: Message) -> None:
        """Run the node's synchronous handler; always settle the counter."""
        try:
            self.node.deliver(message)
        except Exception as exc:  # surfaced by the next drain()
            self.cluster.handler_failed(exc)
        finally:
            self.cluster.in_flight.dec()

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.add(task)
        self._inbound.add(writer)
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER_SIZE)
                except asyncio.IncompleteReadError:
                    break
                payload = await reader.readexactly(decode_header(header))
                await self._dispatch(decode(payload), writer)
        except (CodecError, asyncio.IncompleteReadError, OSError) as exc:
            self.cluster.handler_failed(exc)
        finally:
            self._inbound.discard(writer)
            if task is not None:
                self._serve_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover - teardown
                pass

    async def _dispatch(self, frame, writer: asyncio.StreamWriter) -> None:
        kind = type(frame)
        if kind is RouteFrame:
            self.route(frame)
        elif kind is MultiFrame:
            self.route_multi(frame)
        elif kind is DirectFrame:
            self.handle_delivery(frame.message)
        elif kind is JoinRequest:
            writer.write(encode_frame(self.admit(frame.info)))
            await writer.drain()
        elif kind is MemberUpdate:
            for info in frame.members:
                self.book.setdefault(info.ident, info)
            self.cluster.in_flight.dec()
        else:
            self.cluster.handler_failed(
                CodecError(f"unexpected top-level frame {kind.__name__}")
            )

    def admit(self, info: PeerInfo) -> JoinReply:
        """Bootstrap-side join: register the newcomer, reply with the
        membership, and fan a :class:`MemberUpdate` out to the peers
        that joined earlier so every address book converges."""
        newcomer = info.ident not in self.book
        self.book[info.ident] = info
        if newcomer:
            update = MemberUpdate(members=(info,))
            for member_ident in list(self.book):
                if member_ident in (info.ident, self.node.ident):
                    continue
                self.cluster.in_flight.inc()
                self.post(member_ident, update, weight=1)
        return JoinReply(
            members=tuple(self.book[ident] for ident in sorted(self.book))
        )


class SocketTransport(Transport):
    """:class:`~repro.transport.Transport` over live :class:`NetPeer` s."""

    def __init__(self, cluster: "LiveCluster"):
        self.cluster = cluster

    # -- Transport API -------------------------------------------------
    def send(self, source: "ChordNode", message: Message, ident: int) -> "ChordNode":
        cluster = self.cluster
        owner = cluster.network.responsible_node(ident)
        cluster.stats.record(message.type, 0)  # hops billed per forward
        cluster.in_flight.inc()
        cluster.peer_for(source).route(RouteFrame(target_ident=ident, message=message))
        return owner

    def send_direct(
        self, source: "ChordNode", message: Message, target: "ChordNode"
    ) -> None:
        cluster = self.cluster
        cluster.stats.record(message.type, 0 if source is target else 1)
        cluster.in_flight.inc()
        peer = cluster.peer_for(source)
        if target is source:
            peer.handle_delivery(message)
        else:
            peer.post(target.ident, DirectFrame(message=message), weight=1)

    def multisend(
        self,
        source: "ChordNode",
        messages: Sequence[Message] | Message,
        idents: Sequence[int],
        *,
        recursive: bool = True,
    ) -> list["ChordNode"]:
        cluster = self.cluster
        message_list = Router._pair_messages(messages, idents)
        owners = [cluster.network.responsible_node(ident) for ident in idents]
        if not idents:
            return owners
        if not recursive:
            for message, ident in zip(message_list, idents):
                self.send(source, message, ident)
            return owners
        size = cluster.network.space.size
        start = source.ident
        pairs = tuple(
            sorted(
                zip(idents, message_list),
                key=lambda pair: (pair[0] - start) % size,
            )
        )
        type_counts: dict[str, int] = {}
        for message in message_list:
            type_counts[message.type] = type_counts.get(message.type, 0) + 1
        for message_type, count in type_counts.items():
            cluster.stats.record_batch(message_type, count, 0)
        cluster.in_flight.inc(len(pairs))
        cluster.peer_for(source).route_multi(MultiFrame(pairs=pairs))
        return owners

    def lookup(
        self, origin: "ChordNode", ident: int, *, account: str = "lookup"
    ) -> "ChordNode":
        """A local finger-table walk via the in-process router.

        Rate probes (Section 4.3.6) read the probed node's arrival
        statistics in place, as in the simulator; a wire request/reply
        probe is future work (DESIGN.md §11).
        """
        return self.cluster.network.router.lookup(origin, ident, account=account)
