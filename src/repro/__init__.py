"""repro — continuous two-way equi-join queries over structured overlays.

A from-scratch reproduction of *"Distributed Evaluation of Continuous
Equi-join Queries over Large Structured Overlay Networks"* (Idreos,
Tryfonopoulos, Koubarakis — ICDE 2006 / TU Crete thesis 2005): the
Chord DHT substrate, the extended ``send``/``multisend`` routing API,
and the four continuous-join algorithms SAI, DAI-Q, DAI-T and DAI-V
with their optimizations (join fingers routing table, attribute-level
replication), evaluated by a discrete-event simulation.

Quickstart::

    from repro import ChordNetwork, ContinuousQueryEngine, EngineConfig, Schema

    schema = Schema.from_dict({"R": ["A", "B"], "S": ["D", "E"]})
    network = ChordNetwork.build(128)
    engine = ContinuousQueryEngine(network, EngineConfig(algorithm="dai-t"))

    subscriber = network.nodes[0]
    engine.subscribe(subscriber, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E",
                     schema)
    engine.publish(network.nodes[1], schema.relation("R"), {"A": 1, "B": 7})
    engine.publish(network.nodes[2], schema.relation("S"), {"D": 2, "E": 7})
    print(engine.notifications(subscriber))
"""

from .chord import ChordNetwork, ChordNode, ConsistentHash, IdentifierSpace, Router
from .core import (
    ALGORITHMS,
    CentralizedOracle,
    ContinuousQueryEngine,
    EngineConfig,
    LoadSnapshot,
    MultiwaySubscription,
    Notification,
    subscribe_multiway,
)
from .errors import (
    DeliveryError,
    NetworkError,
    ParseError,
    QueryError,
    ReproError,
    RoutingError,
    SchemaError,
)
from .faults import ChaosHarness, DelaySpec, FaultInjector, FaultPlan
from .sim import LogicalClock, Simulator, TrafficStats
from .sql import (
    DataTuple,
    JoinQuery,
    MultiwayQuery,
    Relation,
    Schema,
    parse_multiway_query,
    parse_query,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CentralizedOracle",
    "ChaosHarness",
    "ChordNetwork",
    "ChordNode",
    "ConsistentHash",
    "ContinuousQueryEngine",
    "DataTuple",
    "DelaySpec",
    "DeliveryError",
    "EngineConfig",
    "FaultInjector",
    "FaultPlan",
    "IdentifierSpace",
    "JoinQuery",
    "LoadSnapshot",
    "LogicalClock",
    "MultiwayQuery",
    "MultiwaySubscription",
    "NetworkError",
    "Notification",
    "ParseError",
    "QueryError",
    "Relation",
    "ReproError",
    "Router",
    "RoutingError",
    "Schema",
    "SchemaError",
    "Simulator",
    "TrafficStats",
    "parse_multiway_query",
    "parse_query",
    "subscribe_multiway",
    "__version__",
]
