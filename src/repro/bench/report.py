"""Rendering of experiment results as text tables, curves and markdown."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Rows regenerating one of the paper's tables/figures.

    Load-*distribution* figures in the paper are curves (per-node load
    sorted descending); experiments attach those vectors as ``series``
    and the text renderer plots them as ASCII charts under the table.
    """

    experiment: str  # e.g. "E2"
    figure: str  # e.g. "Figure 5.2 (thesis) — traffic cost and JFRT effect"
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: str = ""
    #: Optional named curves (e.g. sorted per-node load per algorithm).
    series: dict[str, list[float]] = field(default_factory=dict)

    def column_values(self, column: str) -> list[Any]:
        """One column as a list, in row order."""
        return [row.get(column) for row in self.rows]

    def to_text(self) -> str:
        header = f"{self.experiment}: {self.title}\n({self.figure})"
        body = render_table(self.columns, self.rows)
        charts = ""
        if self.series:
            charts = "\n" + "\n".join(
                ascii_curve(values, label=name)
                for name, values in self.series.items()
            )
        notes = f"\nNotes: {self.notes}" if self.notes else ""
        return f"{header}\n{body}{charts}{notes}"

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment} — {self.title}", "", f"*{self.figure}*", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format(row.get(c)) for c in self.columns) + " |"
            )
        if self.notes:
            lines.extend(["", self.notes])
        lines.append("")
        return "\n".join(lines)


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)


def ascii_curve(
    values: list[float],
    *,
    label: str = "",
    width: int = 64,
    height: int = 8,
) -> str:
    """Plot one descending curve (e.g. sorted per-node loads) in ASCII.

    The x axis is downsampled to ``width`` points; the y axis is linear
    from 0 to the maximum.  Good enough to eyeball the shape of the
    paper's load-distribution figures in a terminal.
    """
    if not values:
        return f"{label}: (empty)"
    # Downsample by taking the maximum of each bucket so peaks survive.
    buckets: list[float] = []
    count = len(values)
    points = min(width, count)
    for index in range(points):
        start = index * count // points
        stop = max(start + 1, (index + 1) * count // points)
        buckets.append(max(values[start:stop]))
    top = max(buckets)
    if top <= 0:
        return f"{label}: (all zero)"
    grid = [[" "] * points for _ in range(height)]
    for x, bucket in enumerate(buckets):
        bar = int(round((bucket / top) * height))
        for y in range(bar):
            grid[height - 1 - y][x] = "█" if y < bar - 1 else "▀"
    lines = [f"{label}  (max = {top:g}, {count} nodes)"]
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * points + " nodes, most loaded first")
    return "\n".join(lines)


def render_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    """A plain fixed-width text table."""
    rendered_rows = [[_format(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(column), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(column)
        for i, column in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    lines = [header, separator]
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    return "\n".join(lines)
