"""One experiment function per paper table/figure (DESIGN.md §4).

Each ``run_eN`` regenerates the rows/series of one figure of the
thesis' Chapter 5 (ICDE 2006 evaluation section) and returns an
:class:`~repro.bench.report.ExperimentResult`.  Absolute numbers differ
from the paper (different hardware, scaled workloads); the *shapes* —
who wins, by roughly what factor, where crossovers fall — are asserted
by the benchmark suite.

All functions accept a :class:`~repro.bench.configs.Scale`; benchmarks
pass the profile from ``REPRO_SCALE``.
"""

from __future__ import annotations

import functools
import statistics
from typing import Optional

from ..chord.network import ChordNetwork
from ..chord.routing import multisend_cost
from .configs import Scale, current_scale
from .harness import run_standard, workload_for
from .parallel import parallel_map
from .report import ExperimentResult

#: The four algorithms in presentation order.
ALL_ALGORITHMS = ("sai", "dai-q", "dai-t", "dai-v")
#: The two-level-indexing algorithms of Figure 5.11.
TWO_LEVEL_ALGORITHMS = ("sai", "dai-q", "dai-t")

#: Comparisons between algorithms use the random index choice so SAI
#: pays no probe traffic that the DAI family does not (the strategy
#: itself is evaluated by E4).
_NEUTRAL = {"index_choice": "random"}


# ----------------------------------------------------------------------
# E1 — recursive vs. iterative multisend (Figure 5.1)
# ----------------------------------------------------------------------

def run_e1(scale: Optional[Scale] = None, trials: int = 5) -> ExperimentResult:
    """Hops of ``multisend`` to k recipients, both designs."""
    if scale is None:
        scale = current_scale()
    network = ChordNetwork.build(scale.n_nodes)
    import random

    rng = random.Random(42)
    rows = []
    k = 1
    while k <= 256:
        iterative = []
        recursive = []
        for _ in range(trials):
            source = network.random_node(rng)
            idents = [rng.randrange(network.space.size) for _ in range(k)]
            iterative.append(
                multisend_cost(network.router, source, idents, recursive=False)
            )
            recursive.append(
                multisend_cost(network.router, source, idents, recursive=True)
            )
        mean_iterative = statistics.mean(iterative)
        mean_recursive = statistics.mean(recursive)
        rows.append(
            {
                "k": k,
                "iterative_hops": mean_iterative,
                "recursive_hops": mean_recursive,
                "savings": mean_iterative / mean_recursive if mean_recursive else 1.0,
            }
        )
        k *= 4
    return ExperimentResult(
        experiment="E1",
        figure="Figure 5.1 — recursive vs. iterative design for multisend",
        title="multisend hop cost, recursive vs. iterative",
        columns=["k", "iterative_hops", "recursive_hops", "savings"],
        rows=rows,
        notes=(
            f"network of {scale.n_nodes} nodes; both designs are O(k log N) "
            "but the recursive sweep shares routing work across recipients."
        ),
    )


# ----------------------------------------------------------------------
# E2 — traffic cost and the JFRT effect (Figure 5.2)
# ----------------------------------------------------------------------

def run_e2(scale: Optional[Scale] = None) -> ExperimentResult:
    """Hops per tuple insertion for all algorithms, with/without JFRT."""
    if scale is None:
        scale = current_scale()
    workload = workload_for(scale)
    rows = []
    for algorithm in ALL_ALGORITHMS:
        for jfrt_capacity in (0, 4096):
            result = run_standard(
                algorithm,
                scale,
                config_overrides={**_NEUTRAL, "jfrt_capacity": jfrt_capacity},
                workload=workload,
                collect_per_tuple_hops=True,
            )
            series = result.per_tuple_hops
            fifth = max(1, len(series) // 5)
            rows.append(
                {
                    "algorithm": algorithm,
                    "jfrt": "on" if jfrt_capacity else "off",
                    "hops_per_tuple": result.hops_per_tuple,
                    "early_hops": statistics.mean(series[:fifth]),
                    "late_hops": statistics.mean(series[-fifth:]),
                    "total_hops": result.stream_traffic.hops,
                }
            )
    return ExperimentResult(
        experiment="E2",
        figure="Figure 5.2 — traffic cost and JFRT effect",
        title="per-insertion traffic, with and without the JFRT",
        columns=[
            "algorithm",
            "jfrt",
            "hops_per_tuple",
            "early_hops",
            "late_hops",
            "total_hops",
        ],
        rows=rows,
        notes=(
            "early/late = mean hops in the first/last fifth of the stream; "
            "with the JFRT on, late insertions reindex rewritten queries in "
            "one hop once the cache is warm."
        ),
    )


# ----------------------------------------------------------------------
# E3 — number of indexed queries vs. network traffic (Figure 5.3)
# ----------------------------------------------------------------------

def run_e3(scale: Optional[Scale] = None) -> ExperimentResult:
    """Traffic growth as the number of installed queries increases."""
    if scale is None:
        scale = current_scale()
    rows = []
    for fraction in (0.1, 0.33, 1.0):
        n_queries = max(1, int(scale.n_queries * fraction))
        workload = workload_for(scale, n_queries=n_queries)
        for algorithm in ALL_ALGORITHMS:
            result = run_standard(
                algorithm, scale, config_overrides=_NEUTRAL, workload=workload
            )
            rows.append(
                {
                    "n_queries": n_queries,
                    "algorithm": algorithm,
                    "hops_per_tuple": result.hops_per_tuple,
                    "join_messages": result.stream_traffic.messages_by_type.get(
                        "join", 0
                    ),
                    "notifications": result.notifications_delivered,
                }
            )
    return ExperimentResult(
        experiment="E3",
        figure="Figure 5.3 — effect of the number of indexed queries on traffic",
        title="per-insertion traffic vs. installed queries",
        columns=[
            "n_queries",
            "algorithm",
            "hops_per_tuple",
            "join_messages",
            "notifications",
        ],
        rows=rows,
        notes=(
            "query grouping (one join message per evaluator) keeps traffic "
            "sublinear in |Q|; DAI-T flattens further because rewritten "
            "queries are reindexed only once."
        ),
    )


# ----------------------------------------------------------------------
# E4 — index-attribute choice strategies in SAI (Figure 5.4)
# ----------------------------------------------------------------------

def run_e4(scale: Optional[Scale] = None, bos_ratio: float = 8.0) -> ExperimentResult:
    """SAI traffic under the four index-attribute selection strategies."""
    if scale is None:
        scale = current_scale()
    warmup = max(50, scale.n_tuples // 5)
    workload = workload_for(
        scale, bos_ratio=bos_ratio, warmup_tuples=warmup
    )
    rows = []
    for strategy in ("random", "min-rate", "max-rate", "uniformity"):
        result = run_standard(
            "sai",
            scale,
            config_overrides={"index_choice": strategy},
            workload=workload,
        )
        rows.append(
            {
                "strategy": strategy,
                "hops_per_tuple": result.hops_per_tuple,
                "stream_hops": result.stream_traffic.hops,
                "probe_hops": result.install_traffic.hops_by_type.get(
                    "rate-probe", 0
                ),
                "filtering_gini": result.load.filtering_gini(),
            }
        )
    return ExperimentResult(
        experiment="E4",
        figure="Figure 5.4 — comparison of index-attribute selection strategies in SAI",
        title="SAI index-attribute choice strategies",
        columns=[
            "strategy",
            "hops_per_tuple",
            "stream_hops",
            "probe_hops",
            "filtering_gini",
        ],
        rows=rows,
        notes=(
            f"streams are imbalanced (bos ratio {bos_ratio}:1) and rewriters "
            f"warm up on {warmup} tuples before queries arrive; min-rate "
            "indexes each query under the slow relation and generates the "
            "least rewriting traffic."
        ),
    )


# ----------------------------------------------------------------------
# E5 — effect of the bos ratio (Figure 5.5, reconstructed)
# ----------------------------------------------------------------------

def run_e5(scale: Optional[Scale] = None) -> ExperimentResult:
    """Traffic/load of all algorithms as the stream imbalance grows."""
    if scale is None:
        scale = current_scale()
    sweep_scale = scale.scaled(queries=0.5, tuples=0.7)
    rows = []
    for bos_ratio in (1.0, 4.0, 16.0):
        warmup = max(50, sweep_scale.n_tuples // 5)
        workload = workload_for(
            sweep_scale, bos_ratio=bos_ratio, warmup_tuples=warmup
        )
        for algorithm in ALL_ALGORITHMS:
            config = (
                {"index_choice": "min-rate"} if algorithm == "sai" else dict(_NEUTRAL)
            )
            result = run_standard(
                algorithm, sweep_scale, config_overrides=config, workload=workload
            )
            rows.append(
                {
                    "bos_ratio": bos_ratio,
                    "algorithm": algorithm,
                    "hops_per_tuple": result.hops_per_tuple,
                    "filtering_gini": result.load.filtering_gini(),
                }
            )
    return ExperimentResult(
        experiment="E5",
        figure="Figure 5.5 — effect of the bos ratio [reconstructed]",
        title="balance-of-streams ratio sweep",
        columns=["bos_ratio", "algorithm", "hops_per_tuple", "filtering_gini"],
        rows=rows,
        notes=(
            "bos ratio = arrival-rate ratio between the two joined "
            "relations (reconstruction, DESIGN.md §4); SAI uses min-rate "
            "and benefits most from imbalance."
        ),
    )


# ----------------------------------------------------------------------
# E6/E7 — the replication scheme (Figures 5.6/5.7)
# ----------------------------------------------------------------------

def _replication_sweep(scale: Scale, algorithm: str) -> list[dict]:
    """Fresh row copies of the cached (frozen) replication sweep."""
    return [dict(row) for row in _replication_sweep_cached(scale, algorithm)]


def _replication_point(spec: tuple[Scale, str, int]) -> dict:
    """One replication-factor point (runs in a pool worker)."""
    scale, algorithm, factor = spec
    result = run_standard(
        algorithm,
        scale,
        config_overrides={**_NEUTRAL, "replication_factor": factor},
        workload=workload_for(scale),
    )
    load = result.load
    al_filtering = load.attribute_level_filtering.values()
    al_storage = load.attribute_level_storage.values()
    return {
        "algorithm": algorithm,
        "replication": factor,
        "max_rewriter_filtering": max(al_filtering, default=0),
        "al_filtering_total": sum(al_filtering),
        "max_rewriter_storage": max(al_storage, default=0),
        "al_storage_total": sum(al_storage),
        "rows_delivered": result.notifications_delivered,
    }


@functools.lru_cache(maxsize=8)
def _replication_sweep_cached(scale: Scale, algorithm: str) -> tuple[dict, ...]:
    """The sweep's rows, frozen as a tuple owned by the cache.

    Callers go through :func:`_replication_sweep`, which hands out
    shallow copies (rows hold only scalars), replacing the old
    ``copy.deepcopy`` of the whole list per call.
    """
    specs = [(scale, algorithm, factor) for factor in (1, 2, 4, 8)]
    return tuple(parallel_map(_replication_point, specs))


def run_e6(scale: Optional[Scale] = None) -> ExperimentResult:
    """Replication factor vs. attribute-level *filtering* distribution."""
    if scale is None:
        scale = current_scale()
    rows = _replication_sweep(scale, "sai")
    return ExperimentResult(
        experiment="E6",
        figure="Figure 5.6 — effect of the replication scheme on filtering load distribution",
        title="rewriter replication: filtering load",
        columns=[
            "algorithm",
            "replication",
            "max_rewriter_filtering",
            "al_filtering_total",
            "rows_delivered",
        ],
        rows=rows,
        notes=(
            "each tuple's al-index goes to one replica, so the hottest "
            "rewriter's filtering load drops roughly by the factor while "
            "total filtering work stays put."
        ),
    )


def run_e7(scale: Optional[Scale] = None) -> ExperimentResult:
    """Replication factor vs. attribute-level *storage* distribution."""
    if scale is None:
        scale = current_scale()
    rows = _replication_sweep(scale, "sai")
    return ExperimentResult(
        experiment="E7",
        figure="Figure 5.7 — effect of the replication scheme on storage load distribution",
        title="rewriter replication: storage load",
        columns=[
            "algorithm",
            "replication",
            "max_rewriter_storage",
            "al_storage_total",
            "rows_delivered",
        ],
        rows=rows,
        notes=(
            "queries are stored at every replica, so attribute-level "
            "storage grows by the replication factor — the price of the "
            "filtering balance of E6."
        ),
    )


# ----------------------------------------------------------------------
# E8/E9 — window size and installed queries vs. evaluator load
# (Figures 5.8/5.9)
# ----------------------------------------------------------------------

def _window_sweep(scale: Scale) -> list[dict]:
    """Fresh row copies of the cached (frozen) window sweep."""
    return [dict(row) for row in _window_sweep_cached(scale)]


def _window_point(spec: tuple[Scale, str, int, Optional[float]]) -> dict:
    """One (algorithm, |Q|, window) point (runs in a pool worker)."""
    scale, algorithm, n_queries, window = spec
    result = run_standard(
        algorithm,
        scale,
        config_overrides={**_NEUTRAL, "window": window},
        workload=workload_for(scale, n_queries=n_queries),
    )
    return {
        "algorithm": algorithm,
        "n_queries": n_queries,
        "window": window if window is not None else "unbounded",
        "evaluator_filtering": result.load.total_evaluator_filtering,
        "evaluator_storage": result.load.total_evaluator_storage,
        "rows_delivered": result.notifications_delivered,
    }


@functools.lru_cache(maxsize=8)
def _window_sweep_cached(scale: Scale) -> tuple[dict, ...]:
    """Frozen window-sweep rows (see :func:`_replication_sweep_cached`)."""
    stream_span = float(scale.n_tuples)  # tuple_interval = 1.0
    specs = [
        (scale, algorithm, max(1, int(scale.n_queries * query_fraction)), window)
        for algorithm in ("sai", "dai-t")
        for query_fraction in (0.33, 1.0)
        for window in (stream_span * 0.05, stream_span * 0.25, None)
    ]
    return tuple(parallel_map(_window_point, specs))


def run_e8(scale: Optional[Scale] = None) -> ExperimentResult:
    """Window size × installed queries → total evaluator filtering load."""
    if scale is None:
        scale = current_scale()
    rows = _window_sweep(scale.scaled(queries=0.6, tuples=0.7))
    return ExperimentResult(
        experiment="E8",
        figure="Figure 5.8 — window size and installed queries vs. total evaluator filtering load",
        title="evaluator filtering load vs. window and |Q|",
        columns=[
            "algorithm",
            "n_queries",
            "window",
            "evaluator_filtering",
            "rows_delivered",
        ],
        rows=rows,
        notes=(
            "larger windows keep more value-level state alive, so every "
            "arriving message scans more candidates; load also grows with "
            "the number of installed queries."
        ),
    )


def run_e9(scale: Optional[Scale] = None) -> ExperimentResult:
    """Window size × installed queries → total evaluator storage load."""
    if scale is None:
        scale = current_scale()
    rows = _window_sweep(scale.scaled(queries=0.6, tuples=0.7))
    return ExperimentResult(
        experiment="E9",
        figure="Figure 5.9 — window size and installed queries vs. total evaluator storage load",
        title="evaluator storage load vs. window and |Q|",
        columns=[
            "algorithm",
            "n_queries",
            "window",
            "evaluator_storage",
            "rows_delivered",
        ],
        rows=rows,
        notes="storage is measured after final window eviction.",
    )


# ----------------------------------------------------------------------
# E10/E11 — load distribution across algorithms (Figures 5.10/5.11)
# ----------------------------------------------------------------------

def _distribution_rows(scale: Scale, algorithms) -> tuple[list[dict], dict]:
    workload = workload_for(scale)
    rows = []
    series: dict[str, list[float]] = {}
    for algorithm in algorithms:
        result = run_standard(
            algorithm, scale, config_overrides=_NEUTRAL, workload=workload
        )
        load = result.load
        filtering = load.sorted_filtering()
        storage = load.sorted_storage()
        series[f"filtering load, {algorithm}"] = filtering.tolist()
        rows.append(
            {
                "algorithm": algorithm,
                "TF": load.total_filtering,
                "TS": load.total_storage,
                "filtering_gini": load.filtering_gini(),
                "storage_gini": load.storage_gini(),
                "max_filtering": int(filtering[0]) if filtering.size else 0,
                "max_storage": int(storage[0]) if storage.size else 0,
                "participation": load.filtering_participation(),
            }
        )
    return rows, series


def run_e10(scale: Optional[Scale] = None) -> ExperimentResult:
    """TF and TS load-distribution comparison for all four algorithms."""
    if scale is None:
        scale = current_scale()
    rows, series = _distribution_rows(scale, ALL_ALGORITHMS)
    return ExperimentResult(
        experiment="E10",
        figure="Figure 5.10 — TF and TS load distribution comparison for all algorithms",
        title="total filtering/storage load and distribution, all algorithms",
        columns=[
            "algorithm",
            "TF",
            "TS",
            "filtering_gini",
            "storage_gini",
            "max_filtering",
            "max_storage",
            "participation",
        ],
        rows=rows,
        series=series,
        notes=(
            "DAI-V concentrates load (value-only identifiers, no attribute "
            "prefix); the two-level algorithms spread it across more nodes. "
            "The curves plot per-node filtering load, most loaded first."
        ),
    )


def run_e11(scale: Optional[Scale] = None) -> ExperimentResult:
    """Per-level load split for the two-level indexing algorithms."""
    if scale is None:
        scale = current_scale()
    workload = workload_for(scale)
    rows = []
    for algorithm in TWO_LEVEL_ALGORITHMS:
        result = run_standard(
            algorithm, scale, config_overrides=_NEUTRAL, workload=workload
        )
        load = result.load
        rows.append(
            {
                "algorithm": algorithm,
                "al_filtering": sum(load.attribute_level_filtering.values()),
                "vl_filtering": sum(load.value_level_filtering.values()),
                "al_storage": sum(load.attribute_level_storage.values()),
                "vl_storage": sum(load.value_level_storage.values()),
                "filtering_gini": load.filtering_gini(),
                "storage_gini": load.storage_gini(),
            }
        )
    return ExperimentResult(
        experiment="E11",
        figure="Figure 5.11 — total filtering and storage load distribution, two-level algorithms",
        title="attribute-level vs value-level load, two-level algorithms",
        columns=[
            "algorithm",
            "al_filtering",
            "vl_filtering",
            "al_storage",
            "vl_storage",
            "filtering_gini",
            "storage_gini",
        ],
        rows=rows,
        notes=(
            "DAI-T's evaluators store rewritten queries instead of tuples, "
            "trading storage shape for the reindex-once traffic win."
        ),
    )


# ----------------------------------------------------------------------
# E12–E15 — scalability of the filtering-load distribution
# (Figures 5.12–5.15)
# ----------------------------------------------------------------------

def _scaling_rows(scale: Scale, *, axis: str, factors, algorithms) -> list[dict]:
    """Fresh row copies of the cached (frozen) scaling sweep."""
    rows = _scaling_rows_cached(scale, axis, tuple(factors), tuple(algorithms))
    return [dict(row) for row in rows]


def _scaling_point(spec: tuple[Scale, str, float, str]) -> dict:
    """One (factor, algorithm) scaling point (runs in a pool worker)."""
    scale, axis, factor, algorithm = spec
    run_scale = scale.scaled(**{axis: factor})
    result = run_standard(
        algorithm,
        run_scale,
        config_overrides=_NEUTRAL,
        workload=workload_for(run_scale),
    )
    load = result.load
    filtering = load.sorted_filtering()
    return {
        "factor": factor,
        "n_nodes": run_scale.n_nodes,
        "n_queries": run_scale.n_queries,
        "n_tuples": run_scale.n_tuples,
        "algorithm": algorithm,
        "mean_filtering": float(filtering.mean()) if filtering.size else 0.0,
        "max_filtering": int(filtering[0]) if filtering.size else 0,
        "filtering_gini": load.filtering_gini(),
        "top1pct_share": load.filtering_top_share(0.01),
        "hottest_share": (
            float(filtering[0]) / filtering.sum()
            if filtering.size and filtering.sum() > 0
            else 0.0
        ),
        "participation": load.filtering_participation(),
    }


@functools.lru_cache(maxsize=32)
def _scaling_rows_cached(scale: Scale, axis: str, factors, algorithms) -> tuple[dict, ...]:
    """Frozen scaling-sweep rows (see :func:`_replication_sweep_cached`)."""
    specs = [
        (scale, axis, factor, algorithm)
        for factor in factors
        for algorithm in algorithms
    ]
    return tuple(parallel_map(_scaling_point, specs))


def run_e12(scale: Optional[Scale] = None) -> ExperimentResult:
    """Filtering-load distribution as the tuple frequency grows."""
    if scale is None:
        scale = current_scale()
    base = scale.scaled(queries=0.5, tuples=0.5)
    rows = _scaling_rows(
        base, axis="tuples", factors=(1.0, 2.0, 4.0), algorithms=ALL_ALGORITHMS
    )
    return ExperimentResult(
        experiment="E12",
        figure="Figure 5.12 — filtering load distribution vs. frequency of incoming tuples",
        title="scaling the tuple arrival rate",
        columns=[
            "factor",
            "n_tuples",
            "algorithm",
            "mean_filtering",
            "max_filtering",
            "filtering_gini",
        ],
        rows=rows,
        notes="load grows with the stream rate but its distribution shape is stable.",
    )


def run_e13(scale: Optional[Scale] = None) -> ExperimentResult:
    """Filtering-load distribution as the number of queries grows."""
    if scale is None:
        scale = current_scale()
    base = scale.scaled(queries=0.35, tuples=0.5)
    rows = _scaling_rows(
        base, axis="queries", factors=(1.0, 2.0, 4.0), algorithms=ALL_ALGORITHMS
    )
    return ExperimentResult(
        experiment="E13",
        figure="Figure 5.13 — filtering load distribution vs. number of indexed queries",
        title="scaling the number of installed queries",
        columns=[
            "factor",
            "n_queries",
            "algorithm",
            "mean_filtering",
            "max_filtering",
            "filtering_gini",
        ],
        rows=rows,
        notes="more installed queries mean more candidates per bucket everywhere.",
    )


def run_e14(scale: Optional[Scale] = None) -> ExperimentResult:
    """Filtering-load distribution as the network grows (fixed workload)."""
    if scale is None:
        scale = current_scale()
    base = scale.scaled(queries=0.5, tuples=0.5, nodes=0.25)
    rows = _scaling_rows(
        base, axis="nodes", factors=(1.0, 2.0, 4.0, 8.0), algorithms=ALL_ALGORITHMS
    )
    return ExperimentResult(
        experiment="E14",
        figure="Figure 5.14 — filtering load distribution vs. network size",
        title="scaling the network size",
        columns=[
            "factor",
            "n_nodes",
            "algorithm",
            "mean_filtering",
            "max_filtering",
            "participation",
        ],
        rows=rows,
        notes=(
            "growing the overlay relieves nodes: new nodes take a share of "
            "the existing workload, so the per-node mean drops."
        ),
    )


def run_e15(scale: Optional[Scale] = None) -> ExperimentResult:
    """Load of the most loaded nodes as the network grows."""
    if scale is None:
        scale = current_scale()
    base = scale.scaled(queries=0.5, tuples=0.5, nodes=0.25)
    rows = _scaling_rows(
        base, axis="nodes", factors=(1.0, 2.0, 4.0, 8.0), algorithms=("sai", "dai-t")
    )
    for row in rows:
        del row["mean_filtering"]
    return ExperimentResult(
        experiment="E15",
        figure="Figure 5.15 — filtering load of the most loaded nodes vs. network size",
        title="the hottest nodes under network growth",
        columns=[
            "factor",
            "n_nodes",
            "algorithm",
            "max_filtering",
            "hottest_share",
            "filtering_gini",
        ],
        rows=rows,
        notes=(
            "max_filtering and the hottest node's share of TF shrink as "
            "nodes join, until the indivisible attribute-level hotspot "
            "floors them — the residual the replication scheme (E6) removes."
        ),
    )


# ----------------------------------------------------------------------
# E16 — DAI-V scaling (Figure 5.16)
# ----------------------------------------------------------------------

def run_e16(scale: Optional[Scale] = None) -> ExperimentResult:
    """DAI-V filtering distribution under each scaling axis."""
    if scale is None:
        scale = current_scale()
    base = scale.scaled(queries=0.5, tuples=0.5, nodes=0.5)
    rows = []
    for axis in ("nodes", "queries", "tuples"):
        axis_rows = _scaling_rows(
            base, axis=axis, factors=(1.0, 4.0), algorithms=("dai-v",)
        )
        for row in axis_rows:
            row["axis"] = axis
            rows.append(row)
    return ExperimentResult(
        experiment="E16",
        figure="Figure 5.16 — DAI-V filtering load distribution vs. network size, queries, tuples",
        title="DAI-V under each scaling axis",
        columns=[
            "axis",
            "factor",
            "n_nodes",
            "n_queries",
            "n_tuples",
            "mean_filtering",
            "max_filtering",
            "filtering_gini",
        ],
        rows=rows,
        notes=(
            "DAI-V evaluators are chosen by join value alone, so its "
            "distribution reacts to the value skew rather than to the "
            "attribute mix."
        ),
    )


# ----------------------------------------------------------------------
# E17 — keyed DAI-V traffic blow-up (Section 4.5)
# ----------------------------------------------------------------------

def run_e17(scale: Optional[Scale] = None) -> ExperimentResult:
    """DAI-V vs its keyed variant: the cost of losing query grouping."""
    if scale is None:
        scale = current_scale()
    small = scale.scaled(queries=0.4, tuples=0.15)
    workload = workload_for(small)
    rows = []
    baseline_hops = None
    for keyed in (False, True):
        result = run_standard(
            "dai-v",
            small,
            config_overrides={**_NEUTRAL, "daiv_keyed": keyed},
            workload=workload,
        )
        hops = result.hops_per_tuple
        if baseline_hops is None:
            baseline_hops = hops
        rows.append(
            {
                "variant": "keyed" if keyed else "grouped",
                "hops_per_tuple": hops,
                "join_messages": result.stream_traffic.messages_by_type.get("join", 0),
                "blowup": hops / baseline_hops if baseline_hops else 1.0,
            }
        )
    return ExperimentResult(
        experiment="E17",
        figure="Section 4.5 — keyed DAI-V traffic (paper: ~×250 at 10^4 nodes / 10^5 queries)",
        title="DAI-V: grouped vs keyed reindexing",
        columns=["variant", "hops_per_tuple", "join_messages", "blowup"],
        rows=rows,
        notes=(
            "prefixing Key(q) to the value spreads load per query but "
            "destroys grouping: every triggered query needs its own routed "
            "join message; the blow-up grows with |Q|."
        ),
    )


#: Registry used by the CLI and the benchmark suite.
EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
    "E17": run_e17,
}
