"""Table 4.1 — a comparison of all algorithms.

The thesis' Table 4.1 contrasts the exact sequence of steps of SAI,
DAI-Q, DAI-T and DAI-V.  This module regenerates it from two sources:

* the declared properties of each algorithm class (how many rewriters,
  what evaluators store, when notifications are created);
* a live micro-trace of the canonical example (one query, one R tuple,
  one matching S tuple) that *measures* the step behaviour instead of
  restating it.
"""

from __future__ import annotations

from ..chord.network import ChordNetwork
from ..core.engine import ContinuousQueryEngine, EngineConfig
from ..sql.schema import Schema
from .report import ExperimentResult

#: Qualitative rows (from Chapter 4's algorithm descriptions).
_QUALITATIVE = {
    "sai": {
        "rewriters_per_query": 1,
        "evaluator_stores_tuples": "yes",
        "evaluator_stores_queries": "yes",
        "notification_on": "query or tuple arrival",
        "reindex_per_trigger": "every trigger",
        "supports_t2": "no",
    },
    "dai-q": {
        "rewriters_per_query": 2,
        "evaluator_stores_tuples": "yes",
        "evaluator_stores_queries": "no",
        "notification_on": "rewritten-query arrival",
        "reindex_per_trigger": "every trigger",
        "supports_t2": "no",
    },
    "dai-t": {
        "rewriters_per_query": 2,
        "evaluator_stores_tuples": "no",
        "evaluator_stores_queries": "yes",
        "notification_on": "tuple arrival",
        "reindex_per_trigger": "once per rewritten key",
        "supports_t2": "no",
    },
    "dai-v": {
        "rewriters_per_query": 2,
        "evaluator_stores_tuples": "projections",
        "evaluator_stores_queries": "no",
        "notification_on": "rewritten-query arrival",
        "reindex_per_trigger": "every trigger",
        "supports_t2": "yes",
    },
}


def trace_canonical_example(algorithm: str, n_nodes: int = 64) -> dict:
    """Run the Chapter 4 example and measure the step behaviour.

    Query ``SELECT R.A, S.D FROM R, S WHERE R.C = S.C``; insert
    ``R(1, 7)``-style tuples and a matching ``S`` tuple; also repeat the
    same R tuple to expose DAI-T's reindex-once behaviour.
    """
    schema = Schema.from_dict({"R": ["A", "C"], "S": ["D", "C"]})
    network = ChordNetwork.build(n_nodes)
    engine = ContinuousQueryEngine(
        network, EngineConfig(algorithm=algorithm, index_choice="left")
    )
    subscriber = network.nodes[0]
    query = engine.subscribe(
        subscriber, "SELECT R.A, S.D FROM R, S WHERE R.C = S.C", schema
    )
    query_messages = engine.traffic.messages_by_type.get("query", 0)

    r_relation, s_relation = schema.relation("R"), schema.relation("S")
    engine.clock.advance(1)
    engine.publish(network.nodes[1], r_relation, {"A": 1, "C": 7})
    joins_after_first = engine.traffic.messages_by_type.get("join", 0)
    engine.clock.advance(1)
    engine.publish(network.nodes[2], r_relation, {"A": 1, "C": 7})  # duplicate
    joins_after_duplicate = engine.traffic.messages_by_type.get("join", 0)
    engine.clock.advance(1)
    engine.publish(network.nodes[3], s_relation, {"D": 2, "C": 7})

    stored_tuples = sum(
        len(engine.state(node).vltt) + len(engine.state(node).projections)
        for node in network
    )
    stored_queries = sum(len(engine.state(node).vlqt) for node in network)
    return {
        "algorithm": algorithm,
        "rewriter_copies": query_messages,
        "join_msgs_first_trigger": joins_after_first,
        "join_msgs_duplicate_trigger": joins_after_duplicate - joins_after_first,
        "value_level_tuples": stored_tuples,
        "value_level_queries": stored_queries,
        "rows_delivered": len(engine.delivered_rows(query.key)),
    }


def run_t1(n_nodes: int = 64) -> ExperimentResult:
    """Regenerate Table 4.1 (qualitative + measured columns)."""
    rows = []
    for algorithm, qualitative in _QUALITATIVE.items():
        measured = trace_canonical_example(algorithm, n_nodes)
        rows.append({**qualitative, **measured})
    return ExperimentResult(
        experiment="T1",
        figure="Table 4.1 — a comparison of all algorithms",
        title="algorithm comparison (qualitative + measured on the canonical example)",
        columns=[
            "algorithm",
            "rewriters_per_query",
            "rewriter_copies",
            "notification_on",
            "evaluator_stores_tuples",
            "evaluator_stores_queries",
            "reindex_per_trigger",
            "join_msgs_duplicate_trigger",
            "supports_t2",
            "rows_delivered",
        ],
        rows=rows,
        notes=(
            "rewriter_copies and join message counts are measured live; "
            "every algorithm delivers exactly the one expected answer row."
        ),
    )
