"""Process-parallel execution of independent benchmark sweep points.

Every experiment sweep in :mod:`repro.bench.experiments` is a list of
*points* — (scale, algorithm, parameter) combinations replayed through
:func:`~repro.bench.harness.run_standard`.  Points never share state:
each one rebuilds its workload deterministically from the same seed, so
they can run in separate worker processes and still produce rows that
are byte-identical to a serial run.

:func:`parallel_map` is the single entry point.  It preserves input
order, propagates worker exceptions, and degrades to a plain in-process
loop when parallelism is disabled — the default, so tests and
single-point runs never pay pool start-up costs.

The worker count comes from the ``REPRO_BENCH_PROCS`` environment
variable:

``unset`` / ``"1"``
    serial, in-process (the default);
``"auto"`` / ``"0"``
    one worker per CPU (``os.cpu_count()``);
``N``
    a pool of ``N`` worker processes.

Workers are forked where the platform supports it (cheap, and usable
from a REPL) and spawned otherwise; either way the mapped function and
its items must be picklable (module-level functions over plain
tuples/dataclasses).  Engines and workloads are **not** picklable —
build them inside the worker and return plain row dicts.

Note the macro benchmark (:mod:`repro.bench.macro`) stays serial on
purpose: its product is wall-clock time, and concurrent workers would
contend for cores and distort the measurement.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

ENV_VAR = "REPRO_BENCH_PROCS"

T = TypeVar("T")
R = TypeVar("R")


def configured_processes(n_items: int) -> int:
    """Worker count for ``n_items`` independent points (≥1).

    Reads ``REPRO_BENCH_PROCS`` (see module docstring) and never
    returns more workers than there are points.
    """
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("0", "auto"):
        procs = os.cpu_count() or 1
    else:
        try:
            procs = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_VAR} must be an integer or 'auto', got {raw!r}"
            ) from None
        if procs < 1:
            procs = 1
    return max(1, min(procs, n_items))


def fork_available() -> bool:
    """True when the platform supports forked workers.

    The sharded simulator (:mod:`repro.sim.shard`) relies on fork
    semantics — workers inherit a fully built engine copy-on-write —
    so it degrades to in-process staged execution elsewhere.
    """
    return "fork" in multiprocessing.get_all_start_methods()


class ShardPool:
    """Persistent forked workers exchanging messages over pipes.

    Unlike :func:`parallel_map` (stateless one-shot points), sharded
    simulation needs *stateful* workers: each holds one ring segment of
    a forked engine replica and participates in several message
    exchanges per epoch.  ``worker_main(conn, index)`` runs in each
    child — typically a closure over the pre-built engine, which fork
    shares copy-on-write — and owns the command protocol; the pool only
    provides the scatter/gather plumbing.
    """

    def __init__(self, n_shards: int, worker_main: Callable[[object, int], None]):
        if not fork_available():
            raise RuntimeError("ShardPool requires the fork start method")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        context = multiprocessing.get_context("fork")
        self.n_shards = n_shards
        self._conns = []
        self._procs = []
        for index in range(n_shards):
            parent, child = context.Pipe()
            process = context.Process(
                target=worker_main, args=(child, index), daemon=True
            )
            process.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(process)

    def send(self, shard: int, payload) -> None:
        self._conns[shard].send(payload)

    def recv(self, shard: int):
        return self._conns[shard].recv()

    def scatter(self, payloads: Sequence) -> None:
        """Send ``payloads[i]`` to shard ``i`` (one per shard)."""
        if len(payloads) != self.n_shards:
            raise ValueError("one payload per shard required")
        for conn, payload in zip(self._conns, payloads):
            conn.send(payload)

    def broadcast(self, payload) -> None:
        """Send the same payload to every shard (one pickle per pipe)."""
        for conn in self._conns:
            conn.send(payload)

    def gather(self) -> list:
        """Receive one reply from every shard, in shard order."""
        return [conn.recv() for conn in self._conns]

    def close(self) -> None:
        """Close pipes and reap the workers (best effort)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - teardown best effort
                process.terminate()
                process.join(timeout=5)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parallel_map(func: Callable[[T], R], items: Iterable[T]) -> list[R]:
    """``[func(item) for item in items]``, possibly across processes.

    Order-preserving; the first worker exception is re-raised.  Falls
    back to a serial loop when the configured worker count is 1 or
    there is at most one item.
    """
    points: Sequence[T] = list(items)
    procs = configured_processes(len(points))
    if procs <= 1:
        return [func(item) for item in points]
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    context = multiprocessing.get_context(method)
    with ProcessPoolExecutor(max_workers=procs, mp_context=context) as pool:
        return list(pool.map(func, points))
