"""Process-parallel execution of independent benchmark sweep points.

Every experiment sweep in :mod:`repro.bench.experiments` is a list of
*points* — (scale, algorithm, parameter) combinations replayed through
:func:`~repro.bench.harness.run_standard`.  Points never share state:
each one rebuilds its workload deterministically from the same seed, so
they can run in separate worker processes and still produce rows that
are byte-identical to a serial run.

:func:`parallel_map` is the single entry point.  It preserves input
order, propagates worker exceptions, and degrades to a plain in-process
loop when parallelism is disabled — the default, so tests and
single-point runs never pay pool start-up costs.

The worker count comes from the ``REPRO_BENCH_PROCS`` environment
variable:

``unset`` / ``"1"``
    serial, in-process (the default);
``"auto"`` / ``"0"``
    one worker per CPU (``os.cpu_count()``);
``N``
    a pool of ``N`` worker processes.

Workers are forked where the platform supports it (cheap, and usable
from a REPL) and spawned otherwise; either way the mapped function and
its items must be picklable (module-level functions over plain
tuples/dataclasses).  Engines and workloads are **not** picklable —
build them inside the worker and return plain row dicts.

Note the macro benchmark (:mod:`repro.bench.macro`) stays serial on
purpose: its product is wall-clock time, and concurrent workers would
contend for cores and distort the measurement.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

ENV_VAR = "REPRO_BENCH_PROCS"

T = TypeVar("T")
R = TypeVar("R")


def configured_processes(n_items: int) -> int:
    """Worker count for ``n_items`` independent points (≥1).

    Reads ``REPRO_BENCH_PROCS`` (see module docstring) and never
    returns more workers than there are points.
    """
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("0", "auto"):
        procs = os.cpu_count() or 1
    else:
        try:
            procs = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_VAR} must be an integer or 'auto', got {raw!r}"
            ) from None
        if procs < 1:
            procs = 1
    return max(1, min(procs, n_items))


def parallel_map(func: Callable[[T], R], items: Iterable[T]) -> list[R]:
    """``[func(item) for item in items]``, possibly across processes.

    Order-preserving; the first worker exception is re-raised.  Falls
    back to a serial loop when the configured worker count is 1 or
    there is at most one item.
    """
    points: Sequence[T] = list(items)
    procs = configured_processes(len(points))
    if procs <= 1:
        return [func(item) for item in points]
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    context = multiprocessing.get_context(method)
    with ProcessPoolExecutor(max_workers=procs, mp_context=context) as pool:
        return list(pool.map(func, points))
