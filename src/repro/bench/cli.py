"""Command-line entry point: run experiments and print/record results.

Usage::

    repro-experiments                      # run everything at REPRO_SCALE
    repro-experiments --only E2 E10        # a subset
    repro-experiments --scale smoke        # quick pass
    repro-experiments --write-md out.md    # write a markdown report
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .comparison import run_t1
from .configs import SCALES
from .experiments import EXPERIMENTS
from .report import ExperimentResult


def _all_experiments():
    registry = dict(EXPERIMENTS)
    registry["T1"] = lambda scale=None: run_t1()
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="EXP",
        help="experiment ids to run (default: all), e.g. E2 E10 T1",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        help="override REPRO_SCALE for this invocation",
    )
    parser.add_argument(
        "--write-md",
        metavar="PATH",
        help="also write the results as a markdown report",
    )
    args = parser.parse_args(argv)

    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale

    registry = _all_experiments()
    wanted = args.only if args.only else sorted(registry, key=_experiment_order)
    unknown = [name for name in wanted if name not in registry]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; available: {sorted(registry)}")

    results: list[ExperimentResult] = []
    for name in wanted:
        started = time.perf_counter()
        result = registry[name]()
        elapsed = time.perf_counter() - started
        results.append(result)
        print(result.to_text())
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()

    if args.write_md:
        with open(args.write_md, "w", encoding="utf-8") as handle:
            handle.write("# Experiment results\n\n")
            for result in results:
                handle.write(result.to_markdown())
                handle.write("\n")
        print(f"markdown report written to {args.write_md}")
    return 0


def _experiment_order(name: str) -> tuple[int, int]:
    if name == "T1":
        return (0, 0)
    return (1, int(name[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
