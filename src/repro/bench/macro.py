"""Seeded macro-benchmark and the perf-regression gate.

The headline benchmark is the **largest E14 network-size point** (the
slowest single experiment point of the paper's scaling study): all four
algorithms replay the same seeded workload over the largest ring of the
E14 sweep.  It measures two very different things at once:

* **wall-clock seconds** — what the hot-path optimizations are allowed
  to change;
* **simulated metrics** — hop counts, message counts (total and by
  type) and the full notification answer sets (as a digest) — what they
  are *not* allowed to change, ever.

``python -m repro.bench.macro --output BENCH_current.json`` writes a
baseline file; ``--compare BENCH_seed.json`` additionally gates the run
against a committed baseline:

* any difference in the simulated metrics is a hard failure (the
  optimizations must be semantics-preserving);
* a wall-clock total more than ``--threshold`` (default 25%) above the
  baseline is a perf regression and fails the gate.

Wall-clock numbers are machine-dependent; committed baselines record
the host so a reviewer can judge comparability.  The simulated metrics
are machine-independent and must match exactly on any host.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Optional, Sequence

from ..chord.hashing import hash_key_cache_clear
from .configs import SCALES, Scale, current_scale
from .harness import run_standard, workload_for
# notification_digest moved to repro.bench.rows (its canonical home,
# shared with RunResult.to_row and the expdb writer); re-exported here
# because the net/ and sim/ layers import it from this module.
from .rows import MACRO_METRIC_FIELDS, metric_summary, notification_digest

#: Algorithms measured by the headline benchmark, in presentation order.
HEADLINE_ALGORITHMS = ("sai", "dai-q", "dai-t", "dai-v")

#: Default allowed wall-clock regression before the gate fails.
DEFAULT_THRESHOLD = 0.25

#: Name recorded in the JSON so unrelated baselines never compare.
HEADLINE_NAME = "macro-e14-largest"


def headline_scale(scale: Optional[Scale] = None) -> Scale:
    """The largest network-size point of E14 (see ``run_e14``).

    E14 derives its base profile as ``scaled(queries=0.5, tuples=0.5,
    nodes=0.25)`` and sweeps node factors ``(1, 2, 4, 8)``; the headline
    point is the factor-8 ring.
    """
    if scale is None:
        scale = current_scale()
    base = scale.scaled(queries=0.5, tuples=0.5, nodes=0.25)
    return base.scaled(nodes=8.0)


def _measure_algorithm(algorithm: str, run_scale: Scale, seed: int) -> dict:
    """One seeded replay: wall-clock plus the invariant metrics."""
    workload = workload_for(run_scale)
    start = time.perf_counter()
    result = run_standard(
        algorithm,
        run_scale,
        config_overrides={"index_choice": "random"},
        workload=workload,
        seed=seed,
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "metrics": metric_summary(result.to_row(), MACRO_METRIC_FIELDS),
    }


def run_macro(
    scale: Optional[Scale] = None,
    *,
    algorithms: Sequence[str] = HEADLINE_ALGORITHMS,
    seed: int = 1,
    repeats: int = 1,
) -> dict:
    """Run the headline macro-benchmark and return the report dict.

    With ``repeats > 1`` the wall-clock of each algorithm is the best
    (minimum) of the repeats — standard practice for noisy timers — but
    the simulated metrics of every repeat must agree with the first or
    the run itself is flagged non-deterministic.
    """
    if scale is None:
        scale = current_scale()
    run_scale = headline_scale(scale)
    per_algorithm: dict[str, dict] = {}
    for algorithm in algorithms:
        # A cold cache per algorithm keeps timings comparable between a
        # single full run and per-algorithm reruns.
        hash_key_cache_clear()
        best: Optional[dict] = None
        for _ in range(max(1, repeats)):
            sample = _measure_algorithm(algorithm, run_scale, seed)
            if best is None:
                best = sample
            else:
                if sample["metrics"] != best["metrics"]:
                    raise RuntimeError(
                        f"macro benchmark is non-deterministic for "
                        f"{algorithm!r}: repeated runs disagree"
                    )
                best["wall_seconds"] = min(
                    best["wall_seconds"], sample["wall_seconds"]
                )
            hash_key_cache_clear()
        per_algorithm[algorithm] = best
    total_wall = sum(entry["wall_seconds"] for entry in per_algorithm.values())
    return {
        "name": HEADLINE_NAME,
        "scale": scale.name,
        "point": {
            "n_nodes": run_scale.n_nodes,
            "n_queries": run_scale.n_queries,
            "n_tuples": run_scale.n_tuples,
            "domain_size": run_scale.domain_size,
            "zipf_s": run_scale.zipf_s,
        },
        "seed": seed,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "wall_seconds": {
            **{name: round(entry["wall_seconds"], 4) for name, entry in per_algorithm.items()},
            "total": round(total_wall, 4),
        },
        "metrics": {name: entry["metrics"] for name, entry in per_algorithm.items()},
    }


def compare_reports(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Gate ``current`` against ``baseline``; returns failure messages.

    An empty list means the gate is green.  Simulated metrics must be
    *exactly* equal; total wall-clock may not exceed the baseline by
    more than ``threshold`` (a fraction, e.g. ``0.25`` = +25%).
    """
    problems: list[str] = []
    if current.get("name") != baseline.get("name"):
        problems.append(
            f"benchmark mismatch: {current.get('name')!r} vs "
            f"{baseline.get('name')!r} — refusing to compare"
        )
        return problems
    if current.get("point") != baseline.get("point") or current.get(
        "seed"
    ) != baseline.get("seed"):
        problems.append(
            "workload point/seed mismatch — baselines are only comparable "
            "on the identical seeded workload"
        )
        return problems
    for algorithm, baseline_metrics in baseline.get("metrics", {}).items():
        current_metrics = current.get("metrics", {}).get(algorithm)
        if current_metrics is None:
            problems.append(f"algorithm {algorithm!r} missing from current run")
            continue
        if current_metrics != baseline_metrics:
            for field in sorted(set(baseline_metrics) | set(current_metrics)):
                if current_metrics.get(field) != baseline_metrics.get(field):
                    problems.append(
                        f"{algorithm}: simulated metric {field!r} changed: "
                        f"{baseline_metrics.get(field)!r} -> "
                        f"{current_metrics.get(field)!r}"
                    )
    baseline_wall = baseline.get("wall_seconds", {}).get("total")
    current_wall = current.get("wall_seconds", {}).get("total")
    if baseline_wall and current_wall:
        limit = baseline_wall * (1.0 + threshold)
        if current_wall > limit:
            problems.append(
                f"wall-clock regression: {current_wall:.3f}s > "
                f"{baseline_wall:.3f}s * (1 + {threshold:.0%}) = {limit:.3f}s"
            )
    return problems


def speedup_versus(current: dict, baseline: dict) -> Optional[float]:
    """Baseline/current total wall ratio (>1 means current is faster)."""
    baseline_wall = baseline.get("wall_seconds", {}).get("total")
    current_wall = current.get("wall_seconds", {}).get("total")
    if not baseline_wall or not current_wall:
        return None
    return baseline_wall / current_wall


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.macro",
        description="Run the headline macro-benchmark (largest E14 point).",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="scale profile (default: REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="gate against a committed baseline JSON (e.g. BENCH_seed.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional wall-clock regression (default 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="timing repeats (min is kept)"
    )
    parser.add_argument("--seed", type=int, default=1, help="workload/engine seed")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale] if args.scale else current_scale()
    report = run_macro(scale, seed=args.seed, repeats=args.repeats)
    rendered = json.dumps(report, indent=2, sort_keys=False)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(rendered)

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_reports(report, baseline, args.threshold)
        ratio = speedup_versus(report, baseline)
        if ratio is not None:
            print(
                f"wall-clock: {report['wall_seconds']['total']:.3f}s vs "
                f"baseline {baseline['wall_seconds']['total']:.3f}s "
                f"({ratio:.2f}x)",
                file=sys.stderr,
            )
        if problems:
            for problem in problems:
                print(f"PERF GATE FAIL: {problem}", file=sys.stderr)
            return 1
        print("perf gate: OK (metrics identical, wall within threshold)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
